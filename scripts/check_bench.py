#!/usr/bin/env python3
"""Gate compiled-engine throughput against a checked-in baseline.

Usage:
    check_bench.py NEW.json BASELINE.json [--tolerance 0.20]
                   [--filter compiled] [--sibling compiled=interpreted]
                   [--min-speedup 5] [--min-throughput 1e8]

CI runners and developer machines differ wildly in absolute speed, so the
gated quantity is hardware-normalized: for every baseline result whose id
contains the filter substring and that has a sibling in the same run (the
id with the --sibling pair's left name replaced by its right name — by
default `compiled_*` pairs with `interpreted_*`), the *speedup* (gated
per_sec / sibling per_sec, both measured on the same machine in the same
run) is compared between baseline and fresh run. A fresh speedup more than
the tolerance below the baseline speedup fails, as does a gated benchmark
disappearing. Gated rows without a sibling fall back to the absolute
per_sec comparison. A --filter that matches no baseline id at all is a
hard failure: a gate that checks zero rows is broken, not green.

--min-speedup adds an *absolute* floor on top of the baseline-relative
check: every gated row's fresh within-run speedup must reach at least the
given multiple, regardless of what the baseline recorded. This is how a
paper-level acceptance bar ("at least Nx") is enforced rather than merely
not regressed.

--min-throughput adds an absolute floor on the gated rows' fresh
*per_sec* itself (units are whatever the bench recorded — bytes/sec for
the byte-throughput groups). Unlike the speedup metrics this does NOT
cancel out runner hardware, so set it well below what the slowest
expected runner sustains: it exists to catch order-of-magnitude cliffs
(e.g. the bytes->verdict pipeline silently falling off its bulk-scan
path back to per-character lexing), not percent-level drift — the
sibling-normalized tolerance check handles that.

Absolute throughputs are printed for context either way; the E15c
acceptance bar (compiled NWA >= 2x interpreted at 1M events), the E17a
bar (batched DFA >= 1.5x sequential at 1M events, checked with
`--filter batched_dfa --sibling batched=sequential`) and the E18a bar
(artifact load >= 5x compile-and-warm, checked with `--filter
load_summary --sibling load=compile --min-speedup 5`) are visible in the
speedup column of the fresh run.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        r["id"]: r["throughput"]["per_sec"]
        for r in doc.get("results", [])
        if "throughput" in r
    }


def speedup(results, bench_id, pair):
    """gated/sibling ratio within one run, or None if no sibling."""
    name, sibling_name = pair
    sibling = bench_id.replace(name, sibling_name)
    if sibling != bench_id and sibling in results and results[sibling]:
        return results[bench_id] / results[sibling]
    return None


def main(argv=None):
    """Run the gate; returns a process exit code (0 pass, 1 fail, 2 usage).

    `argv` defaults to `sys.argv[1:]`; the unit tests in
    `test_check_bench.py` pass explicit argument lists instead.
    """
    ap = argparse.ArgumentParser()
    ap.add_argument("new")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop (default 0.20)")
    ap.add_argument("--filter", default="compiled",
                    help="gate only ids containing this substring")
    ap.add_argument("--sibling", default="compiled=interpreted",
                    help="NAME=SIBLING id-substring pair defining the "
                         "within-run speedup denominator "
                         "(default compiled=interpreted)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="absolute floor: every gated row's fresh "
                         "within-run speedup must reach this multiple")
    ap.add_argument("--min-throughput", type=float, default=None,
                    help="absolute floor on every gated row's fresh "
                         "per_sec (not hardware-normalized; set it low "
                         "enough for the slowest expected runner)")
    args = ap.parse_args(argv)

    pair = args.sibling.split("=", 1)
    if len(pair) != 2 or not pair[0] or not pair[1]:
        ap.error("--sibling must look like NAME=SIBLING")

    new = load(args.new)
    base = load(args.baseline)

    failures = []
    gated_rows = 0
    print(f"{'benchmark':<52} {'metric':>8} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for bench_id, base_per_sec in sorted(base.items()):
        if args.filter not in bench_id:
            continue
        gated_rows += 1
        if bench_id not in new:
            failures.append(f"{bench_id}: missing from the fresh run")
            continue
        base_speedup = speedup(base, bench_id, pair)
        new_speedup = speedup(new, bench_id, pair)
        if base_speedup is not None and new_speedup is not None:
            metric, base_v, new_v = "speedup", base_speedup, new_speedup
        else:
            # No interpreted sibling: absolute throughput is all we have.
            metric, base_v, new_v = "per_sec", base_per_sec, new[bench_id]
        ratio = new_v / base_v if base_v else float("inf")
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{bench_id}: {metric} {new_v:.3g} is "
                f"{(1.0 - ratio) * 100:.0f}% below the baseline {base_v:.3g}"
            )
            flag = "  << REGRESSION"
        if (args.min_speedup is not None and metric == "speedup"
                and new_v < args.min_speedup):
            failures.append(
                f"{bench_id}: speedup {new_v:.3g} is below the absolute "
                f"floor {args.min_speedup:g}"
            )
            flag = "  << BELOW FLOOR"
        if (args.min_throughput is not None
                and new[bench_id] < args.min_throughput):
            failures.append(
                f"{bench_id}: per_sec {new[bench_id]:.3g} is below the "
                f"absolute floor {args.min_throughput:g}"
            )
            flag = "  << BELOW FLOOR"
        print(f"{bench_id:<52} {metric:>8} {base_v:>12.3g} {new_v:>12.3g} "
              f"{ratio:>6.2f}x{flag}")

    # A filter that matches nothing gates nothing: that is a broken gate
    # (typo'd --filter, renamed bench ids), not a green one, so it is a
    # hard failure rather than a vacuous pass.
    if gated_rows == 0:
        failures.append(
            f"--filter {args.filter!r} matched no baseline benchmark id; "
            "the gate checked nothing"
        )

    # Context: all sibling-normalized speedups in the fresh run.
    rows = [(b, s) for b in sorted(new)
            if pair[0] in b and (s := speedup(new, b, pair)) is not None]
    if rows:
        print(f"\n{pair[1]} -> {pair[0]} speedups (fresh run):")
        for bench_id, s in rows:
            print(f"  {bench_id:<50} {s:.2f}x")

    if failures:
        print("\nFAIL: gated performance regressed beyond "
              f"{args.tolerance * 100:.0f}% tolerance:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: no gated benchmark regressed more than "
          f"{args.tolerance * 100:.0f}% vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
