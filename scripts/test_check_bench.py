#!/usr/bin/env python3
"""Unit tests for the bench gate script (`check_bench.py`).

Every CI bench gate stands on this script behaving as documented, so its
own failure modes are tested here and the suite runs in CI (via
`python3 -m unittest discover -s scripts`) before any gate is trusted.
The zero-row self-test used to live inline in ci.yml; it is the first
case below.

Run locally with:

    python3 -m unittest discover -s scripts -v
"""

import json
import os
import tempfile
import unittest

import check_bench


def row(bench_id, per_sec):
    return {
        "id": bench_id,
        "mean_ns": 1000.0,
        "min_ns": 900.0,
        "throughput": {"unit": "bytes", "per_iter": 1, "per_sec": per_sec},
    }


class CheckBenchCase(unittest.TestCase):
    """Shared plumbing: write bench JSON docs to temp files, invoke main."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def bench_file(self, name, rows):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump({"bench": "test", "format": 1, "results": rows}, f)
        return path

    def run_gate(self, new_rows, base_rows, *flags):
        new = self.bench_file("new.json", new_rows)
        base = self.bench_file("base.json", base_rows)
        return check_bench.main([new, base, *flags])


class ZeroRowsIsHardFailure(CheckBenchCase):
    """A --filter matching no baseline id must fail, never pass vacuously.

    This is the property the gates live or die by: a typo'd flag or a
    renamed bench id must break the build, or a gate could silently check
    nothing forever.
    """

    def test_filter_matching_nothing_fails(self):
        rows = [row("g/compiled_x/1", 200.0), row("g/interpreted_x/1", 100.0)]
        self.assertEqual(
            self.run_gate(rows, rows, "--filter", "this_id_matches_nothing"),
            1,
        )

    def test_empty_baseline_fails(self):
        rows = [row("g/compiled_x/1", 200.0)]
        self.assertEqual(self.run_gate(rows, [], "--filter", "compiled"), 1)

    def test_gated_row_missing_from_fresh_run_fails(self):
        base = [row("g/compiled_x/1", 200.0)]
        self.assertEqual(self.run_gate([], base, "--filter", "compiled"), 1)


class SiblingPairing(CheckBenchCase):
    """The gated metric is the within-run gated/sibling speedup, so runner
    hardware cancels out of the baseline comparison."""

    def test_slower_hardware_same_ratio_passes(self):
        base = [row("g/compiled_x/1", 200.0), row("g/interpreted_x/1", 100.0)]
        # Absolute throughput halved, speedup identical: not a regression.
        new = [row("g/compiled_x/1", 100.0), row("g/interpreted_x/1", 50.0)]
        self.assertEqual(self.run_gate(new, base, "--filter", "compiled"), 0)

    def test_ratio_collapse_fails_even_if_absolute_holds(self):
        base = [row("g/compiled_x/1", 200.0), row("g/interpreted_x/1", 100.0)]
        # Compiled as fast as ever, but the speedup fell 2.0x -> 1.0x.
        new = [row("g/compiled_x/1", 200.0), row("g/interpreted_x/1", 200.0)]
        self.assertEqual(self.run_gate(new, base, "--filter", "compiled"), 1)

    def test_custom_sibling_pair(self):
        base = [row("g/batched_d/1", 300.0), row("g/sequential_d/1", 100.0)]
        new = [row("g/batched_d/1", 30.0), row("g/sequential_d/1", 10.0)]
        self.assertEqual(
            self.run_gate(
                new, base,
                "--filter", "batched",
                "--sibling", "batched=sequential",
            ),
            0,
        )

    def test_row_without_sibling_falls_back_to_absolute(self):
        base = [row("g/compiled_solo/1", 200.0)]
        new = [row("g/compiled_solo/1", 100.0)]
        self.assertEqual(self.run_gate(new, base, "--filter", "compiled"), 1)

    def test_trailing_slash_filter_excludes_suffixed_ids(self):
        # `bytes_compiled/` gates only the SWAR rows; the `_simd` rows have
        # their own gate with a higher floor. A fresh run missing the simd
        # rows (a default-features run) must still pass this filter.
        base = [
            row("e/bytes_compiled/1", 150.0),
            row("e/bytes_interpreted/1", 140.0),
            row("e/bytes_compiled_simd/1", 200.0),
            row("e/bytes_interpreted_simd/1", 190.0),
        ]
        new = [
            row("e/bytes_compiled/1", 150.0),
            row("e/bytes_interpreted/1", 140.0),
        ]
        self.assertEqual(
            self.run_gate(new, base, "--filter", "bytes_compiled/"), 0
        )
        # Sanity: without the slash the simd rows are gated and missing.
        self.assertEqual(
            self.run_gate(new, base, "--filter", "bytes_compiled"), 1
        )


class AbsoluteFloors(CheckBenchCase):
    """--min-speedup and --min-throughput are acceptance bars on the fresh
    run, independent of what the baseline recorded."""

    def test_min_speedup_fails_below_floor(self):
        # Baseline-relative check passes (same ratio both runs), but the
        # ratio never reached the required multiple.
        rows = [row("g/load_x/1", 300.0), row("g/compile_x/1", 100.0)]
        self.assertEqual(
            self.run_gate(
                rows, rows,
                "--filter", "load",
                "--sibling", "load=compile",
                "--min-speedup", "5",
            ),
            1,
        )

    def test_min_speedup_passes_at_floor(self):
        rows = [row("g/load_x/1", 500.0), row("g/compile_x/1", 100.0)]
        self.assertEqual(
            self.run_gate(
                rows, rows,
                "--filter", "load",
                "--sibling", "load=compile",
                "--min-speedup", "5",
            ),
            0,
        )

    def test_min_throughput_fails_below_floor(self):
        rows = [row("e/bytes_compiled/1", 90e6)]
        self.assertEqual(
            self.run_gate(
                rows, rows,
                "--filter", "bytes_compiled",
                "--min-throughput", "100000000",
            ),
            1,
        )

    def test_min_throughput_passes_above_floor(self):
        rows = [row("e/bytes_compiled/1", 150e6)]
        self.assertEqual(
            self.run_gate(
                rows, rows,
                "--filter", "bytes_compiled",
                "--min-throughput", "100000000",
            ),
            0,
        )


if __name__ == "__main__":
    unittest.main()
