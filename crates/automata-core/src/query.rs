//! Free-function spellings of the decision verbs, mirroring the
//! WALi-OpenNWA query layer (`languageContains`, `languageIsEmpty`,
//! `languageSubsetEq`, `languageEquals`).
//!
//! These are thin generic wrappers over the [`Acceptor`], [`Emptiness`],
//! [`Decide`] and [`Minimize`] traits, so one vocabulary covers every automaton model in the
//! suite. The umbrella crate re-exports this module as `query`, which is the
//! spelling examples and tests use: `query::equals(&a, &b)`.

use crate::compile::Compile;
use crate::multi::{MultiAcceptor, MultiCompile, QuerySetRun};
use crate::persist::{Persist, PersistError};
use crate::stream::{BatchAcceptor, StreamAcceptor, StreamOutcome, StreamRun};
use crate::suspend::{Snapshot, Suspend};
use crate::traits::{Acceptor, BooleanOps, Decide, Emptiness, Minimize, Witness};
use nested_words::TaggedSymbol;

/// Returns `true` if automaton `a` accepts `input`
/// (WALi's `languageContains`).
///
/// ```
/// use automata_core::query;
/// use nested_words::{Alphabet, Symbol, tagged::parse_nested_word};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length:
/// // every position flips the parity state, whatever its kind.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let even = builder.build();
///
/// let mut ab = Alphabet::from_names(["a"]);
/// let w2 = parse_nested_word("<a a>", &mut ab).unwrap();
/// let w3 = parse_nested_word("<a a a>", &mut ab).unwrap();
/// assert!(query::contains(&even, &w2));
/// assert!(!query::contains(&even, &w3));
/// ```
pub fn contains<I: ?Sized, A: Acceptor<I>>(a: &A, input: &I) -> bool {
    a.accepts(input)
}

/// Runs automaton `a` incrementally over a stream of tagged-symbol events
/// and reports the [`StreamOutcome`]: acceptance, event count, and the peak
/// stack memory the run needed (proportional to the nesting depth of the
/// stream, not its length — the §3.2 bound).
///
/// `events` is any `IntoIterator` of [`TaggedSymbol`]s: a SAX tokenizer, a
/// materialized tagged word, or a generator. The input is consumed one event
/// at a time and never buffered.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let even = builder.build();
///
/// // <a <a a> a> — four events, nesting depth 2.
/// let events = [
///     TaggedSymbol::Call(a),
///     TaggedSymbol::Call(a),
///     TaggedSymbol::Return(a),
///     TaggedSymbol::Return(a),
/// ];
/// let outcome = query::run_stream(&even, events);
/// assert!(outcome.accepted);
/// assert_eq!(outcome.events, 4);
/// assert_eq!(outcome.peak_memory, 2);
/// ```
pub fn run_stream<A, E>(a: &A, events: E) -> StreamOutcome
where
    A: StreamAcceptor,
    E: IntoIterator<Item = TaggedSymbol>,
{
    let mut run = a.start();
    for event in events {
        run.step(event);
    }
    StreamOutcome {
        accepted: run.is_accepting(),
        events: run.steps(),
        peak_memory: run.peak_memory(),
    }
}

/// Returns `true` if automaton `a` accepts the stream of tagged-symbol
/// events, evaluated in one pass with memory proportional to the nesting
/// depth (the streaming counterpart of [`contains`]).
///
/// ```
/// use automata_core::query;
/// use nested_words::{Alphabet, tagged::parse_nested_word};
/// use nwa::{Nnwa, NnwaBuilder};
/// use nested_words::Symbol;
///
/// // Nondeterministic NWA accepting words containing an a-labelled internal.
/// let a = Symbol(0);
/// let n = NnwaBuilder::new(2, 1)
///     .initial(0)
///     .accepting(1)
///     .internal(0, a, 0)
///     .internal(0, a, 1)
///     .internal(1, a, 1)
///     .call(0, a, 0, 0)
///     .call(1, a, 1, 0)
///     .ret(0, 0, a, 0)
///     .ret(1, 0, a, 1)
///     .build();
///
/// let mut ab = Alphabet::from_names(["a"]);
/// let w = parse_nested_word("<a a a>", &mut ab).unwrap();
/// assert!(query::contains_stream(&n, w.to_tagged()));
/// assert_eq!(
///     query::contains_stream(&n, w.to_tagged()),
///     query::contains(&n, &w),
/// );
/// ```
pub fn contains_stream<A, E>(a: &A, events: E) -> bool
where
    A: StreamAcceptor,
    E: IntoIterator<Item = TaggedSymbol>,
{
    run_stream(a, events).accepted
}

/// Advances N independent event streams in software-pipelined lockstep over
/// one shared automaton and returns one [`StreamOutcome`] per stream — the
/// model-generic entry point to every [`BatchAcceptor`] implementation.
///
/// Per stream, the outcome equals [`run_stream`] on that stream alone
/// (property-tested in `tests/service.rs`); the point of the batch is
/// throughput: the lanes' `state → table → state` load chains are mutually
/// independent, so interleaving them hides each lane's dependency stall
/// behind the others' table lookups. Compile once, batch many.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let compiled = query::compile(&builder.build());
///
/// let even = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// let odd = [TaggedSymbol::Internal(a)];
/// let outcomes = query::run_batch(&compiled, &[&even, &odd]);
/// assert!(outcomes[0].accepted);
/// assert!(!outcomes[1].accepted);
/// assert_eq!(outcomes[0], query::run_stream(&compiled, even));
/// ```
pub fn run_batch<A: BatchAcceptor>(a: &A, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
    a.run_batch(streams)
}

/// Compiles a set of M queries into **one** artifact that decides all of
/// them per event — the model-generic entry point to every [`MultiCompile`]
/// implementation. Drive the result with [`run_multi`] (or the bytes-in →
/// verdicts-out pipeline `nwa_xml::queries::run_multi_streaming_reader`):
/// one stream pass, M verdicts, the tokenization amortized across the set.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Two queries over {a}: "even length" and "contains a call".
/// let a = Symbol(0);
/// let mut even = NwaBuilder::new(2, 1, 0).accepting(0);
/// let mut some_call = NwaBuilder::new(2, 1, 0).accepting(1);
/// for q in 0..2usize {
///     even = even
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
///     some_call = some_call
///         .internal(q, a, q)
///         .call(q, a, 1, 0)
///         .ret(q, 0, a, q)
///         .ret(q, 1, a, q);
/// }
///
/// let set = query::compile_set(&[even.build(), some_call.build()]);
/// let outcomes = query::run_multi(&set, [TaggedSymbol::Internal(a)]);
/// assert!(!outcomes[0].accepted); // odd length
/// assert!(!outcomes[1].accepted); // no call
/// ```
pub fn compile_set<Q: MultiCompile>(queries: &[Q]) -> Q::CompiledSet {
    Q::compile_set(queries)
}

/// Runs a compiled query set over one stream of tagged-symbol events and
/// returns the per-query [`StreamOutcome`]s in query order — the
/// model-generic entry point to every [`MultiAcceptor`] implementation.
///
/// Per query, the outcome equals [`run_stream`] of that query alone over
/// the same events (property-tested in `tests/multiquery.rs`); the point of
/// the set is that the stream is consumed **once** for all M answers.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Two queries over {a}: "even length" and "contains a call".
/// let a = Symbol(0);
/// let mut even_b = NwaBuilder::new(2, 1, 0).accepting(0);
/// let mut some_call_b = NwaBuilder::new(2, 1, 0).accepting(1);
/// for q in 0..2usize {
///     even_b = even_b
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
///     some_call_b = some_call_b
///         .internal(q, a, q)
///         .call(q, a, 1, 0)
///         .ret(q, 0, a, q)
///         .ret(q, 1, a, q);
/// }
/// let (even, some_call) = (even_b.build(), some_call_b.build());
///
/// let set = query::compile_set(&[even.clone(), some_call.clone()]);
/// let events = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// let outcomes = query::run_multi(&set, events);
/// assert_eq!(outcomes[0], query::run_stream(&even, events));
/// assert_eq!(outcomes[1], query::run_stream(&some_call, events));
/// assert!(outcomes[0].accepted && outcomes[1].accepted);
/// ```
pub fn run_multi<S, E>(set: &S, events: E) -> Vec<StreamOutcome>
where
    S: MultiAcceptor,
    E: IntoIterator<Item = TaggedSymbol>,
{
    let mut run = set.start_set();
    for event in events {
        run.step(event);
    }
    run.outcomes()
}

/// Lowers automaton `a` into its dense-table execution artifact — the
/// model-generic entry point to every [`Compile`] implementation. The
/// artifact accepts exactly the streams `a` accepts (property-tested), but
/// runs them through flat, cache-friendly tables; compile once, then drive
/// the result with [`run_stream`] / [`contains_stream`] many times.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let even = builder.build();
///
/// let compiled = query::compile(&even);
/// let events = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// assert_eq!(
///     query::contains_stream(&compiled, events),
///     query::contains_stream(&even, events),
/// );
/// ```
pub fn compile<A: Compile>(a: &A) -> A::Compiled {
    a.compile()
}

/// Serializes a compiled artifact into its versioned byte format — the
/// model-generic entry point to every [`Persist`] implementation. The bytes
/// are self-describing (magic, format version, alphabet fingerprint,
/// payload checksum) and [`load`] reconstructs an equal artifact from them,
/// in this process or any other: compile once offline, ship bytes to a
/// fleet.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::{CompiledNwa, NwaBuilder};
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let compiled = query::compile(&builder.build());
///
/// let bytes = query::save(&compiled);
/// let reloaded: CompiledNwa = query::load(&bytes).unwrap();
/// assert_eq!(reloaded, compiled);
/// ```
pub fn save<A: Persist>(a: &A) -> Vec<u8> {
    a.save()
}

/// Reconstructs a compiled artifact from bytes written by [`save`] — the
/// model-generic entry point to every [`Persist`] implementation. Corrupt,
/// truncated or mismatched bytes yield a typed [`PersistError`], never a
/// panic; on success the artifact equals the saved one structurally and
/// behaviorally (property-tested in `tests/persist.rs`).
///
/// ```
/// use automata_core::{query, PersistError};
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::{CompiledNwa, NwaBuilder};
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let compiled = query::compile(&builder.build());
///
/// let bytes = query::save(&compiled);
/// let reloaded: CompiledNwa = query::load(&bytes).unwrap();
/// let events = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// assert_eq!(
///     query::run_stream(&reloaded, events),
///     query::run_stream(&compiled, events),
/// );
///
/// // Truncated bytes are a typed error, not a panic.
/// assert!(matches!(
///     query::load::<CompiledNwa>(&bytes[..bytes.len() - 1]),
///     Err(PersistError::Truncated { .. }),
/// ));
/// ```
pub fn load<A: Persist>(bytes: &[u8]) -> Result<A, PersistError> {
    A::load(bytes)
}

/// Captures the state of a batch lane as an owned, serializable
/// [`Snapshot`] — the model-generic entry point to every [`Suspend`]
/// implementation. The snapshot is the run's entire state (state id +
/// `u32` stack + peak/step counters, the Theorem 1 bound made concrete);
/// [`resume`] rebuilds the lane at the exact prefix, on this artifact or on
/// any artifact with the same fingerprint.
///
/// ```
/// use automata_core::{query, BatchAcceptor};
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let compiled = query::compile(&builder.build());
///
/// // Park a lane mid-document, inside an open call.
/// let mut lane = compiled.lane_start();
/// compiled.lane_step(&mut lane, TaggedSymbol::Call(a));
/// let parked = query::suspend(&compiled, &lane);
/// assert_eq!(parked.steps, 1);
///
/// // Resume and finish; the verdict matches the uninterrupted run.
/// let mut lane = query::resume(&compiled, &parked).unwrap();
/// compiled.lane_step(&mut lane, TaggedSymbol::Return(a));
/// let full = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// assert_eq!(compiled.lane_outcome(&lane), query::run_stream(&compiled, full));
/// ```
pub fn suspend<A: Suspend>(a: &A, lane: &A::Lane) -> Snapshot {
    a.suspend_lane(lane)
}

/// Rebuilds a batch lane from a [`Snapshot`] taken by [`suspend`] — the
/// model-generic entry point to every [`Suspend`] implementation. The
/// artifact fingerprint and the snapshot's structure are validated first: a
/// snapshot from a different artifact fails with
/// [`PersistError::FingerprintMismatch`], garbage fails with a typed error,
/// and a resumed lane can never index outside the artifact's tables.
///
/// ```
/// use automata_core::{query, BatchAcceptor, PersistError};
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let compiled = query::compile(&builder.build());
///
/// let lane = compiled.lane_start();
/// let mut parked = query::suspend(&compiled, &lane);
/// assert!(query::resume(&compiled, &parked).is_ok());
///
/// // A snapshot stamped by some other artifact is rejected, typed.
/// parked.fingerprint ^= 1;
/// assert!(matches!(
///     query::resume(&compiled, &parked),
///     Err(PersistError::FingerprintMismatch { .. }),
/// ));
/// ```
pub fn resume<A: Suspend>(a: &A, snapshot: &Snapshot) -> Result<A::Lane, PersistError> {
    a.resume_lane(snapshot)
}

/// Returns `true` if automaton `a` accepts no input at all
/// (WALi's `languageIsEmpty`).
///
/// ```
/// use automata_core::query;
/// use nested_words::Symbol;
/// use nwa::NnwaBuilder;
///
/// // The accepting state is unreachable until a transition is added.
/// let a = Symbol(0);
/// let dead = NnwaBuilder::new(2, 1).initial(0).accepting(1).build();
/// assert!(query::is_empty(&dead));
///
/// let alive = NnwaBuilder::new(2, 1)
///     .initial(0)
///     .accepting(1)
///     .internal(0, a, 1)
///     .build();
/// assert!(!query::is_empty(&alive));
/// ```
pub fn is_empty<A: Emptiness>(a: &A) -> bool {
    a.is_empty()
}

/// Returns the minimized automaton for `a` — the model-generic entry point
/// to every [`Minimize`] implementation, so succinctness sweeps can obtain
/// minimal state counts without naming a model-specific procedure.
///
/// For deterministic word and stepwise tree automata the result is the
/// unique minimal machine; for nested word automata it is the quotient by
/// the coarsest state congruence (exact on flat automata).
///
/// ```
/// use automata_core::{query, Minimize};
/// use nested_words::Symbol;
/// use tree_automata::StepwiseTA;
///
/// // Nondeterministic "some leaf is b": determinization is wasteful,
/// // minimization brings it back to the 2-state machine.
/// let (a, b) = (Symbol(0), Symbol(1));
/// let mut ta = StepwiseTA::new(2, 2);
/// ta.add_init(a, 0);
/// ta.add_init(b, 0);
/// ta.add_init(b, 1);
/// for q in 0..2 {
///     for r in 0..2 {
///         ta.add_combine(q, r, usize::from(q == 1 || r == 1));
///     }
/// }
/// ta.add_accepting(1);
/// let det = ta.determinize();
/// let min = query::minimize(&det);
/// assert!(Minimize::num_states(&min) <= Minimize::num_states(&det));
/// assert_eq!(Minimize::num_states(&min), 2);
/// ```
pub fn minimize<A: Minimize>(a: &A) -> A {
    a.minimize()
}

/// Returns a shortest-ish input accepted by `a`, or `None` iff the language
/// is empty — the model-generic entry point to every [`Witness`]
/// implementation, turning the bare emptiness bit into an explanation.
///
/// ```
/// use automata_core::query;
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NnwaBuilder;
///
/// // Accepting state only reachable through a matched b-labelled pair.
/// let b = Symbol(0);
/// let n = NnwaBuilder::new(3, 1)
///     .initial(0)
///     .accepting(2)
///     .call(0, b, 1, 1)
///     .ret(1, 1, b, 2)
///     .build();
///
/// let w = query::witness(&n).unwrap();
/// assert!(query::contains(&n, &w));
/// assert_eq!(
///     w.to_tagged(),
///     vec![TaggedSymbol::Call(b), TaggedSymbol::Return(b)],
/// );
/// ```
pub fn witness<A: Witness>(a: &A) -> Option<A::Input> {
    a.witness()
}

/// Returns an input accepted by `a` but rejected by `b`, or `None` iff
/// `L(a) ⊆ L(b)` — the explanation for a failed [`subset_eq`] check, derived
/// for every model from [`BooleanOps`] + [`Witness`] as a witness of
/// `L(a) ∩ L(b)ᶜ`.
///
/// ```
/// use automata_core::query;
/// use word_automata::DfaBuilder;
///
/// // Over {0,1}: "even number of 1s" vs "ends in 1".
/// let even_ones = DfaBuilder::new(2, 2, 0)
///     .accepting(0)
///     .transition(0, 0, 0)
///     .transition(0, 1, 1)
///     .transition(1, 0, 1)
///     .transition(1, 1, 0)
///     .build();
/// let ends_in_one = DfaBuilder::new(2, 2, 0)
///     .accepting(1)
///     .transition(0, 0, 0)
///     .transition(0, 1, 1)
///     .transition(1, 0, 0)
///     .transition(1, 1, 1)
///     .build();
///
/// // The empty word has an even number of 1s but does not end in 1.
/// let w = query::counterexample(&even_ones, &ends_in_one).unwrap();
/// assert!(query::contains(&even_ones, &w[..]));
/// assert!(!query::contains(&ends_in_one, &w[..]));
///
/// // Inclusions that hold produce no counterexample.
/// assert!(query::counterexample(&even_ones, &even_ones).is_none());
/// ```
pub fn counterexample<A>(a: &A, b: &A) -> Option<A::Input>
where
    A: Witness + BooleanOps,
{
    a.intersect(&b.complement()).witness()
}

/// Returns an input accepted by exactly one of `a` and `b` (either
/// direction), or `None` iff `L(a) = L(b)` — the separator behind a failed
/// [`equals`] check, derived from [`BooleanOps`] + [`Witness`] by trying
/// [`counterexample`] both ways.
///
/// ```
/// use automata_core::query;
/// use nested_words::Symbol;
/// use tree_automata::DetStepwiseTA;
///
/// // "contains a b-labelled node" vs its complement: any non-empty tree
/// // separates them, and exactly one side accepts the returned one.
/// let (a, b) = (Symbol(0), Symbol(1));
/// let mut ta = DetStepwiseTA::new(2, 2);
/// ta.set_init(a, 0);
/// ta.set_init(b, 1);
/// for q in 0..2 {
///     for r in 0..2 {
///         ta.set_combine(q, r, usize::from(q == 1 || r == 1));
///     }
/// }
/// ta.set_accepting(1, true);
///
/// let sep = query::distinguish(&ta, &ta.complement()).unwrap();
/// assert_ne!(query::contains(&ta, &sep), query::contains(&ta.complement(), &sep));
/// assert!(query::distinguish(&ta, &ta).is_none());
/// ```
pub fn distinguish<A>(a: &A, b: &A) -> Option<A::Input>
where
    A: Witness + BooleanOps,
{
    counterexample(a, b).or_else(|| counterexample(b, a))
}

/// Returns `true` if `L(a) ⊆ L(b)` (WALi's `languageSubsetEq`).
///
/// ```
/// use automata_core::{query, BooleanOps};
/// use word_automata::DfaBuilder;
///
/// // Over {0,1}: "even number of 1s" and "ends in 1".
/// let even_ones = DfaBuilder::new(2, 2, 0)
///     .accepting(0)
///     .transition(0, 0, 0)
///     .transition(0, 1, 1)
///     .transition(1, 0, 1)
///     .transition(1, 1, 0)
///     .build();
/// let ends_in_one = DfaBuilder::new(2, 2, 0)
///     .accepting(1)
///     .transition(0, 0, 0)
///     .transition(0, 1, 1)
///     .transition(1, 0, 0)
///     .transition(1, 1, 1)
///     .build();
///
/// let both = even_ones.intersect(&ends_in_one);
/// assert!(query::subset_eq(&both, &ends_in_one));
/// assert!(!query::subset_eq(&ends_in_one, &even_ones));
/// ```
pub fn subset_eq<A: Decide>(a: &A, b: &A) -> bool {
    a.subset_eq(b)
}

/// Returns `true` if `L(a) = L(b)` (WALi's `languageEquals`).
///
/// ```
/// use automata_core::{query, BooleanOps};
/// use nested_words::Symbol;
/// use tree_automata::DetStepwiseTA;
///
/// // Stepwise tree automaton: "the tree contains a b-labelled node".
/// let (a, b) = (Symbol(0), Symbol(1));
/// let mut ta = DetStepwiseTA::new(2, 2);
/// ta.set_init(a, 0);
/// ta.set_init(b, 1);
/// for q in 0..2 {
///     for r in 0..2 {
///         ta.set_combine(q, r, usize::from(q == 1 || r == 1));
///     }
/// }
/// ta.set_accepting(1, true);
///
/// // Double complement is a no-op on the language.
/// assert!(query::equals(&ta, &ta.complement().complement()));
/// assert!(!query::equals(&ta, &ta.complement()));
/// ```
pub fn equals<A: Decide>(a: &A, b: &A) -> bool {
    a.equals(b)
}
