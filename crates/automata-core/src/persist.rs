//! The [`Persist`] capability: versioned, endian-explicit byte formats for
//! compiled artifacts.
//!
//! A compiled artifact (`CompiledNwa`, `CompiledSummary`, `CompiledTaggedDfa`,
//! `CompiledStepwiseTA`) is plain old data — dense `u32` tables plus a few
//! scalars — so shipping one to another process is a copy, not a rebuild.
//! [`Persist::save`] lays an artifact out as a self-describing byte buffer
//! and [`Persist::load`] reconstructs it, turning the engines into
//! build-once/ship-to-a-fleet deployables: compile (and warm up) offline,
//! write the bytes next to the query, and every worker cold-starts by
//! loading tables instead of re-running the construction.
//!
//! ## The byte format
//!
//! Every saved artifact is one fixed 32-byte header followed by a payload.
//! All integers are little-endian, regardless of host byte order:
//!
//! | offset | size | field                                                  |
//! |--------|------|--------------------------------------------------------|
//! | 0      | 4    | magic `b"NWSA"`                                        |
//! | 4      | 2    | format version (`u16`, currently [`FORMAT_VERSION`])   |
//! | 6      | 2    | artifact kind (`u16`, one of [`kind`])                 |
//! | 8      | 8    | alphabet fingerprint (`u64`, [`fingerprint_alphabet`]) |
//! | 16     | 8    | payload length in bytes (`u64`)                        |
//! | 24     | 8    | payload checksum (`u64`, [`checksum_bytes`])           |
//! | 32     | —    | payload (artifact-specific, see each model crate)      |
//!
//! Payloads are built from [`Writer`] and decoded with [`Reader`]: sequences
//! of `u32`/`u64` scalars, length-prefixed `u32` arrays and length-prefixed
//! boolean arrays, laid out consecutively. Numeric arrays are stored as
//! consecutive little-endian words at fixed offsets, so the format is
//! zero-copy-capable; under `#![forbid(unsafe_code)]` the loader
//! materializes owned `Vec`s via `from_le_bytes` (a true `mmap` view is a
//! ROADMAP follow-up).
//!
//! ## Failure model
//!
//! Corrupt or truncated bytes yield a typed [`PersistError`], never a panic:
//! the header is validated field by field (magic, version, kind, length,
//! checksum), the declared alphabet fingerprint must match the alphabet the
//! payload describes, and every decoded table entry is range-checked before
//! it can ever index a table. The checksum detects corruption, not forgery —
//! the codec is for trusted storage, and its guarantee against arbitrary
//! bytes is "typed error or semantically-validated artifact", enforced by
//! the corrupt-byte fuzzing in `tests/persist.rs`.

use std::fmt;

/// The four magic bytes opening every saved artifact.
pub const MAGIC: [u8; 4] = *b"NWSA";

/// The current (and only) byte-format version.
pub const FORMAT_VERSION: u16 = 1;

/// Length of the fixed header preceding every payload.
pub const HEADER_LEN: usize = 32;

/// Artifact kind codes stored in the header, one per compiled engine.
pub mod kind {
    /// `nwa::CompiledNwa` — fused premultiplied deterministic table.
    pub const COMPILED_NWA: u16 = 1;
    /// `nwa::CompiledSummary<Nnwa>` — memoized summary subset engine.
    pub const COMPILED_SUMMARY_NNWA: u16 = 2;
    /// `nwa::CompiledSummary<JoinlessNwa>` — mode-split summary engine.
    pub const COMPILED_SUMMARY_JOINLESS: u16 = 3;
    /// `word_automata::CompiledTaggedDfa` — flat tagged-alphabet table.
    pub const COMPILED_TAGGED_DFA: u16 = 4;
    /// `tree_automata::CompiledStepwiseTA` — flat stepwise tree-event table.
    pub const COMPILED_STEPWISE_TA: u16 = 5;
    /// `automata_core::Snapshot` — suspended run state (not an automaton).
    pub const SNAPSHOT: u16 = 6;
    /// `nwa::QuerySet` — compiled multi-query artifact (product table with
    /// accept masks, or lockstep member engines).
    pub const QUERY_SET: u16 = 7;
}

/// Why a byte buffer could not be decoded into an artifact (or a snapshot
/// could not be resumed). Every variant is typed and `Copy`; decoding never
/// panics on bad input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ends before the declared content does.
    Truncated {
        /// Bytes needed to finish decoding the current field (or the whole
        /// buffer, for header-level truncation).
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The buffer does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
        /// The version this build reads ([`FORMAT_VERSION`]).
        supported: u16,
    },
    /// The header declares a different artifact kind than the caller asked
    /// to load (e.g. DFA bytes handed to the NWA loader).
    WrongKind {
        /// The kind the caller expected.
        expected: u16,
        /// The kind found in the header.
        found: u16,
    },
    /// The alphabet fingerprint in the header does not match the alphabet
    /// the artifact was (or is being) used against.
    AlphabetMismatch {
        /// The fingerprint of the expected alphabet.
        expected: u64,
        /// The fingerprint found.
        found: u64,
    },
    /// The payload checksum does not match — the bytes were corrupted.
    ChecksumMismatch {
        /// The checksum declared in the header.
        expected: u64,
        /// The checksum of the payload as received.
        found: u64,
    },
    /// The bytes decode but describe an impossible artifact (inconsistent
    /// table lengths, out-of-range transition targets, trailing bytes, …) —
    /// or a snapshot does not fit the artifact it is being resumed on.
    Malformed {
        /// What was wrong, as a static description.
        context: &'static str,
    },
    /// A snapshot was taken from a different artifact than the one asked to
    /// resume it (the artifact fingerprints disagree).
    FingerprintMismatch {
        /// The resuming artifact's fingerprint.
        expected: u64,
        /// The fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { expected, got } => {
                write!(f, "truncated artifact: needed {expected} bytes, got {got}")
            }
            PersistError::BadMagic { found } => {
                write!(f, "not a saved artifact: bad magic {found:?}")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported artifact format version {found} (this build reads {supported})"
                )
            }
            PersistError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong artifact kind: expected code {expected}, found {found}"
                )
            }
            PersistError::AlphabetMismatch { expected, found } => {
                write!(
                    f,
                    "alphabet fingerprint mismatch: expected {expected:#018x}, found {found:#018x}"
                )
            }
            PersistError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "payload checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
                )
            }
            PersistError::Malformed { context } => {
                write!(f, "malformed artifact: {context}")
            }
            PersistError::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot belongs to a different artifact: resuming artifact is {expected:#018x}, snapshot records {found:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a stream of `u64` words — the hash behind checksums and
/// fingerprints. Hashing word-wise rather than byte-wise keeps the
/// load-path checksum pass ~8× cheaper, which matters because loading must
/// beat compiling by a wide margin to be worth a deployment pipeline.
pub fn fnv1a_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut hash = FNV_OFFSET;
    for word in words {
        hash ^= word;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The payload checksum: FNV-1a over the bytes taken as little-endian
/// 64-bit words (final partial word zero-padded), seeded with the length so
/// buffers differing only in trailing zeros hash apart.
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET ^ (bytes.len() as u64).wrapping_mul(FNV_PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(last);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of an alphabet for header validation.
///
/// A compiled artifact depends on its alphabet only through the alphabet's
/// *size* — symbols enter the tables as dense indices `0..σ`, never by name —
/// so the fingerprint hashes exactly that. Loading against an alphabet of a
/// different size is what would index past the tables; renaming symbols
/// in-place is invisible to the artifact by construction.
pub fn fingerprint_alphabet(len: usize) -> u64 {
    fnv1a_words([0x616c_7068_6162_6574, len as u64])
}

/// The content fingerprint of an artifact whose identity *is* its payload:
/// the kind code mixed with the payload checksum.
///
/// This is the one-pass idiom every `Persist` impl uses: at save/compile
/// time the checksum falls out of serializing the payload, and at load time
/// [`Reader::open`] has already hashed the payload to verify it — exposed as
/// [`Reader::payload_checksum`] — so deriving the fingerprint from it costs
/// nothing. No second walk over the tables, and save/load fingerprints agree
/// by construction because both hash the same payload bytes.
pub fn fingerprint_payload(kind: u16, payload_checksum: u64) -> u64 {
    fnv1a_words([u64::from(kind), payload_checksum])
}

/// Checks a header's alphabet fingerprint against an alphabet size, as
/// every loader does once it has decoded σ from its payload.
pub fn expect_alphabet(found: u64, alphabet_len: usize) -> Result<(), PersistError> {
    let expected = fingerprint_alphabet(alphabet_len);
    if found == expected {
        Ok(())
    } else {
        Err(PersistError::AlphabetMismatch { expected, found })
    }
}

/// Builds an artifact payload field by field, then seals it with the
/// header. All integers are written little-endian.
#[derive(Debug, Default)]
pub struct Writer {
    payload: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The payload bytes written so far (used for fingerprinting).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Appends one `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends one `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `u32` array (length as `u64`, then the
    /// words back to back).
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        self.payload.reserve(vs.len() * 4);
        for &v in vs {
            self.payload.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed boolean array (length as `u64`, then one
    /// `0`/`1` byte per flag).
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_u64(vs.len() as u64);
        self.payload.extend(vs.iter().map(|&b| u8::from(b)));
    }

    /// Appends a length-prefixed opaque byte blob (length as `u64`, then the
    /// bytes verbatim). The framing lets composite artifacts nest complete
    /// member images — header, checksum and all — so the member loader
    /// revalidates them on decode.
    pub fn put_bytes(&mut self, vs: &[u8]) {
        self.put_u64(vs.len() as u64);
        self.payload.extend_from_slice(vs);
    }

    /// Prepends the header (magic, version, `kind`, alphabet fingerprint,
    /// payload length, payload checksum) and returns the finished buffer.
    pub fn seal(self, kind: u16, alphabet_fingerprint: u64) -> Vec<u8> {
        let payload = self.payload;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&alphabet_fingerprint.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum_bytes(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Decodes an artifact payload field by field after validating the header.
/// Every getter returns a typed [`PersistError`] instead of panicking on
/// short or inconsistent input.
#[derive(Debug)]
pub struct Reader<'a> {
    payload: &'a [u8],
    pos: usize,
    /// The verified payload checksum — computed once in [`Reader::open`],
    /// kept so loaders can derive content fingerprints without a second
    /// pass over the payload (see [`fingerprint_payload`]).
    checksum: u64,
}

impl<'a> Reader<'a> {
    /// Validates the fixed header of `bytes` — magic, format version,
    /// artifact `kind`, exact payload length, payload checksum — and returns
    /// the declared alphabet fingerprint plus a reader positioned at the
    /// start of the payload. The caller checks the fingerprint against the
    /// alphabet size its payload describes (see [`expect_alphabet`]).
    pub fn open(bytes: &'a [u8], kind: u16) -> Result<(u64, Reader<'a>), PersistError> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 header bytes");
        if magic != MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 header bytes"));
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let found_kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2 header bytes"));
        if found_kind != kind {
            return Err(PersistError::WrongKind {
                expected: kind,
                found: found_kind,
            });
        }
        let alphabet_fingerprint =
            u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes"));
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 header bytes"));
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8 header bytes"));
        let payload = &bytes[HEADER_LEN..];
        if (payload.len() as u64) < payload_len {
            return Err(PersistError::Truncated {
                expected: HEADER_LEN.saturating_add(payload_len as usize),
                got: bytes.len(),
            });
        }
        if (payload.len() as u64) > payload_len {
            return Err(PersistError::Malformed {
                context: "trailing bytes after the declared payload",
            });
        }
        let found = checksum_bytes(payload);
        if found != checksum {
            return Err(PersistError::ChecksumMismatch {
                expected: checksum,
                found,
            });
        }
        Ok((
            alphabet_fingerprint,
            Reader {
                payload,
                pos: 0,
                checksum,
            },
        ))
    }

    /// The payload checksum verified by [`Reader::open`] — the single
    /// integrity walk's result, reusable for content fingerprints.
    pub fn payload_checksum(&self) -> u64 {
        self.checksum
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let remaining = self.payload.len() - self.pos;
        if remaining < n {
            return Err(PersistError::Truncated {
                expected: n,
                got: remaining,
            });
        }
        let out = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte field"),
        ))
    }

    /// Reads one `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte field"),
        ))
    }

    /// Reads a length-prefixed `u32` array. The declared length is bounded
    /// by the remaining payload before anything is allocated, so a hostile
    /// length prefix cannot force an oversized allocation.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let len = self.get_len()?;
        let bytes = self.take(len.checked_mul(4).ok_or(PersistError::Malformed {
            context: "array length overflows",
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Reads a length-prefixed boolean array; any byte other than `0`/`1`
    /// is malformed.
    pub fn get_bool_vec(&mut self) -> Result<Vec<bool>, PersistError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(PersistError::Malformed {
                    context: "boolean byte out of range",
                }),
            })
            .collect()
    }

    /// Reads a length-prefixed opaque byte blob written by
    /// [`Writer::put_bytes`]. The declared length is bounded by the
    /// remaining payload before anything is allocated.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let len = self.get_len()?;
        Ok(self.take(len)?.to_vec())
    }

    fn get_len(&mut self) -> Result<usize, PersistError> {
        let len = self.get_u64()?;
        usize::try_from(len).map_err(|_| PersistError::Malformed {
            context: "array length overflows",
        })
    }

    /// Asserts the payload has been consumed exactly; leftover bytes mean
    /// the buffer does not describe the artifact the header claims.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos == self.payload.len() {
            Ok(())
        } else {
            Err(PersistError::Malformed {
                context: "unconsumed bytes at the end of the payload",
            })
        }
    }
}

/// A compiled artifact that can round-trip through a versioned byte format.
///
/// Implementations guarantee:
///
/// 1. **round-trip** — `Self::load(&a.save())` succeeds and the result
///    equals `a` structurally (`PartialEq`) and behaviorally;
/// 2. **no panics** — `load` on arbitrary bytes returns a typed
///    [`PersistError`] rather than panicking, and a successfully loaded
///    artifact can never index out of its own tables (every decoded entry
///    is range-checked);
/// 3. **identity** — [`fingerprint`](Persist::fingerprint) is a stable
///    content hash: equal artifacts have equal fingerprints, and a
///    [`Snapshot`](crate::Snapshot) stamped by one artifact resumes only on
///    artifacts with the same fingerprint.
///
/// The free-function spellings are
/// [`query::save`](crate::query::save) / [`query::load`](crate::query::load).
pub trait Persist: Sized {
    /// The artifact kind code written into the header (one of [`kind`]).
    const KIND: u16;

    /// Serializes the artifact into the versioned byte format.
    fn save(&self) -> Vec<u8>;

    /// Decodes an artifact from bytes, validating the header, checksum and
    /// every table entry. Never panics on bad input.
    fn load(bytes: &[u8]) -> Result<Self, PersistError>;

    /// A stable content hash identifying this artifact — what snapshots are
    /// stamped with and resumption validates.
    fn fingerprint(&self) -> u64;

    /// The fingerprint of the alphabet the artifact was compiled against
    /// ([`fingerprint_alphabet`] of its σ).
    fn alphabet_fingerprint(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_faults_are_typed() {
        let mut w = Writer::new();
        w.put_u32(7);
        let bytes = w.seal(kind::COMPILED_NWA, fingerprint_alphabet(2));

        // Reading back the right kind succeeds.
        let (fp, mut r) = Reader::open(&bytes, kind::COMPILED_NWA).unwrap();
        assert_eq!(fp, fingerprint_alphabet(2));
        assert_eq!(r.get_u32().unwrap(), 7);
        r.finish().unwrap();

        // Truncation at every length is typed.
        for cut in 0..bytes.len() {
            let Err(err) = Reader::open(&bytes[..cut], kind::COMPILED_NWA) else {
                panic!("truncated buffer must not open");
            };
            assert!(matches!(
                err,
                PersistError::Truncated { .. } | PersistError::Malformed { .. }
            ));
        }

        // Kind and magic mismatches are typed.
        assert!(matches!(
            Reader::open(&bytes, kind::COMPILED_TAGGED_DFA),
            Err(PersistError::WrongKind { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Reader::open(&bad, kind::COMPILED_NWA),
            Err(PersistError::BadMagic { .. })
        ));

        // A payload flip is caught by the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            Reader::open(&flipped, kind::COMPILED_NWA),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn arrays_round_trip_and_reject_garbage() {
        let mut w = Writer::new();
        w.put_u32_slice(&[1, 2, 3]);
        w.put_bools(&[true, false]);
        w.put_u64(u64::MAX);
        let bytes = w.seal(kind::SNAPSHOT, 0);
        let (_, mut r) = Reader::open(&bytes, kind::SNAPSHOT).unwrap();
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_bool_vec().unwrap(), vec![true, false]);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        r.finish().unwrap();

        // A boolean byte outside {0, 1} is malformed, not a panic.
        let mut w = Writer::new();
        w.put_u64(1);
        w.payload.push(2);
        let bytes = w.seal(kind::SNAPSHOT, 0);
        let (_, mut r) = Reader::open(&bytes, kind::SNAPSHOT).unwrap();
        assert!(matches!(
            r.get_bool_vec(),
            Err(PersistError::Malformed { .. })
        ));

        // A hostile length prefix is a typed truncation, not an allocation.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.seal(kind::SNAPSHOT, 0);
        let (_, mut r) = Reader::open(&bytes, kind::SNAPSHOT).unwrap();
        assert!(r.get_u32_vec().is_err());
    }

    #[test]
    fn byte_blobs_round_trip_and_bound_their_length() {
        let mut w = Writer::new();
        w.put_bytes(b"inner artifact image");
        w.put_bytes(b"");
        w.put_u32(9);
        let bytes = w.seal(kind::QUERY_SET, 0);
        let (_, mut r) = Reader::open(&bytes, kind::QUERY_SET).unwrap();
        assert_eq!(r.get_bytes().unwrap(), b"inner artifact image");
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
        assert_eq!(r.get_u32().unwrap(), 9);
        r.finish().unwrap();

        // A hostile blob length is a typed truncation, not an allocation.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.seal(kind::QUERY_SET, 0);
        let (_, mut r) = Reader::open(&bytes, kind::QUERY_SET).unwrap();
        assert!(matches!(r.get_bytes(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn checksum_separates_padding_from_content() {
        assert_ne!(checksum_bytes(&[0, 0, 0]), checksum_bytes(&[0, 0, 0, 0]));
        assert_ne!(checksum_bytes(b"abc"), checksum_bytes(b"abd"));
        assert_eq!(checksum_bytes(b"abc"), checksum_bytes(b"abc"));
    }
}
