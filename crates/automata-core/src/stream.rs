//! Streaming (event-at-a-time) runs over tagged-symbol streams.
//!
//! The headline application of the paper (§1, §3.2) is SAX processing: a
//! document arrives as a stream of open-tags, text tokens and close-tags —
//! i.e. as a sequence of [`TaggedSymbol`] events — and a nested word
//! automaton decides membership in a single pass with memory proportional to
//! the nesting depth, never materializing the document. The batch
//! [`Acceptor`](crate::Acceptor) trait cannot express that: it takes the
//! whole input at once.
//!
//! [`StreamAcceptor`] is the incremental counterpart. A model starts a
//! [`StreamRun`], feeds it one event at a time, and may interrogate it at any
//! prefix: would stopping here accept, how many stack frames are live right
//! now, and what is the peak memory the run has ever needed. The free
//! functions [`query::run_stream`](crate::query::run_stream) and
//! [`query::contains_stream`](crate::query::contains_stream) drive a run
//! over any `IntoIterator` of events.

use nested_words::TaggedSymbol;

/// One in-progress run of an automaton over a stream of tagged symbols.
///
/// A run is created by [`StreamAcceptor::start`], consumes events via
/// [`step`](StreamRun::step), and can be queried after any prefix. Runs
/// borrow their automaton, so they are cheap to create and carry only the
/// per-run state (for nested word automata: a stack whose height equals the
/// number of currently open calls).
pub trait StreamRun {
    /// Consumes one tagged-symbol event.
    fn step(&mut self, event: TaggedSymbol);

    /// Returns `true` if ending the stream now would accept the prefix read
    /// so far.
    fn is_accepting(&self) -> bool;

    /// The number of stack frames currently live (equals the number of
    /// currently open calls; `0` for stack-free models such as word
    /// automata).
    fn stack_height(&self) -> usize;

    /// The maximum [`stack_height`](StreamRun::stack_height) observed so far
    /// — the memory bound of §3.2: proportional to the depth of the input,
    /// not its length.
    fn peak_memory(&self) -> usize;

    /// Number of events consumed so far.
    fn steps(&self) -> usize;
}

/// An automaton that can run incrementally over a stream of
/// [`TaggedSymbol`] events.
///
/// Implementors: `Nwa` runs its deterministic transition functions directly;
/// `Nnwa` and `JoinlessNwa` simulate the on-the-fly subset construction over
/// (summary-set, stack) configurations; `Dfa` reads the events as letters of
/// the tagged alphabet Σ̂ (the flat view of §3.3) with no stack at all.
pub trait StreamAcceptor {
    /// The run type; borrows the automaton for the duration of the run.
    type Run<'a>: StreamRun
    where
        Self: 'a;

    /// Starts a fresh run in the initial configuration with an empty stack.
    fn start(&self) -> Self::Run<'_>;
}

/// Summary of a completed streaming evaluation, as reported by
/// [`query::run_stream`](crate::query::run_stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Whether the automaton accepted the stream.
    pub accepted: bool,
    /// Number of events processed.
    pub events: usize,
    /// Maximum stack height used: proportional to the nesting depth of the
    /// input, not to its length.
    pub peak_memory: usize,
}
