//! Streaming (event-at-a-time) runs over tagged-symbol streams.
//!
//! The headline application of the paper (§1, §3.2) is SAX processing: a
//! document arrives as a stream of open-tags, text tokens and close-tags —
//! i.e. as a sequence of [`TaggedSymbol`] events — and a nested word
//! automaton decides membership in a single pass with memory proportional to
//! the nesting depth, never materializing the document. The batch
//! [`Acceptor`](crate::Acceptor) trait cannot express that: it takes the
//! whole input at once.
//!
//! [`StreamAcceptor`] is the incremental counterpart. A model starts a
//! [`StreamRun`], feeds it one event at a time, and may interrogate it at any
//! prefix: would stopping here accept, how many stack frames are live right
//! now, and what is the peak memory the run has ever needed. The free
//! functions [`query::run_stream`](crate::query::run_stream) and
//! [`query::contains_stream`](crate::query::contains_stream) drive a run
//! over any `IntoIterator` of events.
//!
//! [`BatchAcceptor`] is the multi-stream counterpart: N independent streams
//! advanced in software-pipelined lockstep over one shared (compiled)
//! automaton, each stream's state held in an owned, `Send`able *lane*. One
//! stream's per-event cost is bounded by the `state → table → state`
//! load-to-use chain; interleaving independent lanes hides each lane's
//! dependency stall behind the others' table lookups, which is what the
//! `nwa-service` batched runner and decision service are built on
//! ([`query::run_batch`](crate::query::run_batch) is the free-function
//! spelling).

use nested_words::TaggedSymbol;

/// One in-progress run of an automaton over a stream of tagged symbols.
///
/// A run is created by [`StreamAcceptor::start`], consumes events via
/// [`step`](StreamRun::step), and can be queried after any prefix. Runs
/// borrow their automaton, so they are cheap to create and carry only the
/// per-run state (for nested word automata: a stack whose height equals the
/// number of currently open calls).
pub trait StreamRun {
    /// Consumes one tagged-symbol event.
    fn step(&mut self, event: TaggedSymbol);

    /// Consumes a slice of events in one call.
    ///
    /// Observably identical to stepping each event in order; the default
    /// does exactly that. Compiled engines override it to hoist the run
    /// state into registers for the whole slice, which is what the
    /// bytes-in → verdict-out pipeline
    /// (`nwa_xml::queries::run_streaming_reader`) feeds with buffered
    /// event runs from the bulk scanner.
    fn step_slice(&mut self, events: &[TaggedSymbol]) {
        for &event in events {
            self.step(event);
        }
    }

    /// Returns `true` if ending the stream now would accept the prefix read
    /// so far.
    fn is_accepting(&self) -> bool;

    /// The number of stack frames currently live (equals the number of
    /// currently open calls; `0` for stack-free models such as word
    /// automata).
    fn stack_height(&self) -> usize;

    /// The maximum [`stack_height`](StreamRun::stack_height) observed so far
    /// — the memory bound of §3.2: proportional to the depth of the input,
    /// not its length.
    fn peak_memory(&self) -> usize;

    /// Number of events consumed so far.
    fn steps(&self) -> usize;
}

/// An automaton that can run incrementally over a stream of
/// [`TaggedSymbol`] events.
///
/// Implementors: `Nwa` runs its deterministic transition functions directly;
/// `Nnwa` and `JoinlessNwa` simulate the on-the-fly subset construction over
/// (summary-set, stack) configurations; `Dfa` reads the events as letters of
/// the tagged alphabet Σ̂ (the flat view of §3.3) with no stack at all.
pub trait StreamAcceptor {
    /// The run type; borrows the automaton for the duration of the run.
    type Run<'a>: StreamRun
    where
        Self: 'a;

    /// Starts a fresh run in the initial configuration with an empty stack.
    fn start(&self) -> Self::Run<'_>;
}

/// Batched execution: advancing many independent event streams in lockstep
/// over one shared automaton.
///
/// A [`StreamRun`] is the right shape for one stream, but its per-event cost
/// is dominated by the load-to-use dependency chain `state → table → state`:
/// the next table lookup cannot issue before the previous one retires, so a
/// single run leaves most of the core's memory-level parallelism idle. A
/// *batch* breaks the bottleneck by construction: N streams advance in
/// round-robin lockstep over the same shared tables, and because the lanes'
/// chains are mutually independent, lane B's table load executes in the
/// shadow of lane A's — the software-pipelining observation behind the
/// multi-stream service layer (`nwa-service`).
///
/// The capability is factored as a *lane*: a self-contained, owned per-stream
/// state ([`BatchAcceptor::Lane`] — for nested word automata a `u32` linear
/// state plus a `u32` stack; nothing borrows the automaton), advanced one
/// event at a time by [`lane_step`](BatchAcceptor::lane_step). The automaton
/// itself stays shared and immutable (`&self` everywhere), so one compiled
/// artifact can drive any number of lanes from any number of threads.
///
/// Laws (property-tested in `tests/service.rs`):
///
/// 1. **lane ≡ run** — stepping a lane through a stream observes exactly what
///    a [`StreamRun`] observes at every prefix (acceptance, stack height,
///    peak memory, step count);
/// 2. **batch ≡ sequential** — [`run_batch`](BatchAcceptor::run_batch)
///    returns, per lane, the [`StreamOutcome`] of running that lane's stream
///    alone.
pub trait BatchAcceptor: StreamAcceptor {
    /// Self-contained per-stream state: owns its stack, borrows nothing, so
    /// a batch is just N lanes next to each other and lanes can migrate
    /// across worker threads.
    type Lane: Send;

    /// A fresh lane in the initial configuration with an empty stack.
    fn lane_start(&self) -> Self::Lane;

    /// Advances one lane by one event. Implementations keep this small and
    /// branch-light — it is the body of the batched inner loop.
    fn lane_step(&self, lane: &mut Self::Lane, event: TaggedSymbol);

    /// Would stopping this lane's stream now accept the prefix read so far.
    fn lane_accepting(&self, lane: &Self::Lane) -> bool;

    /// The lane's completed-run observables: acceptance, events consumed,
    /// peak stack height.
    fn lane_outcome(&self, lane: &Self::Lane) -> StreamOutcome;

    /// Advances stream `i` through lane `i` for every `i`, interleaved in
    /// lockstep: the common prefix of all streams runs round-robin (one
    /// event per lane per round, so the lanes' table loads overlap), then
    /// each lane drains its remaining tail. Returns one [`StreamOutcome`]
    /// per stream.
    ///
    /// The default implementation performs the lockstep interleaving
    /// generically; with [`lane_step`](BatchAcceptor::lane_step) inlined
    /// the round loop is exactly the software-pipelined shape the batched
    /// runner wants, so implementors rarely need to override it.
    fn run_batch(&self, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
        let mut lanes: Vec<Self::Lane> = streams.iter().map(|_| self.lane_start()).collect();
        let common = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        for round in 0..common {
            for (lane, stream) in lanes.iter_mut().zip(streams) {
                self.lane_step(lane, stream[round]);
            }
        }
        for (lane, stream) in lanes.iter_mut().zip(streams) {
            for &event in &stream[common..] {
                self.lane_step(lane, event);
            }
        }
        lanes.iter().map(|lane| self.lane_outcome(lane)).collect()
    }
}

/// Summary of a completed streaming evaluation, as reported by
/// [`query::run_stream`](crate::query::run_stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Whether the automaton accepted the stream.
    pub accepted: bool,
    /// Number of events processed.
    pub events: usize,
    /// Maximum stack height used: proportional to the nesting depth of the
    /// input, not to its length.
    pub peak_memory: usize,
}
