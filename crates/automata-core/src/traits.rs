//! The acceptor/boolean/decision traits shared by every automaton model.

/// Membership: the model reads an input of type `Input` and accepts or
/// rejects it.
///
/// `Input` is a generic parameter rather than an associated type because one
/// model can accept several input encodings (a nested word automaton reads
/// [`nested_words::NestedWord`]s, a word automaton reads flat `[usize]`
/// slices, tree automata read [`nested_words::OrderedTree`]s), and a caller
/// holding any `Acceptor<I>` can test membership without knowing the model.
pub trait Acceptor<Input: ?Sized> {
    /// Returns `true` if the automaton accepts `input`.
    fn accepts(&self, input: &Input) -> bool;
}

/// Boolean language operations.
///
/// Implementations must satisfy, for the accepted languages,
/// `L(a.intersect(b)) = L(a) ∩ L(b)`, `L(a.union(b)) = L(a) ∪ L(b)` and
/// `L(a.complement()) = Dᵃ \ L(a)` where `Dᵃ` is the model's input domain
/// (all nested words over Σ, all flat words, all non-empty trees, …).
pub trait BooleanOps: Sized {
    /// The automaton accepting `L(self) ∩ L(other)`.
    ///
    /// Panics if the two automata are over different alphabets.
    fn intersect(&self, other: &Self) -> Self;

    /// The automaton accepting `L(self) ∪ L(other)`.
    ///
    /// Panics if the two automata are over different alphabets.
    fn union(&self, other: &Self) -> Self;

    /// The automaton accepting the complement of `L(self)` relative to the
    /// model's input domain. Nondeterministic models determinize first, so
    /// this can be exponential.
    fn complement(&self) -> Self;
}

/// The language-emptiness decision.
pub trait Emptiness {
    /// Returns `true` if the automaton accepts no input at all.
    fn is_empty(&self) -> bool;
}

/// The WALi-style decision verbs: inclusion and equivalence.
///
/// Both have default implementations by reduction to [`BooleanOps`] +
/// [`Emptiness`]: `L(a) ⊆ L(b)` iff `L(a) ∩ L(b)ᶜ = ∅`. Models with a
/// cheaper specialised procedure (e.g. deterministic automata that avoid
/// re-determinizing) override the defaults.
pub trait Decide: BooleanOps + Emptiness {
    /// Returns `true` if `L(self) ⊆ L(other)`.
    fn subset_eq(&self, other: &Self) -> bool {
        self.intersect(&other.complement()).is_empty()
    }

    /// Returns `true` if `L(self) = L(other)`.
    fn equals(&self, other: &Self) -> bool {
        self.subset_eq(other) && other.subset_eq(self)
    }
}
