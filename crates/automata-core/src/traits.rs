//! The acceptor/boolean/decision traits shared by every automaton model.

/// Membership: the model reads an input of type `Input` and accepts or
/// rejects it.
///
/// `Input` is a generic parameter rather than an associated type because one
/// model can accept several input encodings (a nested word automaton reads
/// [`nested_words::NestedWord`]s, a word automaton reads flat `[usize]`
/// slices, tree automata read [`nested_words::OrderedTree`]s), and a caller
/// holding any `Acceptor<I>` can test membership without knowing the model.
pub trait Acceptor<Input: ?Sized> {
    /// Returns `true` if the automaton accepts `input`.
    fn accepts(&self, input: &Input) -> bool;
}

/// Boolean language operations.
///
/// Implementations must satisfy, for the accepted languages,
/// `L(a.intersect(b)) = L(a) ∩ L(b)`, `L(a.union(b)) = L(a) ∪ L(b)` and
/// `L(a.complement()) = Dᵃ \ L(a)` where `Dᵃ` is the model's input domain
/// (all nested words over Σ, all flat words, all non-empty trees, …).
pub trait BooleanOps: Sized {
    /// The automaton accepting `L(self) ∩ L(other)`.
    ///
    /// Panics if the two automata are over different alphabets.
    fn intersect(&self, other: &Self) -> Self;

    /// The automaton accepting `L(self) ∪ L(other)`.
    ///
    /// Panics if the two automata are over different alphabets.
    fn union(&self, other: &Self) -> Self;

    /// The automaton accepting the complement of `L(self)` relative to the
    /// model's input domain. Nondeterministic models determinize first, so
    /// this can be exponential.
    fn complement(&self) -> Self;
}

/// The language-emptiness decision.
pub trait Emptiness {
    /// Returns `true` if the automaton accepts no input at all.
    fn is_empty(&self) -> bool;
}

/// State-minimization: the quotient of an automaton by a language-preserving
/// congruence on its states.
///
/// The paper's succinctness results (Theorems 3, 5 and 8) all measure models
/// against the *minimal* automaton — the index of the right-congruence of
/// §3.4 — so every deterministic model exposes its minimization procedure
/// behind this one trait and the experiments can sweep models generically
/// via [`crate::query::minimize`].
///
/// Implementations must satisfy two laws, property-tested in the suite:
///
/// 1. **language preservation** — `a.minimize()` accepts exactly the inputs
///    `a` accepts;
/// 2. **idempotence** — a second pass changes nothing:
///    `a.minimize().minimize().num_states() == a.minimize().num_states()`.
///
/// For word automata (`Dfa`) and stepwise tree automata (`DetStepwiseTA`)
/// the result is the unique minimal deterministic machine (the Myhill–Nerode
/// quotient). Nested word automata have no unique minimum in general, so
/// `Nwa::minimize` returns the quotient by the coarsest congruence on
/// reachable states — exact on flat automata (where it coincides with DFA
/// minimization over the tagged alphabet Σ̂, Theorem 2), a sound reduction
/// otherwise.
///
/// ```
/// use automata_core::Minimize;
/// use word_automata::Dfa;
///
/// // "ends in 1" with each state duplicated: 4 states, minimal is 2.
/// let mut d = Dfa::new(4, 2, 0);
/// d.set_accepting(1, true);
/// d.set_accepting(3, true);
/// for (q, t0, t1) in [(0, 2, 1), (1, 2, 3), (2, 0, 3), (3, 0, 1)] {
///     d.set_transition(q, 0, t0);
///     d.set_transition(q, 1, t1);
/// }
/// let m = Minimize::minimize(&d);
/// assert_eq!(Minimize::num_states(&m), 2);
/// assert_eq!(m.accepts(&[0, 1]), d.accepts(&[0, 1]));
/// ```
pub trait Minimize: Sized {
    /// Returns an equivalent automaton with the fewest states the model's
    /// minimization procedure achieves (see the trait docs for which models
    /// guarantee true minimality).
    fn minimize(&self) -> Self;

    /// Number of states — the quantity the succinctness theorems compare.
    fn num_states(&self) -> usize;
}

/// Witness extraction: producing a concrete accepted input instead of a bare
/// emptiness bit.
///
/// Every decision verb in the suite bottoms out in an emptiness check, and a
/// `false` answer from [`Decide::equals`] or [`Decide::subset_eq`] is opaque
/// without an input that separates the two languages. `Witness` is the
/// capability that makes the decision layer self-explaining: a model that
/// implements it can answer *why* its language is non-empty, and — combined
/// with [`BooleanOps`] — the derived entry points
/// [`crate::query::counterexample`] and [`crate::query::distinguish`]
/// explain failed inclusion and equivalence checks for free.
///
/// Implementations must satisfy, and the suite property-tests:
///
/// 1. **soundness** — a returned input is accepted:
///    `a.witness().map_or(true, |w| a.accepts(&w))`;
/// 2. **completeness** — `a.witness().is_none()` exactly when the language
///    is empty (agreement with [`Emptiness::is_empty`]).
///
/// Witnesses are *shortest-ish*: every implementation extracts a minimal
/// input under its own derivation rules (BFS for DFAs, shortest summary
/// derivations for nested word automata, smallest witness trees for
/// stepwise tree automata), but no global minimality across encodings is
/// promised.
///
/// Unlike [`Acceptor`], whose input parameter may be unsized (`[usize]`),
/// the associated `Input` here is the *owned* form a witness is produced as
/// (`Vec<usize>` for word automata, [`nested_words::NestedWord`] for nested
/// word automata, [`nested_words::OrderedTree`] for tree automata).
///
/// ```
/// use automata_core::Witness;
/// use word_automata::Dfa;
///
/// // "contains a 1" over {0,1}: shortest witness is [1].
/// let mut d = Dfa::new(2, 2, 0);
/// d.set_accepting(1, true);
/// d.set_transition(0, 0, 0);
/// d.set_transition(0, 1, 1);
/// d.set_transition(1, 0, 1);
/// d.set_transition(1, 1, 1);
/// assert_eq!(d.witness(), Some(vec![1]));
/// ```
pub trait Witness {
    /// The owned input type witnesses are produced as.
    type Input;

    /// Returns a shortest-ish accepted input, or `None` iff the language is
    /// empty.
    fn witness(&self) -> Option<Self::Input>;
}

/// The WALi-style decision verbs: inclusion and equivalence.
///
/// Both have default implementations by reduction to [`BooleanOps`] +
/// [`Emptiness`]: `L(a) ⊆ L(b)` iff `L(a) ∩ L(b)ᶜ = ∅`. Models with a
/// cheaper specialised procedure (e.g. deterministic automata that avoid
/// re-determinizing) override the defaults.
pub trait Decide: BooleanOps + Emptiness {
    /// Returns `true` if `L(self) ⊆ L(other)`.
    fn subset_eq(&self, other: &Self) -> bool {
        self.intersect(&other.complement()).is_empty()
    }

    /// Returns `true` if `L(self) = L(other)`.
    fn equals(&self, other: &Self) -> bool {
        self.subset_eq(other) && other.subset_eq(self)
    }
}
