//! # automata-core
//!
//! The shared vocabulary of the nested-words suite: every automaton model —
//! nested word automata, word automata, tree automata and the pushdown
//! variants — implements the same small set of traits, so that callers can
//! test membership, combine languages and decide inclusion or equivalence
//! without knowing which machine model they hold.
//!
//! The design follows the query layer of WALi-OpenNWA (`languageContains`,
//! `languageSubsetEq`, `languageIsEmpty`, `languageEquals`): a handful of
//! verbs, uniform across models, with inclusion and equivalence derived from
//! boolean operations plus emptiness.
//!
//! * [`Acceptor`] — membership: `a.accepts(&input)` for whatever input type
//!   the model reads (nested words, ordered trees, flat symbol slices);
//! * [`StreamAcceptor`] / [`StreamRun`] — incremental membership over
//!   streams of tagged-symbol events (SAX processing, §3.2): start a run,
//!   feed one event at a time, and observe acceptance and peak stack memory
//!   at any prefix;
//! * [`BatchAcceptor`] — batched multi-stream membership
//!   ([`query::run_batch`]): N independent event streams advanced in
//!   software-pipelined lockstep over one shared automaton, each stream's
//!   state an owned `Send`able lane — the capability the `nwa-service`
//!   batched runner and concurrent decision service drive;
//! * [`MultiCompile`] / [`MultiAcceptor`] / [`QuerySetRun`] — multi-query
//!   execution ([`query::compile_set`], [`query::run_multi`]): M queries
//!   compiled into one artifact stepped once per event, yielding a
//!   per-query verdict bitmask — one tokenization pass answers the whole
//!   query set;
//! * [`Compile`] — lowering into a dense-table execution artifact
//!   ([`query::compile`]): the compiled form runs the same [`StreamAcceptor`]
//!   protocol with cache-friendly flat tables, trading a one-time
//!   compilation pass (and, for subset engines, memoized row storage) for
//!   per-event speed;
//! * [`Persist`] — versioned, endian-explicit byte formats for compiled
//!   artifacts ([`query::save`], [`query::load`]): an artifact is plain old
//!   data, so it can be built (and warmed) once offline and shipped to a
//!   fleet as bytes, with a checked header (magic, format version, alphabet
//!   fingerprint, payload checksum) turning corruption into a typed
//!   [`PersistError`] instead of a panic;
//! * [`Suspend`] — first-class run state ([`query::suspend`],
//!   [`query::resume`]): a live run or lane exports an owned, serializable
//!   [`Snapshot`] (state id + `u32` stack + peak/step counters — the
//!   Theorem 1 memory bound made concrete), and any artifact with the same
//!   fingerprint resumes it at the exact prefix;
//! * [`BooleanOps`] — intersection, union, complement;
//! * [`Emptiness`] — the language-emptiness decision;
//! * [`Decide`] — inclusion and equivalence, with default implementations
//!   via `intersect` + `complement` + `is_empty`;
//! * [`Minimize`] — state minimization ([`query::minimize`]), so the
//!   succinctness experiments sweep minimal state counts across models
//!   generically;
//! * [`Witness`] — emptiness witness extraction ([`query::witness`]): a
//!   shortest-ish accepted input instead of a bare boolean, with
//!   [`query::counterexample`] and [`query::distinguish`] derived from
//!   [`BooleanOps`] + [`Witness`] to explain failed inclusion and
//!   equivalence checks;
//! * [`Builder`] — the fluent-construction idiom shared by `NwaBuilder`,
//!   `NnwaBuilder`, `DfaBuilder` and friends in the model crates;
//! * [`StateId`] — a typed state index, so builder call sites cannot confuse
//!   states with symbols or stack entries;
//! * [`query`] — free-function spellings of the decision verbs
//!   ([`query::contains`], [`query::is_empty`], [`query::subset_eq`],
//!   [`query::equals`]) and of the streaming runs
//!   ([`query::run_stream`], [`query::contains_stream`]).
//!
//! This crate depends only on `nested-words` (for the input types); the
//! model crates depend on it and implement the traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod compile;
pub mod ids;
pub mod multi;
pub mod persist;
pub mod query;
pub mod stream;
pub mod suspend;
pub mod traits;

pub use build::Builder;
pub use compile::Compile;
pub use ids::StateId;
pub use multi::{MultiAcceptor, MultiCompile, QuerySetRun};
pub use persist::{Persist, PersistError};
pub use stream::{BatchAcceptor, StreamAcceptor, StreamOutcome, StreamRun};
pub use suspend::{Snapshot, Suspend};
pub use traits::{Acceptor, BooleanOps, Decide, Emptiness, Minimize, Witness};
