//! Typed state indices.
//!
//! Automata in the suite store their transition tables densely and refer to
//! states by small integers. Passing those integers around as bare `usize`
//! makes call sites like `set_return(0, 1, a, 2)` easy to get wrong — which
//! argument was the hierarchical state again? [`StateId`] is a zero-cost
//! newtype used by the fluent builders so that states are distinguishable
//! from symbols and counts at the type level, while converting freely from
//! integer literals at call sites.

use std::fmt;

/// A typed index of an automaton state.
///
/// `StateId` is only meaningful relative to the automaton that allocated it.
/// It converts from and to `usize` so existing dense-table code interoperates
/// without friction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// Creates a state id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        StateId(index as u32)
    }

    /// Returns the dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for StateId {
    #[inline]
    fn from(v: usize) -> Self {
        StateId::new(v)
    }
}

impl From<u32> for StateId {
    #[inline]
    fn from(v: u32) -> Self {
        StateId(v)
    }
}

impl From<i32> for StateId {
    /// Lets untyped integer literals (which default to `i32`) flow into
    /// builder call sites. Panics on negative values.
    #[inline]
    fn from(v: i32) -> Self {
        assert!(v >= 0, "state index must be non-negative");
        StateId(v as u32)
    }
}

impl From<StateId> for usize {
    #[inline]
    fn from(s: StateId) -> usize {
        s.index()
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let q: StateId = 7usize.into();
        assert_eq!(q.index(), 7);
        assert_eq!(usize::from(q), 7);
        assert_eq!(StateId::new(7), q);
        assert_eq!(q.to_string(), "q7");
    }
}
