//! The [`Suspend`] capability: first-class, serializable run state.
//!
//! Theorem 1 of the paper is a statement about run state: deciding a nested
//! word query over a stream needs memory proportional to the *nesting
//! depth*, not the input length — a live run is nothing but a state id plus
//! a depth-bounded stack of `u32`s. [`Suspend`] makes that state a value: a
//! [`StreamRun`](crate::StreamRun)-style run or a
//! [`BatchAcceptor`] lane exports an owned
//! [`Snapshot`] at any prefix, and any artifact with the same
//! [`fingerprint`](crate::Persist::fingerprint) resumes it at exactly that
//! prefix — including in another process, via [`Snapshot::to_bytes`] and an
//! artifact reloaded with [`Persist::load`](crate::Persist::load).
//!
//! This is what lets a decision service park a long-lived document between
//! bursts of input (the parked job *is* its snapshot), migrate it across
//! workers, or hand it to a different machine holding the same artifact
//! bytes.

use crate::persist::{kind, PersistError, Reader, Writer};
use crate::stream::BatchAcceptor;

/// The owned, serializable state of one suspended run.
///
/// The fields use one model-generic shape — a `u32` state, a `u32` stack,
/// peak/step counters — but their *encoding* is model-specific (premultiplied
/// row offsets for the dense NWA engine, interned summary ids plus call
/// symbols for the subset engine, …); a snapshot is therefore only
/// meaningful to artifacts whose [`fingerprint`](Snapshot::fingerprint)
/// matches, which is exactly what
/// [`Suspend::resume_lane`] / [`Suspend::resume_run`] enforce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the artifact that took the snapshot
    /// ([`Persist::fingerprint`](crate::Persist::fingerprint)); resumption
    /// fails with [`PersistError::FingerprintMismatch`] on any other
    /// artifact.
    pub fingerprint: u64,
    /// The current state, in the artifact's own encoding.
    pub state: u32,
    /// The run's stack, in the artifact's own frame encoding (one or more
    /// `u32` words per open call).
    pub stack: Vec<u32>,
    /// Peak stack height observed so far, in stack *frames* — the
    /// [`peak_memory`](crate::StreamRun::peak_memory) observable.
    pub peak: u32,
    /// Events consumed so far.
    pub steps: u64,
    /// Model-specific integrity word (e.g. a content hash of the interned
    /// summaries a subset-engine snapshot references); `0` where the state
    /// encoding is self-contained.
    pub check: u64,
}

impl Snapshot {
    /// Serializes the snapshot in the same versioned byte format as saved
    /// artifacts (kind [`kind::SNAPSHOT`]), so a parked run can ship across
    /// processes next to its artifact bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.fingerprint);
        w.put_u32(self.state);
        w.put_u32(self.peak);
        w.put_u64(self.steps);
        w.put_u64(self.check);
        w.put_u32_slice(&self.stack);
        // Snapshots carry no alphabet of their own — the artifact they
        // resume on re-validates everything — so the alphabet field is 0.
        w.seal(kind::SNAPSHOT, 0)
    }

    /// Decodes a snapshot serialized by [`Snapshot::to_bytes`]. Corrupt or
    /// truncated bytes yield a typed [`PersistError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, kind::SNAPSHOT)?;
        if alphabet != 0 {
            return Err(PersistError::AlphabetMismatch {
                expected: 0,
                found: alphabet,
            });
        }
        let fingerprint = r.get_u64()?;
        let state = r.get_u32()?;
        let peak = r.get_u32()?;
        let steps = r.get_u64()?;
        let check = r.get_u64()?;
        let stack = r.get_u32_vec()?;
        r.finish()?;
        Ok(Snapshot {
            fingerprint,
            state,
            stack,
            peak,
            steps,
            check,
        })
    }
}

/// An artifact whose runs can be suspended to [`Snapshot`]s and resumed at
/// the exact prefix — on this artifact or any other with the same
/// fingerprint (e.g. one reloaded from saved bytes in another process).
///
/// Laws (property-tested in `tests/persist.rs`):
///
/// 1. **resume ≡ continue** — suspending at any prefix and resuming (run or
///    lane, on the same artifact or on `load(save(artifact))`) observes the
///    same acceptance, stack height, peak and step count as the
///    uninterrupted run at every subsequent prefix, pending edges included;
/// 2. **run ↔ lane** — [`suspend_run`](Suspend::suspend_run) and
///    [`suspend_lane`](Suspend::suspend_lane) produce interchangeable
///    snapshots: either resumes as either;
/// 3. **typed rejection** — resuming a snapshot from a different artifact
///    fails with [`PersistError::FingerprintMismatch`], and a structurally
///    impossible snapshot fails with a typed error, never a panic or an
///    out-of-bounds table access.
///
/// The free-function spellings are
/// [`query::suspend`](crate::query::suspend) /
/// [`query::resume`](crate::query::resume).
pub trait Suspend: BatchAcceptor + crate::Persist {
    /// Captures a lane's state as an owned snapshot.
    fn suspend_lane(&self, lane: &Self::Lane) -> Snapshot;

    /// Reconstructs a lane from a snapshot, validating the artifact
    /// fingerprint and the structural integrity of the state.
    fn resume_lane(&self, snapshot: &Snapshot) -> Result<Self::Lane, PersistError>;

    /// Captures a borrowing run's state as an owned snapshot
    /// (interchangeable with [`suspend_lane`](Suspend::suspend_lane)).
    fn suspend_run(&self, run: &Self::Run<'_>) -> Snapshot;

    /// Reconstructs a borrowing run from a snapshot, validating the
    /// artifact fingerprint and the structural integrity of the state.
    fn resume_run<'a>(&'a self, snapshot: &Snapshot) -> Result<Self::Run<'a>, PersistError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_bytes_round_trip() {
        let s = Snapshot {
            fingerprint: 0xdead_beef_cafe_f00d,
            state: 42,
            stack: vec![3, 1, 4, 1, 5],
            peak: 9,
            steps: 1 << 40,
            check: 7,
        };
        assert_eq!(Snapshot::from_bytes(&s.to_bytes()).unwrap(), s);

        // Corruption anywhere is a typed error.
        let bytes = s.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Snapshot::from_bytes(&bad).is_err(), "flipped byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
