//! Multi-query execution: deciding M queries over one event stream in a
//! single pass.
//!
//! The paper's motivating workload (§1) is document filtering, where many
//! queries interrogate the *same* document. Running them one at a time costs
//! M tokenizations of the same bytes even though tokenization — not the
//! automaton step — dominates the bytes-to-verdict pipeline. The capability
//! factored here is the fix: a set of M queries compiles into **one
//! artifact** ([`MultiCompile`]) that is stepped once per event
//! ([`MultiAcceptor`] / [`QuerySetRun`]) and yields all M verdicts, so the
//! stream is scanned once and the per-event engine cost is amortized across
//! the set.
//!
//! The contract deliberately does not fix a representation. An
//! implementation may build a shared product table with per-state accept
//! masks (one transition lookup per event, preferred for small sets over a
//! common alphabet) or advance M compiled engines in lockstep over the same
//! event (the [`BatchAcceptor`](crate::BatchAcceptor) lane shape) — both
//! present the same [`QuerySetRun`] API, and
//! [`query::run_multi`](crate::query::run_multi) /
//! `nwa_xml::queries::run_multi_streaming_reader` drive either. The
//! reference implementation with both backends and a size heuristic between
//! them is `nwa::QuerySet`.

use crate::stream::{StreamOutcome, StreamRun};

/// The most queries one set may hold: verdicts travel as bits of one `u64`
/// ([`QuerySetRun::verdicts`]), so a set is capped at 64 members. Larger
/// workloads split into multiple sets and still pay one tokenization per
/// set, not per query.
pub const MAX_QUERIES: usize = 64;

/// One in-progress multi-query run: a [`StreamRun`] (it steps tagged events,
/// tracks stack height and peak memory like any single run) that answers for
/// M queries at once.
///
/// The inherited single-verdict observables read as the *conjunction* view:
/// [`StreamRun::is_accepting`] is `true` iff every member query accepts the
/// prefix (`verdicts()` has all `num_queries()` low bits set), so a query
/// set still composes with single-verdict drivers. The per-query answers
/// live in [`verdicts`](QuerySetRun::verdicts) /
/// [`outcomes`](QuerySetRun::outcomes).
pub trait QuerySetRun: StreamRun {
    /// Number of member queries — the number of meaningful low bits in
    /// [`verdicts`](QuerySetRun::verdicts), at most [`MAX_QUERIES`].
    fn num_queries(&self) -> usize;

    /// The per-query verdict bitmask at the current prefix: bit `i` is set
    /// iff query `i` would accept if the stream ended now. Bits at and above
    /// [`num_queries`](QuerySetRun::num_queries) are zero.
    fn verdicts(&self) -> u64;

    /// The per-query [`StreamOutcome`]s at the current prefix, in query
    /// order. Every outcome reports the same event count (the queries read
    /// the same stream); acceptance is per query.
    fn outcomes(&self) -> Vec<StreamOutcome>;
}

/// A compiled query-set artifact: M queries answered by one run over one
/// stream.
///
/// Laws (property-tested in `tests/multiquery.rs`):
///
/// 1. **set ≡ sequential** — at every prefix, bit `i` of
///    [`QuerySetRun::verdicts`] equals what a standalone run of query `i`
///    alone observes at that prefix (pending calls and pending returns
///    included);
/// 2. **one stream** — all M outcomes report the same `events` count;
/// 3. **representation-free** — a product-table backend and a lockstep
///    backend over the same queries agree on every stream.
pub trait MultiAcceptor {
    /// The multi-query run type; borrows the artifact for the duration of
    /// the run.
    type SetRun<'a>: QuerySetRun
    where
        Self: 'a;

    /// Starts a fresh run of all member queries in their initial
    /// configurations.
    fn start_set(&self) -> Self::SetRun<'_>;

    /// Number of member queries in the set.
    fn num_queries(&self) -> usize;

    /// The alphabet fingerprint each member query was compiled against, in
    /// query order ([`persist::fingerprint_alphabet`](crate::persist::fingerprint_alphabet)
    /// of its σ). Serving layers validate submissions against these *before*
    /// queueing, so a query compiled over the wrong alphabet is one typed
    /// error up front rather than a mid-batch worker panic.
    fn member_alphabet_fingerprints(&self) -> Vec<u64>;
}

/// Compilation of a query *set* into one steppable artifact — the
/// multi-query counterpart of [`Compile`](crate::Compile).
///
/// The free-function spelling is
/// [`query::compile_set`](crate::query::compile_set). Implementations pick
/// their representation (shared product table, lockstep engines, …) per
/// set; whatever they pick, the result honors the [`MultiAcceptor`] laws.
pub trait MultiCompile: Sized {
    /// The compiled query-set artifact.
    type CompiledSet: MultiAcceptor;

    /// Compiles `queries` into one artifact deciding all of them per event.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or holds more than [`MAX_QUERIES`]
    /// members (implementations may add model-specific requirements, e.g. a
    /// common alphabet).
    fn compile_set(queries: &[Self]) -> Self::CompiledSet;
}
