//! Compilation of automata into cache-friendly execution artifacts.
//!
//! The paper's headline operational claim (§3.2) is that nested-word
//! membership is decided in a *single left-to-right pass* in time linear in
//! the input. The model crates' interpreted runners already achieve the
//! asymptotics; [`Compile`] is the capability that makes the constant factor
//! competitive with the hardware: a model is lowered once into a dense-table
//! artifact — flat arrays indexed by precomputed row offsets, `u32` entries,
//! no per-event index arithmetic beyond one addition — and the artifact runs
//! the same [`StreamAcceptor`] protocol over
//! [`nested_words::TaggedSymbol`] events as the interpreted automaton.
//!
//! Compilation trades memory layout for speed, never language: for every
//! implementation the suite property-tests that the compiled artifact
//! accepts exactly the inputs the interpreted automaton accepts, event
//! counts, stack heights and peak memory included (`tests/compile.rs`).
//!
//! Implementors in the suite:
//!
//! * `Nwa` → `nwa::compile::CompiledNwa` — premultiplied `u32` tables for
//!   the three transition functions, stack of `u32` return-row offsets;
//! * `Nnwa` / `JoinlessNwa` → `nwa::compile::CompiledSummary` — the
//!   summary-set subset construction over interned state-pair sets with a
//!   memoized transition cache, so repeated event patterns hit precomputed
//!   rows instead of re-deriving the subset step;
//! * `Dfa` (over the tagged alphabet Σ̂) →
//!   `word_automata::compile::CompiledTaggedDfa` — one flat `states × Σ̂`
//!   next-state array.

use crate::stream::StreamAcceptor;

/// Lowers an automaton into a dense, cache-friendly execution artifact that
/// streams [`nested_words::TaggedSymbol`] events through
/// [`StreamAcceptor`].
///
/// Laws (property-tested in `tests/compile.rs`):
///
/// 1. **language preservation** — for every event stream, the compiled run
///    accepts iff the interpreted run accepts, at every prefix;
/// 2. **observable equivalence** — event counts, stack heights and peak
///    memory agree with the interpreted run at every prefix.
///
/// Compilation is a one-time cost (linear in the transition-table size for
/// deterministic models); amortize it by compiling once and starting many
/// runs. See the implementors for the per-model memory trade-off.
///
/// ```
/// use automata_core::{query, Compile};
/// use nested_words::{Symbol, TaggedSymbol};
/// use nwa::NwaBuilder;
///
/// // Deterministic NWA over {a} accepting nested words of even length.
/// let a = Symbol(0);
/// let mut builder = NwaBuilder::new(2, 1, 0).accepting(0);
/// for q in 0..2usize {
///     builder = builder
///         .internal(q, a, 1 - q)
///         .call(q, a, 1 - q, 0)
///         .ret(q, 0, a, 1 - q)
///         .ret(q, 1, a, 1 - q);
/// }
/// let even = builder.build();
///
/// let compiled = even.compile();
/// let events = [TaggedSymbol::Call(a), TaggedSymbol::Return(a)];
/// assert_eq!(
///     query::run_stream(&compiled, events),
///     query::run_stream(&even, events),
/// );
/// ```
pub trait Compile {
    /// The compiled artifact: a self-contained acceptor over tagged-symbol
    /// event streams.
    type Compiled: StreamAcceptor;

    /// Lowers the automaton into its compiled form. The artifact is
    /// independent of `self` (it owns its tables), so it can outlive the
    /// automaton and be shared across runs.
    fn compile(&self) -> Self::Compiled;
}
