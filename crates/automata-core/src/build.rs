//! The fluent-builder idiom.
//!
//! Every model crate exposes a builder (`NwaBuilder`, `NnwaBuilder`,
//! `DfaBuilder`, …) replacing the older `new` + imperative `set_*`/`add_*`
//! construction sequences. Builders are plain structs with chainable
//! methods; this trait is the common final step so generic code (and tests)
//! can finish any builder the same way.

/// A fluent automaton builder: chain configuration calls, then [`build`].
///
/// [`build`]: Builder::build
pub trait Builder {
    /// The automaton type this builder produces.
    type Output;

    /// Consumes the builder and produces the automaton.
    fn build(self) -> Self::Output;
}
