//! Implementations of the [`automata_core`] trait vocabulary for word
//! automata. Inputs are flat symbol slices `[usize]` over the dense symbol
//! space.

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use automata_core::{
    Acceptor, BooleanOps, Decide, Emptiness, Minimize, StreamAcceptor, StreamRun, Witness,
};
use nested_words::TaggedSymbol;

impl Acceptor<[usize]> for Dfa {
    fn accepts(&self, input: &[usize]) -> bool {
        Dfa::accepts(self, input)
    }
}

/// A streaming run of a DFA over the tagged alphabet Σ̂: the stack-free
/// special case of a nested-word run (a flat NWA, Theorem 2 / §3.3).
///
/// Each [`TaggedSymbol`] event is read as the letter
/// `TaggedSymbol::tagged_index` of Σ̂, so the DFA must have `3·|Σ|` symbols
/// (calls `0..σ`, internals `σ..2σ`, returns `2σ..3σ`), as produced by
/// `nwa::flat::to_tagged_dfa` or `Regex::to_min_dfa(3 * sigma)`.
#[derive(Debug, Clone)]
pub struct TaggedDfaRun<'a> {
    dfa: &'a Dfa,
    sigma: usize,
    state: usize,
    steps: usize,
}

impl StreamRun for TaggedDfaRun<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        self.state = self.dfa.next(self.state, event.tagged_index(self.sigma));
    }

    fn is_accepting(&self) -> bool {
        self.dfa.is_accepting(self.state)
    }

    fn stack_height(&self) -> usize {
        0
    }

    fn peak_memory(&self) -> usize {
        0
    }

    fn steps(&self) -> usize {
        self.steps
    }
}

impl StreamAcceptor for Dfa {
    type Run<'a> = TaggedDfaRun<'a>;

    /// Starts a tagged-alphabet run.
    ///
    /// Panics if the DFA's symbol count is not a multiple of three (it must
    /// be a DFA over Σ̂ to interpret call/internal/return events).
    fn start(&self) -> TaggedDfaRun<'_> {
        assert!(
            self.num_symbols().is_multiple_of(3),
            "streaming over tagged events needs a DFA over the tagged alphabet (3·|Σ| symbols)"
        );
        TaggedDfaRun {
            dfa: self,
            sigma: self.num_symbols() / 3,
            state: self.initial(),
            steps: 0,
        }
    }
}

impl BooleanOps for Dfa {
    fn intersect(&self, other: &Self) -> Self {
        Dfa::intersect(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        Dfa::union(self, other)
    }

    fn complement(&self) -> Self {
        Dfa::complement(self)
    }
}

impl Emptiness for Dfa {
    fn is_empty(&self) -> bool {
        Dfa::is_empty(self)
    }
}

impl Decide for Dfa {
    fn subset_eq(&self, other: &Self) -> bool {
        self.included_in(other)
    }

    fn equals(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Minimize for Dfa {
    /// The unique minimal complete DFA (Moore partition refinement; see
    /// [`crate::minimize::minimize`]).
    fn minimize(&self) -> Self {
        crate::minimize::minimize(self)
    }

    fn num_states(&self) -> usize {
        Dfa::num_states(self)
    }
}

impl Witness for Dfa {
    type Input = Vec<usize>;

    /// A shortest accepted word ([`Dfa::find_accepted_word`]: BFS from the
    /// initial state with predecessor backpointers).
    fn witness(&self) -> Option<Vec<usize>> {
        self.find_accepted_word()
    }
}

impl Acceptor<[usize]> for Nfa {
    fn accepts(&self, input: &[usize]) -> bool {
        Nfa::accepts(self, input)
    }
}

impl Emptiness for Nfa {
    /// Decided on the subset-construction DFA; exponential in the worst
    /// case, though emptiness itself only needs the reachable part.
    fn is_empty(&self) -> bool {
        self.determinize().is_empty()
    }
}

impl Witness for Nfa {
    type Input = Vec<usize>;

    /// A shortest accepted word, found by BFS on the subset-construction
    /// DFA (whose shortest accepted words coincide with the NFA's).
    fn witness(&self) -> Option<Vec<usize>> {
        self.determinize().find_accepted_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;

    fn even_ones() -> Dfa {
        let mut d = Dfa::new(2, 2, 0);
        d.set_accepting(0, true);
        d.set_transition(0, 0, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 0);
        d
    }

    #[test]
    fn query_verbs_work_on_dfas() {
        let d = even_ones();
        assert!(query::contains(&d, &[1, 1][..]));
        assert!(!query::contains(&d, &[1][..]));
        assert!(!query::is_empty(&d));
        assert!(query::is_empty(&d.intersect(&d.complement())));
        assert!(query::equals(&d, &d.complement().complement()));
        assert!(query::subset_eq(&d.intersect(&d.complement()), &d));
    }

    #[test]
    fn nfa_trait_impls_agree_with_dfa() {
        let d = even_ones();
        let n = Nfa::from_dfa(&d);
        for w in [vec![], vec![1], vec![1, 1], vec![0, 1, 0, 1]] {
            assert_eq!(query::contains(&n, &w[..]), d.accepts(&w));
        }
        assert!(!query::is_empty(&n));
    }
}
