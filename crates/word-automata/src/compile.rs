//! Compiled execution for tagged-alphabet DFAs: the flat view of §3.3
//! lowered into one dense `states × Σ̂` next-state array behind the
//! `automata-core` [`Compile`] capability.

use crate::dfa::Dfa;
use automata_core::persist::{
    checksum_bytes, expect_alphabet, fingerprint_alphabet, fingerprint_payload, kind, Reader,
    Writer,
};
use automata_core::{
    BatchAcceptor, Compile, Persist, PersistError, Snapshot, StreamAcceptor, StreamOutcome,
    StreamRun, Suspend,
};
use nested_words::TaggedSymbol;

/// A DFA over the tagged alphabet Σ̂ lowered into a single flat `u32`
/// next-state array with premultiplied row offsets: a state is represented
/// as `q · 3σ`, so one event costs computing its `tagged_index`, one
/// addition and one load.
///
/// Like [`Dfa`]'s interpreted streaming run
/// ([`TaggedDfaRun`](crate::api::TaggedDfaRun)), the artifact reads each
/// [`TaggedSymbol`] as the letter `tagged_index` of Σ̂, so the source DFA
/// must have `3·|Σ|` symbols (calls `0..σ`, internals `σ..2σ`, returns
/// `2σ..3σ`). It is stack-free: flat automata cannot see the matching
/// relation (Theorem 2 / §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTaggedDfa {
    /// Σ (not Σ̂): `tagged_index` needs the untagged alphabet size.
    sigma: usize,
    /// Row stride `3σ`.
    stride: u32,
    /// `next[q·3σ + t] = δ(q, t)·3σ`.
    next: Vec<u32>,
    /// Initial state as a row offset.
    initial: u32,
    /// Acceptance by plain state index.
    accepting: Vec<bool>,
    /// Content hash over the table (see [`Persist`]), stamped into
    /// snapshots and validated on resume.
    fingerprint: u64,
}

impl CompiledTaggedDfa {
    /// Lowers `dfa` into the flat array.
    ///
    /// Panics if the DFA's symbol count is not a (positive) multiple of
    /// three — it must be a DFA over Σ̂ to interpret call/internal/return
    /// events — or if `states · 3σ` overflows `u32`.
    pub fn new(dfa: &Dfa) -> CompiledTaggedDfa {
        assert!(
            dfa.num_symbols() > 0 && dfa.num_symbols().is_multiple_of(3),
            "compiling to a tagged runner needs a DFA over the tagged alphabet (3·|Σ| symbols)"
        );
        let n = dfa.num_states();
        let stride = dfa.num_symbols();
        assert!(
            u32::try_from(n * stride).is_ok(),
            "automaton too large to compile: states * 3·sigma must fit u32"
        );
        let mut next = vec![0u32; n * stride];
        for q in 0..n {
            for t in 0..stride {
                next[q * stride + t] = (dfa.next(q, t) * stride) as u32;
            }
        }
        let mut compiled = CompiledTaggedDfa {
            sigma: stride / 3,
            stride: stride as u32,
            next,
            initial: (dfa.initial() * stride) as u32,
            accepting: (0..n).map(|q| dfa.is_accepting(q)).collect(),
            fingerprint: 0,
        };
        compiled.fingerprint = compiled.compute_fingerprint();
        compiled
    }

    /// Serializes the scalars and the next-state array — the payload
    /// [`Persist::save`] seals, and the bytes the content fingerprint
    /// hashes. One definition for both, so the fingerprint computed at
    /// compile time equals the one a loader derives from
    /// [`Reader::payload_checksum`].
    fn write_payload(&self, w: &mut Writer) {
        w.put_u64(self.accepting.len() as u64);
        w.put_u32(self.sigma as u32);
        w.put_u32(self.initial);
        w.put_u32_slice(&self.next);
        w.put_bools(&self.accepting);
    }

    /// Content hash over the serialized payload — computed once at compile
    /// time and stamped into every snapshot. Loaders fold the fingerprint
    /// out of the checksum pass [`Reader::open`] already made instead.
    fn compute_fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        fingerprint_payload(kind::COMPILED_TAGGED_DFA, checksum_bytes(w.payload()))
    }

    /// A valid state row offset: `q·stride` for some `q < n`.
    fn is_row(&self, v: u32) -> bool {
        (v as usize) < self.next.len() && v.is_multiple_of(self.stride)
    }

    /// Shared validation for [`Suspend::resume_run`] /
    /// [`Suspend::resume_lane`]: flat snapshots are a bare state — any
    /// stack, peak or integrity word is structurally impossible.
    fn check_snapshot(&self, s: &Snapshot) -> Result<(), PersistError> {
        if s.fingerprint != self.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: self.fingerprint,
                found: s.fingerprint,
            });
        }
        if !self.is_row(s.state) {
            return Err(PersistError::Malformed {
                context: "snapshot state is not a row offset of this artifact",
            });
        }
        if !s.stack.is_empty() || s.peak != 0 || s.check != 0 {
            return Err(PersistError::Malformed {
                context: "flat-automaton snapshots carry no stack",
            });
        }
        Ok(())
    }

    /// Runs a whole pre-materialized event slice through the array and
    /// reports the outcome — the bulk entry point of the compiled engine.
    ///
    /// Language-equivalent to driving [`StreamAcceptor::start`] event by
    /// event, but the event kind enters the address as arithmetic on the
    /// discriminant (`matches!` comparisons compile to setcc) instead of
    /// the per-arm `match` of [`TaggedSymbol::tagged_index`], whose
    /// data-dependent branches mispredict on real event mixes; the state
    /// stays in a register for the whole slice.
    pub fn run_tagged(&self, events: &[TaggedSymbol]) -> automata_core::StreamOutcome {
        let sigma = self.sigma as u32;
        let mut state = self.initial;
        for &event in events {
            let a = event.symbol().index() as u32;
            let kind = u32::from(matches!(event, TaggedSymbol::Internal(_)))
                + 2 * u32::from(matches!(event, TaggedSymbol::Return(_)));
            state = self.next[(state + kind * sigma + a) as usize];
        }
        automata_core::StreamOutcome {
            accepted: self.accepting[(state / self.stride) as usize],
            events: events.len(),
            peak_memory: 0,
        }
    }

    /// K streams through K register-resident states in lockstep. A single
    /// stream is bound by the latency of the `state → table → state`
    /// load-to-use chain — the step has no other work to hide it behind, so
    /// the core sits idle for most of each load. The K lanes' chains are
    /// mutually independent, so the round loop (unrolled over the const
    /// `K`) issues K overlapping table loads per round and the out-of-order
    /// window turns chain latency into throughput. A lane is one `u32`, so
    /// all K states stay in registers; event loads come from pre-narrowed
    /// `..common` slices so their bounds checks fold away. After the common
    /// prefix, each lane drains its tail single-stream.
    fn run_lockstep<const K: usize>(&self, streams: [&[TaggedSymbol]; K]) -> [StreamOutcome; K] {
        let sigma = self.sigma as u32;
        let mut state = [self.initial; K];
        let common = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        let rows: [&[TaggedSymbol]; K] = std::array::from_fn(|l| &streams[l][..common]);
        for round in 0..common {
            for l in 0..K {
                let event = rows[l][round];
                let a = event.symbol().index() as u32;
                let kind = u32::from(matches!(event, TaggedSymbol::Internal(_)))
                    + 2 * u32::from(matches!(event, TaggedSymbol::Return(_)));
                state[l] = self.next[(state[l] + kind * sigma + a) as usize];
            }
        }
        for l in 0..K {
            for &event in &streams[l][common..] {
                let a = event.symbol().index() as u32;
                let kind = u32::from(matches!(event, TaggedSymbol::Internal(_)))
                    + 2 * u32::from(matches!(event, TaggedSymbol::Return(_)));
                state[l] = self.next[(state[l] + kind * sigma + a) as usize];
            }
        }
        std::array::from_fn(|l| StreamOutcome {
            accepted: self.accepting[(state[l] / self.stride) as usize],
            events: streams[l].len(),
            peak_memory: 0,
        })
    }
}

/// A streaming run of a [`CompiledTaggedDfa`]: stack-free, one add-and-load
/// per event.
#[derive(Debug, Clone)]
pub struct CompiledTaggedDfaRun<'a> {
    tables: &'a CompiledTaggedDfa,
    state: u32,
    steps: usize,
}

impl StreamRun for CompiledTaggedDfaRun<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        let t = event.tagged_index(self.tables.sigma) as u32;
        self.state = self.tables.next[(self.state + t) as usize];
    }

    /// Bulk entry: keeps the state in a register across the slice and
    /// decodes the event kind with flag-style arithmetic (setcc, no
    /// data-dependent branch), the flat Σ̂ analogue of the compiled NWA's
    /// `run_tagged` loop.
    fn step_slice(&mut self, events: &[TaggedSymbol]) {
        let next = &self.tables.next;
        let sigma = self.tables.sigma as u32;
        let mut state = self.state;
        for &event in events {
            let a = event.symbol().index() as u32;
            let is_int = u32::from(matches!(event, TaggedSymbol::Internal(_)));
            let is_ret = u32::from(matches!(event, TaggedSymbol::Return(_)));
            let kind = is_int + 2 * is_ret;
            state = next[(state + kind * sigma + a) as usize];
        }
        self.state = state;
        self.steps += events.len();
    }

    fn is_accepting(&self) -> bool {
        self.tables.accepting[(self.state / self.tables.stride) as usize]
    }

    fn stack_height(&self) -> usize {
        0
    }

    fn peak_memory(&self) -> usize {
        0
    }

    fn steps(&self) -> usize {
        self.steps
    }
}

impl StreamAcceptor for CompiledTaggedDfa {
    type Run<'a> = CompiledTaggedDfaRun<'a>;

    fn start(&self) -> CompiledTaggedDfaRun<'_> {
        CompiledTaggedDfaRun {
            tables: self,
            state: self.initial,
            steps: 0,
        }
    }
}

/// One stream's worth of batched-execution state for a
/// [`CompiledTaggedDfa`]: the premultiplied state and an event count —
/// stack-free, so a lane is two words.
#[derive(Debug, Clone)]
pub struct CompiledTaggedDfaLane {
    state: u32,
    steps: usize,
}

impl BatchAcceptor for CompiledTaggedDfa {
    type Lane = CompiledTaggedDfaLane;

    fn lane_start(&self) -> CompiledTaggedDfaLane {
        CompiledTaggedDfaLane {
            state: self.initial,
            steps: 0,
        }
    }

    /// The setcc-decoded add-and-load of [`CompiledTaggedDfa::run_tagged`]
    /// on a stored lane; interleaved lanes are independent load chains.
    #[inline]
    fn lane_step(&self, lane: &mut CompiledTaggedDfaLane, event: TaggedSymbol) {
        let sigma = self.sigma as u32;
        let a = event.symbol().index() as u32;
        let kind = u32::from(matches!(event, TaggedSymbol::Internal(_)))
            + 2 * u32::from(matches!(event, TaggedSymbol::Return(_)));
        lane.state = self.next[(lane.state + kind * sigma + a) as usize];
        lane.steps += 1;
    }

    fn lane_accepting(&self, lane: &CompiledTaggedDfaLane) -> bool {
        self.accepting[(lane.state / self.stride) as usize]
    }

    fn lane_outcome(&self, lane: &CompiledTaggedDfaLane) -> StreamOutcome {
        StreamOutcome {
            accepted: self.lane_accepting(lane),
            events: lane.steps,
            peak_memory: 0,
        }
    }

    /// Overrides the generic stored-lane lockstep with the
    /// register-resident kernel (`run_lockstep`):
    /// streams run four lanes at a time, each lane one `u32` of register
    /// state, so the four `state → table → state` chains overlap instead of
    /// serializing — this is the entry point the batched-vs-sequential bar
    /// of `bench/service.rs` is measured on. A remainder of fewer than four
    /// streams runs back to back with [`CompiledTaggedDfa::run_tagged`].
    fn run_batch(&self, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
        let mut out = Vec::with_capacity(streams.len());
        let mut chunks = streams.chunks_exact(4);
        for chunk in &mut chunks {
            out.extend(self.run_lockstep::<4>(chunk.try_into().expect("chunk of 4")));
        }
        for s in chunks.remainder() {
            out.push(self.run_tagged(s));
        }
        out
    }
}

impl Compile for Dfa {
    type Compiled = CompiledTaggedDfa;

    /// One flat `states × Σ̂` next-state array ([`CompiledTaggedDfa`]);
    /// panics unless the DFA is over the tagged alphabet (`3·|Σ|` symbols).
    fn compile(&self) -> CompiledTaggedDfa {
        CompiledTaggedDfa::new(self)
    }
}

impl Persist for CompiledTaggedDfa {
    const KIND: u16 = kind::COMPILED_TAGGED_DFA;

    fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.seal(Self::KIND, self.alphabet_fingerprint())
    }

    fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, Self::KIND)?;
        // `open` just hashed the whole payload; the content fingerprint
        // derives from that same walk instead of re-hashing the tables.
        let fingerprint = fingerprint_payload(Self::KIND, r.payload_checksum());
        let n = usize::try_from(r.get_u64()?).map_err(|_| PersistError::Malformed {
            context: "state count overflows",
        })?;
        let sigma = r.get_u32()? as usize;
        let initial = r.get_u32()?;
        let next = r.get_u32_vec()?;
        let accepting = r.get_bool_vec()?;
        r.finish()?;
        expect_alphabet(alphabet, sigma)?;
        if n == 0 || sigma == 0 {
            return Err(PersistError::Malformed {
                context: "flat artifact needs at least one state and one symbol",
            });
        }
        let stride = 3u64 * sigma as u64;
        let table_len = (n as u64)
            .checked_mul(stride)
            .ok_or(PersistError::Malformed {
                context: "table size overflows",
            })?;
        if u32::try_from(table_len).is_err() {
            return Err(PersistError::Malformed {
                context: "table size exceeds the u32 offset space",
            });
        }
        if next.len() as u64 != table_len {
            return Err(PersistError::Malformed {
                context: "next-state array length disagrees with the state count",
            });
        }
        if accepting.len() != n {
            return Err(PersistError::Malformed {
                context: "acceptance table length disagrees with the state count",
            });
        }
        let artifact = CompiledTaggedDfa {
            sigma,
            stride: stride as u32,
            next,
            initial,
            accepting,
            fingerprint,
        };
        if !artifact.is_row(artifact.initial) {
            return Err(PersistError::Malformed {
                context: "initial state is not a row offset",
            });
        }
        if !artifact.next.iter().all(|&v| artifact.is_row(v)) {
            return Err(PersistError::Malformed {
                context: "table entry is not a row offset",
            });
        }
        Ok(artifact)
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn alphabet_fingerprint(&self) -> u64 {
        fingerprint_alphabet(self.sigma)
    }
}

impl Suspend for CompiledTaggedDfa {
    fn suspend_lane(&self, lane: &CompiledTaggedDfaLane) -> Snapshot {
        Snapshot {
            fingerprint: self.fingerprint,
            state: lane.state,
            stack: Vec::new(),
            peak: 0,
            steps: lane.steps as u64,
            check: 0,
        }
    }

    fn resume_lane(&self, snapshot: &Snapshot) -> Result<CompiledTaggedDfaLane, PersistError> {
        self.check_snapshot(snapshot)?;
        Ok(CompiledTaggedDfaLane {
            state: snapshot.state,
            steps: decode_steps(snapshot.steps)?,
        })
    }

    fn suspend_run(&self, run: &CompiledTaggedDfaRun<'_>) -> Snapshot {
        Snapshot {
            fingerprint: self.fingerprint,
            state: run.state,
            stack: Vec::new(),
            peak: 0,
            steps: run.steps as u64,
            check: 0,
        }
    }

    fn resume_run<'a>(
        &'a self,
        snapshot: &Snapshot,
    ) -> Result<CompiledTaggedDfaRun<'a>, PersistError> {
        self.check_snapshot(snapshot)?;
        Ok(CompiledTaggedDfaRun {
            tables: self,
            state: snapshot.state,
            steps: decode_steps(snapshot.steps)?,
        })
    }
}

/// Step counters are `u64` on the wire and `usize` in run state.
fn decode_steps(steps: u64) -> Result<usize, PersistError> {
    usize::try_from(steps).map_err(|_| PersistError::Malformed {
        context: "snapshot step count overflows",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;
    use nested_words::Symbol;

    /// Tagged DFA over Σ = {a, b} (so 6 tagged symbols) accepting streams
    /// with an even number of positions, whatever their kinds.
    fn even_length_tagged() -> Dfa {
        let mut d = Dfa::new(2, 6, 0);
        d.set_accepting(0, true);
        for q in 0..2usize {
            for t in 0..6 {
                d.set_transition(q, t, 1 - q);
            }
        }
        d
    }

    #[test]
    fn compiled_tagged_dfa_agrees_with_interpreted() {
        let d = even_length_tagged();
        let c = query::compile(&d);
        let a = Symbol(0);
        let b = Symbol(1);
        let events = [
            TaggedSymbol::Call(a),
            TaggedSymbol::Internal(b),
            TaggedSymbol::Return(a),
            TaggedSymbol::Return(b),
            TaggedSymbol::Call(b),
        ];
        for n in 0..=events.len() {
            let prefix = &events[..n];
            assert_eq!(
                query::run_stream(&c, prefix.iter().copied()),
                query::run_stream(&d, prefix.iter().copied()),
                "prefix length {n}"
            );
            assert_eq!(
                c.run_tagged(prefix),
                query::run_stream(&d, prefix.iter().copied()),
                "bulk, prefix length {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tagged alphabet")]
    fn compiling_an_untagged_dfa_panics() {
        let d = Dfa::new(2, 2, 0);
        let _ = d.compile();
    }
}
