//! Deterministic finite word automata.

use std::collections::VecDeque;

/// A complete deterministic finite automaton over the dense symbol space
/// `0..num_symbols`.
///
/// The transition function is total: every state has a successor on every
/// symbol. Construction helpers add an explicit sink state where needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    num_symbols: usize,
    initial: usize,
    accepting: Vec<bool>,
    /// `delta[state * num_symbols + symbol]`
    delta: Vec<usize>,
}

impl Dfa {
    /// Creates a DFA with `num_states` states over `num_symbols` symbols,
    /// with all transitions initially looping on state 0.
    pub fn new(num_states: usize, num_symbols: usize, initial: usize) -> Self {
        assert!(num_states > 0, "a DFA needs at least one state");
        assert!(initial < num_states, "initial state out of range");
        Dfa {
            num_symbols,
            initial,
            accepting: vec![false; num_states],
            delta: vec![0; num_states * num_symbols],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// Marks `state` as accepting or rejecting.
    pub fn set_accepting(&mut self, state: usize, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Sets the transition `delta(state, symbol) = target`.
    pub fn set_transition(&mut self, state: usize, symbol: usize, target: usize) {
        assert!(symbol < self.num_symbols, "symbol out of range");
        assert!(target < self.num_states(), "target out of range");
        self.delta[state * self.num_symbols + symbol] = target;
    }

    /// The successor of `state` on `symbol`.
    pub fn next(&self, state: usize, symbol: usize) -> usize {
        self.delta[state * self.num_symbols + symbol]
    }

    /// Runs the DFA on a word (sequence of symbol indices) and returns the
    /// final state.
    pub fn run(&self, word: &[usize]) -> usize {
        word.iter().fold(self.initial, |q, &a| self.next(q, a))
    }

    /// Returns `true` if the DFA accepts the word.
    pub fn accepts(&self, word: &[usize]) -> bool {
        self.accepting[self.run(word)]
    }

    /// Complements the language by flipping acceptance of every state.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for b in &mut out.accepting {
            *b = !*b;
        }
        out
    }

    /// Product construction. `combine(a, b)` decides acceptance of the pair.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            self.num_symbols, other.num_symbols,
            "product requires equal alphabets"
        );
        let n2 = other.num_states();
        let mut out = Dfa::new(
            self.num_states() * n2,
            self.num_symbols,
            self.initial * n2 + other.initial,
        );
        for q1 in 0..self.num_states() {
            for q2 in 0..n2 {
                let s = q1 * n2 + q2;
                out.set_accepting(s, combine(self.accepting[q1], other.accepting[q2]));
                for a in 0..self.num_symbols {
                    out.set_transition(s, a, self.next(q1, a) * n2 + other.next(q2, a));
                }
            }
        }
        out
    }

    /// Intersection of two DFAs.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && y)
    }

    /// Union of two DFAs.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x || y)
    }

    /// Returns `true` if the language of the DFA is empty (no accepting state
    /// is reachable from the initial state).
    pub fn is_empty(&self) -> bool {
        self.find_accepted_word().is_none()
    }

    /// Finds a shortest accepted word, if any.
    pub fn find_accepted_word(&self) -> Option<Vec<usize>> {
        let n = self.num_states();
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[self.initial] = true;
        queue.push_back(self.initial);
        let mut hit = None;
        if self.accepting[self.initial] {
            hit = Some(self.initial);
        }
        'bfs: while let Some(q) = queue.pop_front() {
            for a in 0..self.num_symbols {
                let t = self.next(q, a);
                if !visited[t] {
                    visited[t] = true;
                    pred[t] = Some((q, a));
                    if self.accepting[t] {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut state = hit?;
        let mut word = Vec::new();
        while let Some((p, a)) = pred[state] {
            word.push(a);
            state = p;
        }
        word.reverse();
        Some(word)
    }

    /// Removes states unreachable from the initial state, renumbering the
    /// remainder. The language is unchanged.
    pub fn trim(&self) -> Dfa {
        let n = self.num_states();
        let mut map = vec![usize::MAX; n];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        map[self.initial] = 0;
        order.push(self.initial);
        queue.push_back(self.initial);
        while let Some(q) = queue.pop_front() {
            for a in 0..self.num_symbols {
                let t = self.next(q, a);
                if map[t] == usize::MAX {
                    map[t] = order.len();
                    order.push(t);
                    queue.push_back(t);
                }
            }
        }
        let mut out = Dfa::new(order.len(), self.num_symbols, 0);
        for (new_q, &old_q) in order.iter().enumerate() {
            out.set_accepting(new_q, self.accepting[old_q]);
            for a in 0..self.num_symbols {
                out.set_transition(new_q, a, map[self.next(old_q, a)]);
            }
        }
        out
    }

    /// Minimizes the DFA (reachable part) with Hopcroft's algorithm; see
    /// [`crate::minimize::minimize`].
    pub fn minimize(&self) -> Dfa {
        crate::minimize::minimize(self)
    }

    /// Language equivalence test via product + emptiness of the symmetric
    /// difference.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let diff1 = self.intersect(&other.complement());
        let diff2 = other.intersect(&self.complement());
        diff1.is_empty() && diff2.is_empty()
    }

    /// Language inclusion `L(self) ⊆ L(other)`.
    pub fn included_in(&self, other: &Dfa) -> bool {
        self.intersect(&other.complement()).is_empty()
    }

    /// Builds the DFA accepting exactly the words in `words` (a finite
    /// language), using a trie plus a sink state.
    pub fn from_finite_language(num_symbols: usize, words: &[Vec<usize>]) -> Dfa {
        // Build a trie; state 0 = root, last state = sink.
        #[derive(Default)]
        struct Node {
            children: Vec<Option<usize>>,
            accepting: bool,
        }
        let mut nodes: Vec<Node> = vec![Node {
            children: vec![None; num_symbols],
            accepting: false,
        }];
        for w in words {
            let mut cur = 0usize;
            for &a in w {
                assert!(a < num_symbols, "symbol out of range");
                cur = match nodes[cur].children[a] {
                    Some(t) => t,
                    None => {
                        nodes.push(Node {
                            children: vec![None; num_symbols],
                            accepting: false,
                        });
                        let t = nodes.len() - 1;
                        nodes[cur].children[a] = Some(t);
                        t
                    }
                };
            }
            nodes[cur].accepting = true;
        }
        let sink = nodes.len();
        let mut dfa = Dfa::new(nodes.len() + 1, num_symbols, 0);
        for (i, node) in nodes.iter().enumerate() {
            dfa.set_accepting(i, node.accepting);
            for a in 0..num_symbols {
                dfa.set_transition(i, a, node.children[a].unwrap_or(sink));
            }
        }
        for a in 0..num_symbols {
            dfa.set_transition(sink, a, sink);
        }
        dfa
    }

    /// Enumerates all accepted words of length at most `max_len`
    /// (for testing; exponential in `max_len`).
    pub fn accepted_words_up_to(&self, max_len: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut frontier: Vec<(usize, Vec<usize>)> = vec![(self.initial, Vec::new())];
        if self.accepting[self.initial] {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (q, w) in &frontier {
                for a in 0..self.num_symbols {
                    let t = self.next(*q, a);
                    let mut w2 = w.clone();
                    w2.push(a);
                    if self.accepting[t] {
                        out.push(w2.clone());
                    }
                    next.push((t, w2));
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over {0,1} accepting words with an even number of 1s.
    fn even_ones() -> Dfa {
        let mut d = Dfa::new(2, 2, 0);
        d.set_accepting(0, true);
        d.set_transition(0, 0, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 0);
        d
    }

    /// DFA over {0,1} accepting words ending in 1.
    fn ends_in_one() -> Dfa {
        let mut d = Dfa::new(2, 2, 0);
        d.set_accepting(1, true);
        d.set_transition(0, 0, 0);
        d.set_transition(0, 1, 1);
        d.set_transition(1, 0, 0);
        d.set_transition(1, 1, 1);
        d
    }

    #[test]
    fn run_and_accept() {
        let d = even_ones();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[1, 1]));
        assert!(!d.accepts(&[1, 0]));
        assert!(d.accepts(&[0, 1, 0, 1]));
    }

    #[test]
    fn complement_flips_membership() {
        let d = even_ones();
        let c = d.complement();
        for w in [vec![], vec![1], vec![1, 1], vec![0, 1, 1, 1]] {
            assert_ne!(d.accepts(&w), c.accepts(&w));
        }
    }

    #[test]
    fn product_intersection_and_union() {
        let a = even_ones();
        let b = ends_in_one();
        let both = a.intersect(&b);
        let either = a.union(&b);
        for w in [vec![], vec![1], vec![1, 1], vec![1, 0, 1], vec![0]] {
            assert_eq!(both.accepts(&w), a.accepts(&w) && b.accepts(&w));
            assert_eq!(either.accepts(&w), a.accepts(&w) || b.accepts(&w));
        }
    }

    #[test]
    fn emptiness_and_witness() {
        let mut d = Dfa::new(3, 2, 0);
        d.set_transition(0, 0, 1);
        d.set_transition(0, 1, 0);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 2);
        d.set_transition(2, 0, 2);
        d.set_transition(2, 1, 2);
        assert!(d.is_empty());
        d.set_accepting(2, true);
        assert!(!d.is_empty());
        let w = d.find_accepted_word().unwrap();
        assert_eq!(w, vec![0, 1]);
        assert!(d.accepts(&w));
    }

    #[test]
    fn trim_removes_unreachable_states() {
        let mut d = Dfa::new(4, 1, 0);
        d.set_transition(0, 0, 1);
        d.set_transition(1, 0, 0);
        d.set_transition(2, 0, 3); // unreachable
        d.set_transition(3, 0, 3);
        d.set_accepting(1, true);
        let t = d.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[0]));
        assert!(!t.accepts(&[0, 0]));
    }

    #[test]
    fn equivalence_and_inclusion() {
        let a = even_ones();
        let b = even_ones().trim();
        assert!(a.equivalent(&b));
        let ends = ends_in_one();
        assert!(!a.equivalent(&ends));
        // even number of ones AND ends in one ⊆ ends in one
        assert!(a.intersect(&ends).included_in(&ends));
        assert!(!ends.included_in(&a));
    }

    #[test]
    fn finite_language_dfa() {
        let words = vec![vec![0, 1], vec![1], vec![0, 1, 1]];
        let d = Dfa::from_finite_language(2, &words);
        for w in &words {
            assert!(d.accepts(w));
        }
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1, 1]));
        let mut all = d.accepted_words_up_to(3);
        all.sort();
        let mut expect = words.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn accepted_words_enumeration_respects_length_bound() {
        let d = ends_in_one();
        let words = d.accepted_words_up_to(2);
        assert!(words.contains(&vec![1]));
        assert!(words.contains(&vec![0, 1]));
        assert!(words.contains(&vec![1, 1]));
        assert_eq!(words.len(), 3);
    }
}
