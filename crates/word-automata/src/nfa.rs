//! Nondeterministic finite word automata with ε-transitions, and the subset
//! construction to DFAs.

use crate::dfa::Dfa;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A nondeterministic finite automaton over the dense symbol space
/// `0..num_symbols`, with optional ε-transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    num_symbols: usize,
    initial: Vec<usize>,
    accepting: Vec<bool>,
    /// `transitions[state][symbol]` = successor states
    transitions: Vec<Vec<Vec<usize>>>,
    /// `epsilon[state]` = ε-successor states
    epsilon: Vec<Vec<usize>>,
}

impl Nfa {
    /// Creates an NFA with `num_states` states and no transitions.
    pub fn new(num_states: usize, num_symbols: usize) -> Self {
        Nfa {
            num_symbols,
            initial: Vec::new(),
            accepting: vec![false; num_states],
            transitions: vec![vec![Vec::new(); num_symbols]; num_states],
            epsilon: vec![Vec::new(); num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.accepting.push(false);
        self.transitions.push(vec![Vec::new(); self.num_symbols]);
        self.epsilon.push(Vec::new());
        self.accepting.len() - 1
    }

    /// Marks a state as initial.
    pub fn add_initial(&mut self, state: usize) {
        if !self.initial.contains(&state) {
            self.initial.push(state);
        }
    }

    /// Marks a state as accepting.
    pub fn set_accepting(&mut self, state: usize, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Adds the transition `state --symbol--> target`.
    pub fn add_transition(&mut self, state: usize, symbol: usize, target: usize) {
        assert!(symbol < self.num_symbols, "symbol out of range");
        let succ = &mut self.transitions[state][symbol];
        if !succ.contains(&target) {
            succ.push(target);
        }
    }

    /// Adds the ε-transition `state --ε--> target`.
    pub fn add_epsilon(&mut self, state: usize, target: usize) {
        let succ = &mut self.epsilon[state];
        if !succ.contains(&target) {
            succ.push(target);
        }
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = states.clone();
        let mut queue: VecDeque<usize> = states.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &t in &self.epsilon[q] {
                if out.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        out
    }

    /// Runs the NFA on a word and returns `true` if some run accepts.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut current = self.epsilon_closure(&self.initial.iter().copied().collect());
        for &a in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                for &t in &self.transitions[q][a] {
                    next.insert(t);
                }
            }
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// Determinizes the NFA via the subset construction, producing a complete
    /// DFA (with an implicit sink for the empty subset).
    pub fn determinize(&self) -> Dfa {
        let initial_set = self.epsilon_closure(&self.initial.iter().copied().collect());
        let mut subset_index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        subset_index.insert(initial_set.clone(), 0);
        subsets.push(initial_set);
        queue.push_back(0);

        // transitions[state][symbol] collected as we explore
        let mut table: Vec<Vec<usize>> = Vec::new();

        while let Some(idx) = queue.pop_front() {
            let current = subsets[idx].clone();
            let mut row = vec![0usize; self.num_symbols];
            for a in 0..self.num_symbols {
                let mut next = BTreeSet::new();
                for &q in &current {
                    for &t in &self.transitions[q][a] {
                        next.insert(t);
                    }
                }
                let next = self.epsilon_closure(&next);
                let next_idx = match subset_index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = subsets.len();
                        subset_index.insert(next.clone(), i);
                        subsets.push(next);
                        queue.push_back(i);
                        i
                    }
                };
                row[a] = next_idx;
            }
            if table.len() <= idx {
                table.resize(idx + 1, Vec::new());
            }
            table[idx] = row;
        }

        let mut dfa = Dfa::new(subsets.len(), self.num_symbols, 0);
        for (i, subset) in subsets.iter().enumerate() {
            dfa.set_accepting(i, subset.iter().any(|&q| self.accepting[q]));
            for a in 0..self.num_symbols {
                dfa.set_transition(i, a, table[i][a]);
            }
        }
        dfa
    }

    /// Builds an NFA accepting the reverse of this NFA's language
    /// (used for the path-language experiments of §3.6).
    pub fn reverse(&self) -> Nfa {
        let n = self.num_states();
        let mut out = Nfa::new(n, self.num_symbols);
        for q in 0..n {
            if self.accepting[q] {
                out.add_initial(q);
            }
            for a in 0..self.num_symbols {
                for &t in &self.transitions[q][a] {
                    out.add_transition(t, a, q);
                }
            }
            for &t in &self.epsilon[q] {
                out.add_epsilon(t, q);
            }
        }
        for &q in &self.initial {
            out.set_accepting(q, true);
        }
        out
    }

    /// Converts a DFA into an equivalent NFA.
    pub fn from_dfa(dfa: &Dfa) -> Nfa {
        let mut out = Nfa::new(dfa.num_states(), dfa.num_symbols());
        out.add_initial(dfa.initial());
        for q in 0..dfa.num_states() {
            out.set_accepting(q, dfa.is_accepting(q));
            for a in 0..dfa.num_symbols() {
                out.add_transition(q, a, dfa.next(q, a));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for "the 3rd symbol from the end is 1" over {0,1}.
    fn third_from_end_is_one() -> Nfa {
        let mut n = Nfa::new(4, 2);
        n.add_initial(0);
        n.add_transition(0, 0, 0);
        n.add_transition(0, 1, 0);
        n.add_transition(0, 1, 1);
        n.add_transition(1, 0, 2);
        n.add_transition(1, 1, 2);
        n.add_transition(2, 0, 3);
        n.add_transition(2, 1, 3);
        n.set_accepting(3, true);
        n
    }

    #[test]
    fn nfa_acceptance() {
        let n = third_from_end_is_one();
        assert!(n.accepts(&[1, 0, 0]));
        assert!(n.accepts(&[0, 1, 1, 1, 0]));
        assert!(!n.accepts(&[0, 0, 0]));
        assert!(!n.accepts(&[1, 0]));
    }

    #[test]
    fn subset_construction_preserves_language() {
        let n = third_from_end_is_one();
        let d = n.determinize();
        for len in 0..7usize {
            for bits in 0..(1u32 << len) {
                let w: Vec<usize> = (0..len).map(|i| ((bits >> i) & 1) as usize).collect();
                assert_eq!(n.accepts(&w), d.accepts(&w), "word {w:?}");
            }
        }
    }

    #[test]
    fn subset_construction_blowup_is_exponential_after_minimization() {
        // k-th from the end = 1 needs 2^k DFA states but k+1 NFA states.
        let n = third_from_end_is_one();
        let d = n.determinize().minimize();
        assert_eq!(d.num_states(), 8);
        assert_eq!(n.num_states(), 4);
    }

    #[test]
    fn epsilon_transitions_are_followed() {
        // language {a} ∪ {b} via ε-branching
        let mut n = Nfa::new(5, 2);
        n.add_initial(0);
        n.add_epsilon(0, 1);
        n.add_epsilon(0, 2);
        n.add_transition(1, 0, 3);
        n.add_transition(2, 1, 4);
        n.set_accepting(3, true);
        n.set_accepting(4, true);
        assert!(n.accepts(&[0]));
        assert!(n.accepts(&[1]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[0, 1]));
        let d = n.determinize();
        assert!(d.accepts(&[0]));
        assert!(d.accepts(&[1]));
        assert!(!d.accepts(&[0, 0]));
    }

    #[test]
    fn reverse_reverses_language() {
        let mut n = Nfa::new(3, 2);
        // language: 0 then 1 (exactly "01")
        n.add_initial(0);
        n.add_transition(0, 0, 1);
        n.add_transition(1, 1, 2);
        n.set_accepting(2, true);
        let r = n.reverse();
        assert!(r.accepts(&[1, 0]));
        assert!(!r.accepts(&[0, 1]));
    }

    #[test]
    fn from_dfa_roundtrip() {
        let n = third_from_end_is_one();
        let d = n.determinize();
        let n2 = Nfa::from_dfa(&d);
        for w in [vec![1, 0, 0], vec![0, 0, 0], vec![1, 1, 1, 0, 0]] {
            assert_eq!(n2.accepts(&w), d.accepts(&w));
        }
    }

    #[test]
    fn empty_nfa_accepts_nothing() {
        let n = Nfa::new(0, 2);
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[0]));
        let d = n.determinize();
        assert!(d.is_empty());
    }
}
