//! Fluent builder for deterministic word automata.
//!
//! ```
//! use automata_core::Acceptor;
//! use word_automata::DfaBuilder;
//!
//! // Words over {0,1} ending in 1.
//! let d = DfaBuilder::new(2, 2, 0)
//!     .accepting(1)
//!     .transition(0, 0, 0)
//!     .transition(0, 1, 1)
//!     .transition(1, 0, 0)
//!     .transition(1, 1, 1)
//!     .build();
//! assert!(d.accepts(&[0, 1]));
//! assert!(!d.accepts(&[1, 0]));
//! ```

use crate::dfa::Dfa;
use automata_core::{Builder, StateId};

/// Fluent builder for [`Dfa`]s.
///
/// Transitions not set explicitly keep the [`Dfa::new`] default of pointing
/// at state 0.
#[derive(Debug, Clone)]
pub struct DfaBuilder {
    dfa: Dfa,
}

impl DfaBuilder {
    /// Starts building a DFA with `num_states` states over `num_symbols`
    /// symbols, starting in `initial`.
    pub fn new(num_states: usize, num_symbols: usize, initial: impl Into<StateId>) -> Self {
        DfaBuilder {
            dfa: Dfa::new(num_states, num_symbols, initial.into().index()),
        }
    }

    /// Marks `q` as accepting.
    pub fn accepting(mut self, q: impl Into<StateId>) -> Self {
        self.dfa.set_accepting(q.into().index(), true);
        self
    }

    /// Sets the transition `δ(q, symbol) = target`.
    pub fn transition(
        mut self,
        q: impl Into<StateId>,
        symbol: usize,
        target: impl Into<StateId>,
    ) -> Self {
        self.dfa
            .set_transition(q.into().index(), symbol, target.into().index());
        self
    }

    /// Produces the automaton.
    pub fn build(self) -> Dfa {
        self.dfa
    }
}

impl Builder for DfaBuilder {
    type Output = Dfa;

    fn build(self) -> Dfa {
        self.dfa
    }
}

impl Dfa {
    /// Starts a fluent [`DfaBuilder`]; equivalent to [`DfaBuilder::new`].
    pub fn builder(
        num_states: usize,
        num_symbols: usize,
        initial: impl Into<StateId>,
    ) -> DfaBuilder {
        DfaBuilder::new(num_states, num_symbols, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_imperative_construction() {
        let built = Dfa::builder(2, 2, 0)
            .accepting(0)
            .transition(0, 1, 1)
            .transition(1, 1, 0)
            .transition(0, 0, 0)
            .transition(1, 0, 1)
            .build();
        let mut byhand = Dfa::new(2, 2, 0);
        byhand.set_accepting(0, true);
        byhand.set_transition(0, 0, 0);
        byhand.set_transition(0, 1, 1);
        byhand.set_transition(1, 0, 1);
        byhand.set_transition(1, 1, 0);
        assert_eq!(built, byhand);
    }
}
