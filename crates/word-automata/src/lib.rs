//! # word-automata
//!
//! Classical finite-state word automata: deterministic (DFA) and
//! nondeterministic (NFA) automata, regular expressions, the subset
//! construction, Hopcroft minimization and the usual language operations.
//!
//! This crate is the *word baseline* of the reproduction of "Marrying Words
//! and Trees" (PODS 2007): Theorem 2 identifies flat nested word automata
//! with word automata over the tagged alphabet Σ̂, and Theorems 3, 5 and 8
//! measure succinctness gaps against minimal DFAs produced here. The
//! motivating query Σ\*p₁Σ\*…pₙΣ\* of §1 is compiled via [`regex`].
//!
//! Automata here operate over a dense symbol space `0..num_symbols`; callers
//! map their alphabets (plain Σ or tagged Σ̂) onto these indices. See
//! `nested_words::TaggedSymbol::tagged_index` for the canonical tagged
//! indexing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod builder;
pub mod compile;
pub mod dfa;
pub mod minimize;
pub mod nfa;
pub mod regex;

pub use api::TaggedDfaRun;
pub use builder::DfaBuilder;
pub use compile::CompiledTaggedDfa;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::Regex;
