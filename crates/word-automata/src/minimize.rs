//! DFA minimization by partition refinement (Moore's algorithm).
//!
//! Minimal DFAs are the measuring stick of the paper's succinctness results:
//! the number of states of the minimal DFA for a language equals the index of
//! its right-congruence (§3.4), and Theorems 3, 5 and 8 compare this index
//! against nested-word-automaton sizes. Minimality must be exact for those
//! experiments, so this module uses the straightforward Moore refinement
//! (iterate signature-based splitting to a fixpoint), whose result is the
//! Myhill–Nerode quotient.

use crate::dfa::Dfa;
use std::collections::HashMap;

/// Minimizes a DFA: trims unreachable states, then merges
/// Myhill–Nerode-equivalent states by partition refinement. The result is the
/// unique (up to isomorphism) minimal complete DFA for the language.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = dfa.trim();
    let n = dfa.num_states();
    let k = dfa.num_symbols();
    if n == 0 {
        return dfa;
    }

    // Initial partition: accepting vs non-accepting.
    let mut block_of: Vec<usize> = (0..n).map(|q| usize::from(dfa.is_accepting(q))).collect();
    let mut num_blocks = if block_of.contains(&1) && block_of.contains(&0) {
        2
    } else {
        1
    };
    if num_blocks == 1 {
        // normalize block ids to 0
        block_of.fill(0);
    }

    // Refine until stable: two states stay together iff they agree on
    // acceptance and their successors lie in the same blocks.
    loop {
        let mut signature_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_block_of = vec![0usize; n];
        for q in 0..n {
            let succ_blocks: Vec<usize> = (0..k).map(|a| block_of[dfa.next(q, a)]).collect();
            let sig = (block_of[q], succ_blocks);
            let next_id = signature_to_block.len();
            let id = *signature_to_block.entry(sig).or_insert(next_id);
            new_block_of[q] = id;
        }
        let new_num_blocks = signature_to_block.len();
        let stable = new_num_blocks == num_blocks;
        block_of = new_block_of;
        num_blocks = new_num_blocks;
        if stable {
            break;
        }
    }

    // Build the quotient automaton; make the initial state's block state 0
    // for a canonical-ish numbering.
    let mut remap = vec![usize::MAX; num_blocks];
    let mut next = 0usize;
    remap[block_of[dfa.initial()]] = 0;
    next += 1;
    for q in 0..n {
        let b = block_of[q];
        if remap[b] == usize::MAX {
            remap[b] = next;
            next += 1;
        }
    }
    let mut out = Dfa::new(num_blocks, k, 0);
    for q in 0..n {
        let b = remap[block_of[q]];
        out.set_accepting(b, dfa.is_accepting(q));
        for a in 0..k {
            out.set_transition(b, a, remap[block_of[dfa.next(q, a)]]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately redundant DFA for "ends in 1" with duplicated states.
    fn redundant_ends_in_one() -> Dfa {
        let mut d = Dfa::new(4, 2, 0);
        // states 0 and 2 behave identically (last symbol not 1)
        // states 1 and 3 behave identically (last symbol 1)
        d.set_accepting(1, true);
        d.set_accepting(3, true);
        d.set_transition(0, 0, 2);
        d.set_transition(0, 1, 1);
        d.set_transition(2, 0, 0);
        d.set_transition(2, 1, 3);
        d.set_transition(1, 0, 2);
        d.set_transition(1, 1, 3);
        d.set_transition(3, 0, 0);
        d.set_transition(3, 1, 1);
        d
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        let d = redundant_ends_in_one();
        let m = minimize(&d);
        assert_eq!(m.num_states(), 2);
        assert!(m.equivalent(&d));
    }

    #[test]
    fn minimization_is_idempotent() {
        let d = redundant_ends_in_one();
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
        assert!(m1.equivalent(&m2));
    }

    #[test]
    fn minimal_dfa_for_kth_symbol_from_end_is_exponential() {
        // The language "the k-th symbol from the end is 1" needs 2^k states
        // deterministically: build the canonical 2^k DFA tracking the last k
        // symbols and check minimization does not shrink it.
        let k = 4;
        let num_states = 1 << k;
        let mut d = Dfa::new(num_states, 2, 0);
        for q in 0..num_states {
            for a in 0..2usize {
                let t = ((q << 1) | a) & (num_states - 1);
                d.set_transition(q, a, t);
            }
            d.set_accepting(q, q & (1 << (k - 1)) != 0);
        }
        let m = minimize(&d);
        assert_eq!(m.num_states(), num_states);
    }

    #[test]
    fn minimize_empty_language() {
        let mut d = Dfa::new(3, 2, 0);
        d.set_transition(0, 0, 1);
        d.set_transition(0, 1, 2);
        d.set_transition(1, 0, 1);
        d.set_transition(1, 1, 1);
        d.set_transition(2, 0, 2);
        d.set_transition(2, 1, 2);
        let m = minimize(&d);
        assert_eq!(m.num_states(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn minimize_universal_language() {
        let mut d = Dfa::new(2, 2, 0);
        for q in 0..2 {
            d.set_accepting(q, true);
            d.set_transition(q, 0, 1 - q);
            d.set_transition(q, 1, q);
        }
        let m = minimize(&d);
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts(&[0, 1, 0]));
    }

    #[test]
    fn minimize_finite_language() {
        let d = Dfa::from_finite_language(2, &[vec![0, 1], vec![1, 1]]);
        let m = minimize(&d);
        assert!(m.equivalent(&d));
        assert!(m.num_states() <= d.num_states());
        assert!(m.accepts(&[0, 1]));
        assert!(m.accepts(&[1, 1]));
        assert!(!m.accepts(&[0, 0]));
    }

    #[test]
    fn minimize_preserves_language_on_random_like_dfa() {
        // A hand-rolled 6-state DFA over 3 symbols; check behavioural
        // equivalence on all words up to length 4.
        let mut d = Dfa::new(6, 3, 0);
        let delta = [
            [1, 2, 3],
            [4, 4, 0],
            [5, 1, 1],
            [3, 3, 3],
            [2, 0, 5],
            [5, 4, 2],
        ];
        for (q, row) in delta.iter().enumerate() {
            for (a, &t) in row.iter().enumerate() {
                d.set_transition(q, a, t);
            }
        }
        d.set_accepting(3, true);
        d.set_accepting(5, true);
        let m = minimize(&d);
        assert!(m.equivalent(&d));
        for w in d.accepted_words_up_to(4) {
            assert!(m.accepts(&w));
        }
        for w in m.accepted_words_up_to(4) {
            assert!(d.accepts(&w));
        }
    }
}
