//! Regular expressions and the Thompson construction.
//!
//! The motivating query of §1 of the paper — "patterns p₁, …, pₙ appear in
//! the document in that order", i.e. the regular expression
//! Σ\*p₁Σ\*…pₙΣ\* over the linear order — is built with
//! [`Regex::patterns_in_order`] and compiled to automata here.

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// A regular expression over the dense symbol space `0..num_symbols`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single symbol.
    Symbol(usize),
    /// Any single symbol out of `0..num_symbols` (Σ); expanded at compile
    /// time against the target alphabet size.
    Any,
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Union (alternation).
    Union(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// `r1 · r2`
    pub fn concat(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// `r1 | r2`
    pub fn union(self, other: Regex) -> Regex {
        Regex::Union(Box::new(self), Box::new(other))
    }

    /// `r*`
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// `r+ = r · r*`
    pub fn plus(self) -> Regex {
        self.clone().concat(self.star())
    }

    /// `r? = r | ε`
    pub fn optional(self) -> Regex {
        self.union(Regex::Epsilon)
    }

    /// The literal word `w` as a regex.
    pub fn literal(word: &[usize]) -> Regex {
        word.iter()
            .fold(Regex::Epsilon, |acc, &a| acc.concat(Regex::Symbol(a)))
    }

    /// Σ\*
    pub fn any_star() -> Regex {
        Regex::Any.star()
    }

    /// The paper's motivating query Σ\*p₁Σ\*…pₙΣ\* ("the patterns occur in
    /// the document in this order").
    pub fn patterns_in_order(patterns: &[Vec<usize>]) -> Regex {
        let mut r = Regex::any_star();
        for p in patterns {
            r = r.concat(Regex::literal(p)).concat(Regex::any_star());
        }
        r
    }

    /// Compiles the regex to an NFA with ε-transitions over an alphabet of
    /// `num_symbols` symbols (Thompson construction).
    pub fn to_nfa(&self, num_symbols: usize) -> Nfa {
        let mut nfa = Nfa::new(0, num_symbols);
        let (start, end) = self.build(&mut nfa, num_symbols);
        nfa.add_initial(start);
        nfa.set_accepting(end, true);
        nfa
    }

    /// Compiles the regex to a minimal DFA over `num_symbols` symbols.
    pub fn to_min_dfa(&self, num_symbols: usize) -> Dfa {
        self.to_nfa(num_symbols).determinize().minimize()
    }

    fn build(&self, nfa: &mut Nfa, num_symbols: usize) -> (usize, usize) {
        match self {
            Regex::Empty => {
                let s = nfa.add_state();
                let e = nfa.add_state();
                (s, e)
            }
            Regex::Epsilon => {
                let s = nfa.add_state();
                let e = nfa.add_state();
                nfa.add_epsilon(s, e);
                (s, e)
            }
            Regex::Symbol(a) => {
                assert!(*a < num_symbols, "regex symbol out of range");
                let s = nfa.add_state();
                let e = nfa.add_state();
                nfa.add_transition(s, *a, e);
                (s, e)
            }
            Regex::Any => {
                let s = nfa.add_state();
                let e = nfa.add_state();
                for a in 0..num_symbols {
                    nfa.add_transition(s, a, e);
                }
                (s, e)
            }
            Regex::Concat(r1, r2) => {
                let (s1, e1) = r1.build(nfa, num_symbols);
                let (s2, e2) = r2.build(nfa, num_symbols);
                nfa.add_epsilon(e1, s2);
                (s1, e2)
            }
            Regex::Union(r1, r2) => {
                let s = nfa.add_state();
                let e = nfa.add_state();
                let (s1, e1) = r1.build(nfa, num_symbols);
                let (s2, e2) = r2.build(nfa, num_symbols);
                nfa.add_epsilon(s, s1);
                nfa.add_epsilon(s, s2);
                nfa.add_epsilon(e1, e);
                nfa.add_epsilon(e2, e);
                (s, e)
            }
            Regex::Star(r) => {
                let s = nfa.add_state();
                let e = nfa.add_state();
                let (s1, e1) = r.build(nfa, num_symbols);
                nfa.add_epsilon(s, s1);
                nfa.add_epsilon(s, e);
                nfa.add_epsilon(e1, s1);
                nfa.add_epsilon(e1, e);
                (s, e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star() {
        let r = Regex::literal(&[0, 1]).star();
        let d = r.to_min_dfa(2);
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[0, 1]));
        assert!(d.accepts(&[0, 1, 0, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1, 0]));
    }

    #[test]
    fn union_and_optional() {
        let r = Regex::Symbol(0).union(Regex::Symbol(1)).optional();
        let d = r.to_min_dfa(3);
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[0]));
        assert!(d.accepts(&[1]));
        assert!(!d.accepts(&[2]));
        assert!(!d.accepts(&[0, 0]));
    }

    #[test]
    fn empty_regex_accepts_nothing() {
        let d = Regex::Empty.to_min_dfa(2);
        assert!(d.is_empty());
        assert_eq!(d.num_states(), 1);
    }

    #[test]
    fn plus_requires_at_least_one() {
        let d = Regex::Symbol(0).plus().to_min_dfa(2);
        assert!(!d.accepts(&[]));
        assert!(d.accepts(&[0]));
        assert!(d.accepts(&[0, 0, 0]));
        assert!(!d.accepts(&[0, 1]));
    }

    #[test]
    fn patterns_in_order_query() {
        // patterns "01" then "1" must appear in that order
        let r = Regex::patterns_in_order(&[vec![0, 1], vec![1]]);
        let d = r.to_min_dfa(2);
        assert!(d.accepts(&[0, 1, 1]));
        assert!(d.accepts(&[1, 0, 1, 0, 1, 0]));
        assert!(!d.accepts(&[0, 1]));
        assert!(!d.accepts(&[1, 1, 0]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn patterns_in_order_dfa_is_linear_in_n() {
        // §1: the query Σ*p1Σ*...pnΣ* compiles into a DFA of linear size.
        // With single-symbol patterns p_i = a over {a,b}, the minimal DFA has
        // exactly n+1 states.
        for n in 1..8 {
            let patterns: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
            let d = Regex::patterns_in_order(&patterns).to_min_dfa(2);
            assert_eq!(d.num_states(), n + 1, "n = {n}");
        }
    }

    #[test]
    fn any_star_is_universal() {
        let d = Regex::any_star().to_min_dfa(4);
        assert_eq!(d.num_states(), 1);
        assert!(d.accepts(&[0, 1, 2, 3, 3, 2]));
        assert!(d.accepts(&[]));
    }
}
