//! Pushdown nested word automaton experiments (E9–E11 of `DESIGN.md`):
//! expressiveness of the equal-count language (Theorem 9), NP-complete
//! membership via the CNF-SAT reduction (Theorem 10) and emptiness via
//! summary saturation (Theorem 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nested_words_suite::nested_words::generate::{random_nested_word, NestedWordConfig};
use nested_words_suite::nested_words::rng::Prng;
use nested_words_suite::nwa_pushdown::sat::{sat_via_membership, CnfFormula};
use nested_words_suite::nwa_pushdown::separations::{equal_count_member, equal_count_pnwa};
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use std::time::Duration;

fn random_formula(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    let mut rng = Prng::new(seed);
    CnfFormula {
        num_vars,
        clauses: (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.below(num_vars), rng.bool(0.5)))
                    .collect()
            })
            .collect(),
    }
}

fn print_tables() {
    println!("== E9: Theorem 9 — equal-count language (CF word, not CF tree) ==");
    let p = equal_count_pnwa();
    let ab = Alphabet::ab();
    let cfg = NestedWordConfig {
        len: 16,
        allow_pending: true,
        ..Default::default()
    };
    let mut agree = 0usize;
    let mut members = 0usize;
    for seed in 0..200u64 {
        let w = random_nested_word(&ab, cfg, seed);
        let expected = equal_count_member(&w);
        if query::contains(&p, &w) == expected {
            agree += 1;
        }
        if expected {
            members += 1;
        }
    }
    println!("PNWA vs predicate on 200 random nested words: {agree} agree ({members} members)");

    println!("\n== E10: Theorem 10 — SAT via PNWA membership ==");
    println!(
        "{:>5} {:>8} {:>8} {:>10}",
        "vars", "clauses", "sat?", "agrees"
    );
    for v in [3usize, 4, 5, 6] {
        let f = random_formula(v, (v as f64 * 2.0) as usize, v as u64);
        let by_membership = sat_via_membership(&f);
        let by_brute = f.brute_force_sat();
        println!(
            "{:>5} {:>8} {:>8} {:>10}",
            v,
            f.clauses.len(),
            by_membership,
            by_membership == by_brute
        );
    }

    println!("\n== E11: Theorem 11 — emptiness by summary saturation ==");
    let full = equal_count_pnwa();
    println!("equal-count PNWA empty? {}", query::is_empty(&full));
    let bare = Pnwa::new(3, 2, 3);
    println!("transition-free PNWA empty? {}", query::is_empty(&bare));
    println!();
}

fn bench_pushdown(c: &mut Criterion) {
    print_tables();

    let mut group = c.benchmark_group("e09_pushdown_expressiveness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let p = equal_count_pnwa();
    let ab = Alphabet::ab();
    for len in [8usize, 16, 24] {
        let cfg = NestedWordConfig {
            len,
            allow_pending: false,
            ..Default::default()
        };
        let w = random_nested_word(&ab, cfg, 7);
        group.bench_with_input(BenchmarkId::new("membership", len), &w, |b, w| {
            b.iter(|| query::contains(&p, w))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e10_pnwa_membership_sat");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    for v in [4usize, 6, 8] {
        let f = random_formula(v, 2 * v, 99);
        group.bench_with_input(BenchmarkId::new("vars", v), &f, |b, f| {
            b.iter(|| sat_via_membership(f))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e11_pnwa_emptiness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let p = equal_count_pnwa();
    group.bench_function("equal_count", |b| b.iter(|| query::is_empty(&p)));
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
