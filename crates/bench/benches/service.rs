//! E17: batched multi-stream execution and decision-service saturation.
//!
//! The compiled engines made a single stream fast, but a stream whose step
//! is a pure table lookup is bounded by the latency of the
//! `state → table → state` load-to-use chain — the core retires one
//! dependent load per chain latency and sits idle otherwise. E17a measures
//! the batched counterpart: four independent streams advanced in lockstep
//! over one shared table (`BatchAcceptor::run_batch`), against deciding
//! the same four streams one after another with the single-stream engine.
//!
//! The two models bracket the technique. The flat DFA's step is exactly
//! the minimal chain, so its four interleaved lanes overlap their loads
//! and clear ≥ 1.5× the sequential throughput at 1M events (≈ 2.7× on the
//! reference core) — that ratio is what CI gates (within-run, so
//! heterogeneous hardware cancels out: `check_bench.py --filter
//! batched_dfa --sibling batched=sequential`). The fused NWA step, by
//! contrast, is issue-width-bound — kind decode, top spill and stack
//! bookkeeping already fill the load shadow, and extra lanes only add
//! register pressure — so its batch entry runs lanes back to back at
//! parity; its pair is recorded for the table but not gated (a ±few-%
//! ratio makes a flaky gate), with the quick pass below asserting the
//! outcomes are identical either way.
//!
//! E17b drives the full `DecisionService` facade to saturation: a fixed
//! corpus submitted through the queue at 1, 2 and 4 workers (lanes fixed at
//! 4). On multi-core hardware the curve shows worker scaling on top of the
//! per-core batching win; the absolute numbers are deliberately *not* gated
//! (thread-pool throughput does not normalize across runners).
//!
//! Running with `--format json` emits `BENCH_service.json` (see the
//! criterion shim), which CI uploads and gates against the checked-in
//! baseline at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nested_words_suite::nwa_service::{DecisionService, ServiceConfig};
use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::contains_tag_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use std::time::Duration;

const LANES: usize = 4;

/// `LANES` independent documents of roughly `events` events each, as tagged
/// event streams over the shared generator alphabet.
fn lane_streams(events: usize, base_seed: u64) -> (Alphabet, Vec<Vec<TaggedSymbol>>) {
    let mut alphabet = None;
    let streams = (0..LANES as u64)
        .map(|lane| {
            let (ab, doc) = generate_document(
                DocumentConfig {
                    events,
                    max_depth: 32,
                    ..Default::default()
                },
                base_seed + lane,
            );
            alphabet.get_or_insert(ab);
            (0..doc.len())
                .map(|i| TaggedSymbol::new(doc.kind(i), doc.symbol(i)))
                .collect()
        })
        .collect();
    (alphabet.expect("at least one lane"), streams)
}

/// E17a summary table: one quick timed pass per engine, with the
/// batch-equals-sequential law asserted (the criterion groups below provide
/// the recorded numbers).
fn print_batched_table() {
    println!("== E17a: sequential vs batched compiled execution (4 lanes) ==");
    println!(
        "{:>10} {:>8} {:>22} {:>22} {:>8}",
        "events", "model", "sequential (Mev/s)", "batched (Mev/s)", "speedup"
    );
    let mevs = |events: usize, d: Duration| events as f64 / d.as_secs_f64() / 1e6;
    for events in [100_000usize, 1_000_000] {
        let (ab, streams) = lane_streams(events, 7);
        let slices: Vec<&[TaggedSymbol]> = streams.iter().map(Vec::as_slice).collect();
        let total: usize = streams.iter().map(Vec::len).sum();
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let cq = query::compile(&q);
        let cdfa = query::compile(&nested_words_suite::nwa::flat::to_tagged_dfa(&q));

        let row = |model: &str,
                   sequential: Vec<StreamOutcome>,
                   t_seq: Duration,
                   batched: Vec<StreamOutcome>,
                   t_batch: Duration| {
            assert_eq!(sequential, batched);
            println!(
                "{:>10} {:>8} {:>22.0} {:>22.0} {:>7.2}x",
                total,
                model,
                mevs(total, t_seq),
                mevs(total, t_batch),
                t_seq.as_secs_f64() / t_batch.as_secs_f64()
            );
        };
        let t = std::time::Instant::now();
        let sequential: Vec<StreamOutcome> = slices.iter().map(|s| cq.run_tagged(s)).collect();
        let t_seq = t.elapsed();
        let t = std::time::Instant::now();
        let batched = query::run_batch(&cq, &slices);
        row("nwa", sequential, t_seq, batched, t.elapsed());
        let t = std::time::Instant::now();
        let sequential: Vec<StreamOutcome> = slices.iter().map(|s| cdfa.run_tagged(s)).collect();
        let t_seq = t.elapsed();
        let t = std::time::Instant::now();
        let batched = query::run_batch(&cdfa, &slices);
        row("dfa", sequential, t_seq, batched, t.elapsed());
    }
    println!();
}

fn bench_batched(c: &mut Criterion) {
    print_batched_table();

    // E17a: the batched lockstep runner vs the single-stream engine, both on
    // the same compiled artifact, 4 lanes, two sizes, two models. The ids
    // pair up as batched_*/sequential_* so the CI gate can normalize the
    // speedup within one run.
    // Note the group name must not contain the literal "batched": the CI
    // gate derives each id's sibling by replacing "batched" with
    // "sequential" across the whole id, group prefix included.
    let mut group = c.benchmark_group("e17a_batch_execution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_millis(800));
    for events in [100_000usize, 1_000_000] {
        let (ab, streams) = lane_streams(events, 7);
        let slices: Vec<&[TaggedSymbol]> = streams.iter().map(Vec::as_slice).collect();
        let total: usize = streams.iter().map(Vec::len).sum();
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let cq = query::compile(&q);
        let dfa = nested_words_suite::nwa::flat::to_tagged_dfa(&q);
        let cdfa = query::compile(&dfa);
        group.throughput(Throughput::Elements(total as u64));

        // Deterministic NWA: the premultiplied fused table. Its batch entry
        // runs lanes back to back (the step is issue-bound, see the module
        // docs), so this pair documents parity rather than a speedup.
        group.bench_with_input(
            BenchmarkId::new("sequential_nwa", events),
            &slices,
            |b, slices| {
                b.iter(|| {
                    slices
                        .iter()
                        .map(|s| cq.run_tagged(s))
                        .collect::<Vec<StreamOutcome>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_nwa", events),
            &slices,
            |b, slices| b.iter(|| query::run_batch(&cq, slices)),
        );

        // The flat view: the same query as a compiled DFA over Σ̂ — no
        // stack, so the chain is pure table loads, four register-resident
        // lanes overlap them, and the interleaving win is at its cleanest.
        group.bench_with_input(
            BenchmarkId::new("sequential_dfa", events),
            &slices,
            |b, slices| {
                b.iter(|| {
                    slices
                        .iter()
                        .map(|s| cdfa.run_tagged(s))
                        .collect::<Vec<StreamOutcome>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_dfa", events),
            &slices,
            |b, slices| b.iter(|| query::run_batch(&cdfa, slices)),
        );
    }
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    // E17b: the full facade under load — 32 documents of ~25k events per
    // iteration, pushed through the queue and waited out. The service (and
    // its worker threads) persists across iterations, so the measured cost
    // is submit → batch → verdict, not thread spawning.
    let mut group = c.benchmark_group("e17b_service_saturation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let (ab, streams) = lane_streams(25_000, 23);
    let corpus: Vec<Vec<TaggedSymbol>> = (0..32)
        .map(|i| streams[i % streams.len()].clone())
        .collect();
    let total: usize = corpus.iter().map(Vec::len).sum();
    let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
    for workers in [1usize, 2, 4] {
        let service = DecisionService::new(
            query::compile(&q),
            ab.clone(),
            ServiceConfig {
                workers,
                lanes: LANES,
            },
        );
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(
            BenchmarkId::new(&format!("service_w{workers}"), total),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let handles: Vec<_> = corpus
                        .iter()
                        .map(|s| service.submit(s.clone()).unwrap())
                        .collect();
                    handles
                        .iter()
                        .map(|h| h.wait().unwrap().accepted)
                        .filter(|&a| a)
                        .count()
                })
            },
        );
        let stats = service.stats();
        println!(
            "service_w{workers}: occupancy {:?}",
            stats
                .workers
                .iter()
                .map(|w| (w.lane_occupancy * 100.0).round() / 100.0)
                .collect::<Vec<f64>>()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched, bench_service);
criterion_main!(benches);
