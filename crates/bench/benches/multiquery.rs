//! Multi-query amortization experiment (E19 of `DESIGN.md`): M document
//! queries answered by **one** pass over the byte stream via a compiled
//! `QuerySet` (`query::compile_set`) versus M independent passes, one per
//! individually compiled query. The tokenizer work — the dominant cost of
//! the bytes → verdict pipeline — is paid once instead of M times, so the
//! one-pass path amortizes it across the whole set.
//!
//! The acceptance bar gated by CI: at M = 16 the one-pass path must be at
//! least 2× the sequential path on the same run (`check_bench.py --filter
//! onepass --sibling onepass=sequential --min-speedup 2` against the
//! checked-in `BENCH_multiquery.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::{run_multi_streaming_reader, run_streaming_reader};
use nested_words_suite::nwa_xml::sax::to_xml;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use nested_words_suite::query::expr::Query;
use std::time::Duration;

/// Sixteen distinct document queries over the generated tag alphabet,
/// authored through the combinator layer: the zoo leaves plus a few
/// boolean compositions, all lowered to deterministic NWAs.
fn query_pool(ab: &Alphabet) -> Vec<Nwa> {
    let sigma = ab.len();
    let t = |name: &str| ab.lookup(name).unwrap();
    let (t0, t1, t2, t3) = (t("t0"), t("t1"), t("t2"), t("t3"));
    let exprs = [
        Query::contains(t0),
        Query::contains(t1),
        Query::contains(t2),
        Query::contains(t3),
        Query::in_order([t0, t1]),
        Query::in_order([t2, t3]),
        Query::in_order([t1, t0]),
        Query::within(t0, t1),
        Query::within(t1, t2),
        Query::within(t2, t3),
        Query::depth_le(4),
        Query::depth_le(8),
        Query::open_depth_le(16),
        Query::open_depth_le(30),
        Query::contains(t0).and(Query::contains(t1)),
        Query::within(t0, t3).or(Query::depth_le(2)),
    ];
    exprs.iter().map(|e| e.lower(sigma)).collect()
}

/// Quick agreement table: the set's verdicts versus per-query sequential
/// passes, asserted before the timed groups run.
fn print_multiquery_table(xml: &str, ab: &Alphabet, pool: &[Nwa]) {
    println!("== E19: one-pass multi-query vs sequential per-query passes ==");
    println!(
        "{:>4} {:>10} {:>14} {:>10}",
        "M", "backend", "table bytes", "agree"
    );
    for m in [4usize, 16] {
        let set = query::compile_set(&pool[..m]);
        let outcomes = run_multi_streaming_reader(&set, xml.as_bytes(), ab).unwrap();
        let mut agree = true;
        for (q, outcome) in pool[..m].iter().zip(&outcomes) {
            let solo = run_streaming_reader(&query::compile(q), xml.as_bytes(), ab).unwrap();
            agree &= solo == *outcome;
        }
        assert!(agree, "set verdicts diverged from sequential runs at M={m}");
        println!(
            "{:>4} {:>10} {:>14} {:>10}",
            m,
            format!("{:?}", set.backend()),
            set.table_bytes(),
            agree
        );
    }
    println!();
}

fn bench_multiquery(c: &mut Criterion) {
    // ~100k events of synthetic library XML; the byte count is the shared
    // throughput denominator, so per_sec ratios are pure time ratios.
    let (ab, doc) = generate_document(
        DocumentConfig {
            events: 100_000,
            max_depth: 32,
            ..Default::default()
        },
        7,
    );
    let xml = to_xml(&doc, &ab);
    let pool = query_pool(&ab);
    print_multiquery_table(&xml, &ab, &pool);

    let mut group = c.benchmark_group("e19_multiquery");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for m in [4usize, 16] {
        let set = query::compile_set(&pool[..m]);
        let solo: Vec<CompiledNwa> = pool[..m].iter().map(query::compile).collect();
        group.throughput(Throughput::Bytes(xml.len() as u64));

        // One tokenization pass feeding the compiled set: all M verdicts.
        group.bench_with_input(BenchmarkId::new("onepass", m), &xml, |b, xml| {
            b.iter(|| run_multi_streaming_reader(&set, xml.as_bytes(), &ab).unwrap())
        });
        // The status quo ante: M full bytes → verdict passes, one per query.
        group.bench_with_input(BenchmarkId::new("sequential", m), &xml, |b, xml| {
            b.iter(|| {
                solo.iter()
                    .map(|cq| run_streaming_reader(cq, xml.as_bytes(), &ab).unwrap())
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiquery);
criterion_main!(benches);
