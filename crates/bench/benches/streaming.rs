//! Membership-scaling and streaming experiments (E12, E15 of `DESIGN.md`):
//! deterministic NWA membership is linear in the document length with memory
//! proportional to the depth (§3.2), and document queries run in one pass
//! over SAX-style event streams — either from a materialized nested word or
//! fully incrementally from XML text via `sax::Tokenizer`, without ever
//! building the document in memory.
//!
//! E15c adds the compiled execution engines (`query::compile`): interpreted
//! vs dense-table runners for `Nwa`, the tagged `Dfa` and `Nnwa` at
//! 10k/100k/1M events, plus the bytes-in → verdict-out throughput of the
//! byte-level SAX pipeline (`run_streaming_reader`). Running this bench
//! with `--format json` emits the measurements as `BENCH_streaming.json`
//! (see the criterion shim), which CI uploads and gates against the
//! checked-in baseline `BENCH_streaming.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nested_words_suite::nested_words::generate::{deep_word, random_nested_word, NestedWordConfig};
use nested_words_suite::nwa_xml::generate::{
    generate_deep_document, generate_document, DocumentConfig,
};
use nested_words_suite::nwa_xml::queries::{
    contains_tag_nwa, open_depth_at_most_nwa, run_streaming, run_streaming_reader,
    run_streaming_text,
};
use nested_words_suite::nwa_xml::sax::parse_document;
use nested_words_suite::nwa_xml::sax::to_xml;
#[cfg(feature = "simd")]
use nested_words_suite::nwa_xml::scan;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use std::time::Duration;

fn print_tables() {
    println!("== E12: membership is linear in length, memory proportional to depth ==");
    println!("{:>10} {:>8} {:>14}", "events", "depth", "peak stack");
    for depth in [4usize, 64, 512] {
        let (ab, doc) = generate_deep_document(depth, 4);
        let q = open_depth_at_most_nwa(depth, ab.len());
        let outcome = run_streaming(&q, &doc);
        println!(
            "{:>10} {:>8} {:>14}",
            doc.len(),
            doc.depth(),
            outcome.peak_memory
        );
    }

    println!("\n== E15: streaming document queries ==");
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "events", "depth cap", "peak stack", "accepted"
    );
    for events in [10_000usize, 100_000] {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            5,
        );
        let q = contains_tag_nwa(ab.lookup("t0").unwrap(), ab.len());
        let outcome = run_streaming(&q, &doc);
        println!(
            "{:>10} {:>10} {:>14} {:>10}",
            outcome.events, 32, outcome.peak_memory, outcome.accepted
        );
    }
    println!();
}

/// The depth-not-length claim, measured: the materialize-then-run path
/// stores every position of the document before the automaton sees the
/// first event, while the incremental path's live state is one stack entry
/// per open element. Both report the same answer.
fn print_memory_table() {
    println!("== E15b: materialize-then-run vs incremental streaming ==");
    println!(
        "{:>10} {:>12} {:>22} {:>22} {:>8}",
        "events", "xml bytes", "materialized positions", "incremental peak stack", "agree"
    );
    for events in [10_000usize, 100_000, 1_000_000] {
        let (mut ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            7,
        );
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let xml = to_xml(&doc, &ab);

        // materialize-then-run: parse the whole document, then decide
        let materialized = parse_document(&xml, &mut ab).unwrap();
        let batch_accepted = query::contains(&q, &materialized);

        // incremental: tokenizer events straight into the automaton
        let incremental = run_streaming_text(&q, &xml, &ab).unwrap();

        println!(
            "{:>10} {:>12} {:>22} {:>22} {:>8}",
            events,
            xml.len(),
            materialized.len(),
            incremental.peak_memory,
            batch_accepted == incremental.accepted
        );
        assert_eq!(batch_accepted, incremental.accepted);
        assert!(incremental.peak_memory <= 32);
    }
    println!();
}

/// The nondeterministic workload of E15c: "some matched call/return pair
/// both labelled b" over {a, b} — a genuine join, so the streaming run is
/// the summary-set subset construction.
fn some_b_block_nnwa() -> Nnwa {
    let a = Symbol(0);
    let b = Symbol(1);
    let mut n = Nnwa::new(3, 2);
    n.add_initial(0);
    n.add_accepting(2);
    for sym in [a, b] {
        n.add_internal(0, sym, 0);
        n.add_internal(2, sym, 2);
        n.add_call(0, sym, 0, 0);
        n.add_call(2, sym, 2, 0);
        for h in [0usize, 1] {
            n.add_return(0, h, sym, 0);
            n.add_return(2, h, sym, 2);
        }
    }
    n.add_call(0, b, 0, 1);
    n.add_return(0, 1, b, 2);
    n
}

/// E15c summary table: one quick pass per engine pair, with the agreement
/// asserted (the criterion groups below provide the recorded numbers).
fn print_compiled_table() {
    println!("== E15c: interpreted vs compiled execution engines ==");
    println!(
        "{:>10} {:>8} {:>22} {:>22} {:>8}",
        "events", "model", "interpreted (Mev/s)", "compiled (Mev/s)", "speedup"
    );
    let mevs = |events: usize, d: Duration| events as f64 / d.as_secs_f64() / 1e6;
    for events in [10_000usize, 100_000, 1_000_000] {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            7,
        );
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let cq = query::compile(&q);
        let tagged: Vec<TaggedSymbol> = (0..doc.len())
            .map(|i| TaggedSymbol::new(doc.kind(i), doc.symbol(i)))
            .collect();
        let t = std::time::Instant::now();
        let interpreted = query::run_stream(&q, tagged.iter().copied());
        let t_int = t.elapsed();
        let t = std::time::Instant::now();
        let compiled = cq.run_tagged(&tagged);
        let t_comp = t.elapsed();
        assert_eq!(interpreted, compiled);
        println!(
            "{:>10} {:>8} {:>22.0} {:>22.0} {:>7.2}x",
            tagged.len(),
            "nwa",
            mevs(tagged.len(), t_int),
            mevs(tagged.len(), t_comp),
            t_int.as_secs_f64() / t_comp.as_secs_f64()
        );
    }
    println!();
}

fn bench_compiled(c: &mut Criterion) {
    print_compiled_table();

    // Interpreted vs compiled event engines, three models, three sizes.
    let mut group = c.benchmark_group("e15c_event_engines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for events in [10_000usize, 100_000, 1_000_000] {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            7,
        );
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let cq = query::compile(&q);
        let dfa = nested_words_suite::nwa::flat::to_tagged_dfa(&q);
        let cdfa = query::compile(&dfa);
        let tagged: Vec<TaggedSymbol> = (0..doc.len())
            .map(|i| TaggedSymbol::new(doc.kind(i), doc.symbol(i)))
            .collect();
        group.throughput(Throughput::Elements(tagged.len() as u64));

        // Deterministic NWA: premultiplied fused tables vs the interpreted
        // streaming run — the acceptance bar is ≥ 2× at 1M events.
        group.bench_with_input(
            BenchmarkId::new("interpreted_nwa", events),
            &tagged,
            |b, evs| b.iter(|| query::run_stream(&q, evs.iter().copied())),
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_nwa", events),
            &tagged,
            |b, evs| b.iter(|| cq.run_tagged(evs)),
        );

        // The flat view (Theorem 2): the same query as a DFA over Σ̂.
        group.bench_with_input(
            BenchmarkId::new("interpreted_dfa", events),
            &tagged,
            |b, evs| b.iter(|| query::run_stream(&dfa, evs.iter().copied())),
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_dfa", events),
            &tagged,
            |b, evs| b.iter(|| cdfa.run_tagged(evs)),
        );

        // Nondeterministic NWA: the interpreted on-the-fly subset
        // construction vs the memoized summary engine (compiled once,
        // cache shared across iterations — the steady state a server sees).
        let n = some_b_block_nnwa();
        let cn = query::compile(&n);
        let word = random_nested_word(
            &Alphabet::ab(),
            NestedWordConfig {
                len: events,
                allow_pending: true,
                ..Default::default()
            },
            11,
        );
        let nnwa_events = word.to_tagged();
        group.bench_with_input(
            BenchmarkId::new("interpreted_nnwa", events),
            &nnwa_events,
            |b, evs| b.iter(|| query::run_stream(&n, evs.iter().copied())),
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_nnwa", events),
            &nnwa_events,
            |b, evs| b.iter(|| query::run_stream(&cn, evs.iter().copied())),
        );
        assert_eq!(
            query::contains_stream(&n, nnwa_events.iter().copied()),
            query::contains_stream(&cn, nnwa_events.iter().copied()),
        );
    }
    group.finish();

    // Bytes in, verdict out: the full byte-level pipeline (incremental
    // UTF-8 decode → SAX events → automaton), interpreted and compiled.
    // With the `simd` feature the group runs every row twice — the plain
    // rows pinned to the portable SWAR backend, the `_simd` rows on the
    // runtime-detected wide backend — so one `--features simd` run records
    // both sides of the comparison CI gates on.
    let mut group = c.benchmark_group("e15c_bytes_to_verdict");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for events in [10_000usize, 100_000, 1_000_000] {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            7,
        );
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let cq = query::compile(&q);
        let xml = to_xml(&doc, &ab);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        #[cfg(feature = "simd")]
        assert!(scan::force_scan_backend(scan::ScanBackend::Swar));
        group.bench_with_input(
            BenchmarkId::new("bytes_interpreted", events),
            &xml,
            |b, xml| b.iter(|| run_streaming_reader(&q, xml.as_bytes(), &ab).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("bytes_compiled", events),
            &xml,
            |b, xml| b.iter(|| run_streaming_reader(&cq, xml.as_bytes(), &ab).unwrap()),
        );
        #[cfg(feature = "simd")]
        {
            scan::auto_scan_backend();
            if scan::scan_backend() != scan::ScanBackend::Swar {
                group.bench_with_input(
                    BenchmarkId::new("bytes_interpreted_simd", events),
                    &xml,
                    |b, xml| b.iter(|| run_streaming_reader(&q, xml.as_bytes(), &ab).unwrap()),
                );
                group.bench_with_input(
                    BenchmarkId::new("bytes_compiled_simd", events),
                    &xml,
                    |b, xml| b.iter(|| run_streaming_reader(&cq, xml.as_bytes(), &ab).unwrap()),
                );
            }
        }
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    print_tables();
    print_memory_table();

    let mut group = c.benchmark_group("e12_membership_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let ab = Alphabet::with_size(4);
    // a fixed small query automaton: timing scales with the word length while
    // the stack grows with the depth
    let q = contains_tag_nwa(Symbol(0), 4);
    for len in [10_000usize, 100_000, 1_000_000] {
        // deep_word(depth, width) produces depth*(width+2) positions
        let depth = len / 12;
        let word = deep_word(&ab, depth, 10, 1);
        group.throughput(Throughput::Elements(word.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("det_membership", word.len()),
            &word,
            |b, w| b.iter(|| query::contains(&q, w)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e15_xml_streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for events in [10_000usize, 100_000, 1_000_000] {
        let (mut doc_ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 64,
                ..Default::default()
            },
            11,
        );
        let q = contains_tag_nwa(doc_ab.lookup("t1").unwrap(), doc_ab.len());
        let xml = to_xml(&doc, &doc_ab);

        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("contains_tag_batch", events),
            &doc,
            |b, d| b.iter(|| run_streaming(&q, d)),
        );
        // materialize-then-run: pay the parse and the full document on every
        // iteration, then decide
        group.bench_with_input(
            BenchmarkId::new("materialize_then_run", events),
            &xml,
            |b, xml| {
                b.iter(|| {
                    let doc = parse_document(xml, &mut doc_ab).unwrap();
                    run_streaming(&q, &doc)
                })
            },
        );
        // incremental: tokenizer events straight into the automaton, nothing
        // materialized
        group.bench_with_input(
            BenchmarkId::new("incremental_stream", events),
            &xml,
            |b, xml| b.iter(|| run_streaming_text(&q, xml, &doc_ab).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming, bench_compiled);
criterion_main!(benches);
