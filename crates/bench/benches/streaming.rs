//! Membership-scaling and streaming experiments (E12, E15 of `DESIGN.md`):
//! deterministic NWA membership is linear in the document length with memory
//! proportional to the depth (§3.2), and document queries run in one pass
//! over SAX-style event streams — either from a materialized nested word or
//! fully incrementally from XML text via `sax::Tokenizer`, without ever
//! building the document in memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nested_words_suite::nested_words::generate::deep_word;
use nested_words_suite::nwa_xml::generate::{
    generate_deep_document, generate_document, DocumentConfig,
};
use nested_words_suite::nwa_xml::queries::{
    contains_tag_nwa, open_depth_at_most_nwa, run_streaming, run_streaming_text,
};
use nested_words_suite::nwa_xml::sax::parse_document;
use nested_words_suite::nwa_xml::sax::to_xml;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use std::time::Duration;

fn print_tables() {
    println!("== E12: membership is linear in length, memory proportional to depth ==");
    println!("{:>10} {:>8} {:>14}", "events", "depth", "peak stack");
    for depth in [4usize, 64, 512] {
        let (ab, doc) = generate_deep_document(depth, 4);
        let q = open_depth_at_most_nwa(depth, ab.len());
        let outcome = run_streaming(&q, &doc);
        println!(
            "{:>10} {:>8} {:>14}",
            doc.len(),
            doc.depth(),
            outcome.peak_memory
        );
    }

    println!("\n== E15: streaming document queries ==");
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "events", "depth cap", "peak stack", "accepted"
    );
    for events in [10_000usize, 100_000] {
        let (ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            5,
        );
        let q = contains_tag_nwa(ab.lookup("t0").unwrap(), ab.len());
        let outcome = run_streaming(&q, &doc);
        println!(
            "{:>10} {:>10} {:>14} {:>10}",
            outcome.events, 32, outcome.peak_memory, outcome.accepted
        );
    }
    println!();
}

/// The depth-not-length claim, measured: the materialize-then-run path
/// stores every position of the document before the automaton sees the
/// first event, while the incremental path's live state is one stack entry
/// per open element. Both report the same answer.
fn print_memory_table() {
    println!("== E15b: materialize-then-run vs incremental streaming ==");
    println!(
        "{:>10} {:>12} {:>22} {:>22} {:>8}",
        "events", "xml bytes", "materialized positions", "incremental peak stack", "agree"
    );
    for events in [10_000usize, 100_000, 1_000_000] {
        let (mut ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 32,
                ..Default::default()
            },
            7,
        );
        let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
        let xml = to_xml(&doc, &ab);

        // materialize-then-run: parse the whole document, then decide
        let materialized = parse_document(&xml, &mut ab).unwrap();
        let batch_accepted = query::contains(&q, &materialized);

        // incremental: tokenizer events straight into the automaton
        let incremental = run_streaming_text(&q, &xml, &ab).unwrap();

        println!(
            "{:>10} {:>12} {:>22} {:>22} {:>8}",
            events,
            xml.len(),
            materialized.len(),
            incremental.peak_memory,
            batch_accepted == incremental.accepted
        );
        assert_eq!(batch_accepted, incremental.accepted);
        assert!(incremental.peak_memory <= 32);
    }
    println!();
}

fn bench_streaming(c: &mut Criterion) {
    print_tables();
    print_memory_table();

    let mut group = c.benchmark_group("e12_membership_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let ab = Alphabet::with_size(4);
    // a fixed small query automaton: timing scales with the word length while
    // the stack grows with the depth
    let q = contains_tag_nwa(Symbol(0), 4);
    for len in [10_000usize, 100_000, 1_000_000] {
        // deep_word(depth, width) produces depth*(width+2) positions
        let depth = len / 12;
        let word = deep_word(&ab, depth, 10, 1);
        group.throughput(Throughput::Elements(word.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("det_membership", word.len()),
            &word,
            |b, w| b.iter(|| query::contains(&q, w)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e15_xml_streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for events in [10_000usize, 100_000, 1_000_000] {
        let (mut doc_ab, doc) = generate_document(
            DocumentConfig {
                events,
                max_depth: 64,
                ..Default::default()
            },
            11,
        );
        let q = contains_tag_nwa(doc_ab.lookup("t1").unwrap(), doc_ab.len());
        let xml = to_xml(&doc, &doc_ab);

        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("contains_tag_batch", events),
            &doc,
            |b, d| b.iter(|| run_streaming(&q, d)),
        );
        // materialize-then-run: pay the parse and the full document on every
        // iteration, then decide
        group.bench_with_input(
            BenchmarkId::new("materialize_then_run", events),
            &xml,
            |b, xml| {
                b.iter(|| {
                    let doc = parse_document(xml, &mut doc_ab).unwrap();
                    run_streaming(&q, &doc)
                })
            },
        );
        // incremental: tokenizer events straight into the automaton, nothing
        // materialized
        group.bench_with_input(
            BenchmarkId::new("incremental_stream", events),
            &xml,
            |b, xml| b.iter(|| run_streaming_text(&q, xml, &doc_ab).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
