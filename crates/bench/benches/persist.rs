//! E18: the artifact lifecycle — cold-starting from saved bytes vs from
//! source, and the overhead of suspending/resuming runs.
//!
//! The persistence capability (`Persist`/`Suspend`) exists for exactly two
//! operational moves: shipping a compiled query to worker processes as a
//! byte image instead of recompiling it everywhere, and parking in-flight
//! runs as snapshots. E18 prices both.
//!
//! **E18a (gated)** — the summary engine's cold start to a *warm* state.
//! The memoized subset engine earns its speed by interning summary sets as
//! it runs; that memo cache ships inside the artifact bytes. So the two
//! cold-start paths compared are: `compile_summary` — build the engine
//! from the automaton and warm it by running the training corpus (what a
//! fresh process must do without bytes) — versus `load_summary` — decode
//! the saved, already-warm artifact. CI gates the within-run speedup (so
//! heterogeneous hardware cancels) with an absolute floor: load must be at
//! least 5x faster than compile-and-warm, and the speedup must not drop
//! more than the tolerance below the checked-in baseline.
//!
//! **E18b (recorded)** — the same pair for the dense deterministic engine,
//! where compile means constructing the automaton and lowering its tables.
//! Both sides are linear passes over the same tables, so the ratio is
//! modest and hardware-dependent; it is recorded for the table, not gated.
//!
//! **E18c (recorded)** — snapshot overhead: one stream decided end to end
//! versus the same stream suspended to a byte-serialized snapshot and
//! resumed every 1 000 events, the parked-document cadence of the decision
//! service.
//!
//! Running with `--format json` emits `BENCH_persist.json` (see the
//! criterion shim); CI gates it against the checked-in baseline at the
//! workspace root via
//! `check_bench.py --filter load_summary --sibling load=compile --min-speedup 5`.
//! Note neither the group name nor ungated ids may contain the gated
//! substring pair in conflicting positions: the gate derives each id's
//! sibling by replacing "load" with "compile" across the whole id.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nested_words_suite::nwa::{CompiledNwa, CompiledSummary, Nnwa};
use nested_words_suite::nwa_xml::generate::{generate_document, DocumentConfig};
use nested_words_suite::nwa_xml::queries::contains_tag_nwa;
use nested_words_suite::prelude::*;
use nested_words_suite::query;
use std::time::Duration;

const TRAIN_EVENTS: usize = 50_000;

/// The E18a fixture: a nondeterministic query automaton plus a training
/// corpus of generated documents over its alphabet.
fn summary_fixture() -> (Nnwa, Vec<TaggedSymbol>) {
    let (ab, doc) = generate_document(
        DocumentConfig {
            events: TRAIN_EVENTS,
            max_depth: 24,
            ..Default::default()
        },
        18,
    );
    let q = contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len());
    let stream = (0..doc.len())
        .map(|i| TaggedSymbol::new(doc.kind(i), doc.symbol(i)))
        .collect();
    (Nnwa::from_deterministic(&q), stream)
}

/// Cold start from source: compile the summary engine and warm its memo
/// cache on the training corpus. Returns the engine so the timed closure
/// has an observable result.
fn compile_and_warm(nnwa: &Nnwa, train: &[TaggedSymbol]) -> CompiledSummary<Nnwa> {
    let compiled = query::compile(nnwa);
    query::run_stream(&compiled, train.iter().copied());
    compiled
}

/// A dense deterministic NWA built arithmetically (no rng in benches), the
/// E18b compile-side workload: `n` states, `n²·σ` return entries.
fn dense_nwa(n: usize, sigma: usize) -> Nwa {
    let mut m = Nwa::new(n, sigma, 0);
    for q in 0..n {
        m.set_accepting(q, q % 3 == 0);
        for a in 0..sigma {
            let s = Symbol(a as u16);
            m.set_internal(q, s, (q + a + 1) % n);
            m.set_call(q, s, (q * 7 + a) % n, (q + 3) % n);
            for h in 0..n {
                m.set_return(q, h, s, (q + h + a) % n);
            }
        }
    }
    m
}

/// Quick human-readable summary of the three comparisons, with the
/// equal-behaviour laws asserted; the criterion groups below provide the
/// recorded numbers.
fn print_lifecycle_table() {
    println!("== E18: artifact lifecycle ==");
    let (nnwa, train) = summary_fixture();
    let warmed = compile_and_warm(&nnwa, &train);
    let bytes = query::save(&warmed);

    let t = std::time::Instant::now();
    let from_source = compile_and_warm(&nnwa, &train);
    let t_compile = t.elapsed();
    let t = std::time::Instant::now();
    let from_bytes: CompiledSummary<Nnwa> = query::load(&bytes).expect("saved bytes load");
    let t_load = t.elapsed();
    assert_eq!(
        from_bytes, from_source,
        "load(save(a)) is a, warm cache included"
    );
    println!(
        "summary engine, warm cold-start ({} artifact bytes, {} training events):",
        bytes.len(),
        train.len()
    );
    println!(
        "  compile+warm {:>10.1?}   load {:>10.1?}   speedup {:>8.0}x",
        t_compile,
        t_load,
        t_compile.as_secs_f64() / t_load.as_secs_f64()
    );

    let n = 96;
    let nwa_bytes = query::save(&query::compile(&dense_nwa(n, 3)));
    let t = std::time::Instant::now();
    let compiled = query::compile(&dense_nwa(n, 3));
    let t_compile = t.elapsed();
    let t = std::time::Instant::now();
    let loaded: CompiledNwa = query::load(&nwa_bytes).expect("saved bytes load");
    let t_load = t.elapsed();
    assert_eq!(loaded, compiled);
    println!(
        "dense NWA, {n} states ({} artifact bytes):",
        nwa_bytes.len()
    );
    println!(
        "  construct+compile {:>10.1?}   load {:>10.1?}   ratio {:>6.1}x",
        t_compile,
        t_load,
        t_compile.as_secs_f64() / t_load.as_secs_f64()
    );
    println!();
}

fn bench_cold_start(c: &mut Criterion) {
    print_lifecycle_table();

    // E18a: warm cold-start of the memoizing summary engine. The ids pair
    // up as load_*/compile_* so the CI gate can normalize the speedup
    // within one run; identical Throughput elements make the per_sec
    // ratio equal the time ratio.
    let (nnwa, train) = summary_fixture();
    let bytes = query::save(&compile_and_warm(&nnwa, &train));
    let mut group = c.benchmark_group("e18a_warm_cold_start");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("compile_summary", train.len()),
        &train,
        |b, train| b.iter(|| compile_and_warm(&nnwa, train)),
    );
    group.bench_with_input(
        BenchmarkId::new("load_summary", train.len()),
        &bytes,
        |b, bytes| b.iter(|| query::load::<CompiledSummary<Nnwa>>(bytes).expect("bytes load")),
    );
    group.finish();

    // E18b: the dense deterministic engine, recorded but not gated — both
    // sides are linear table passes, so the ratio is modest and noisy.
    let mut group = c.benchmark_group("e18b_dense_cold_start");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for n in [32usize, 96] {
        let sigma = 3;
        let entries = (n * n * 3 * sigma) as u64;
        let bytes = query::save(&query::compile(&dense_nwa(n, sigma)));
        group.throughput(Throughput::Elements(entries));
        group.bench_with_input(BenchmarkId::new("compile_nwa", n), &n, |b, &n| {
            b.iter(|| query::compile(&dense_nwa(n, sigma)))
        });
        group.bench_with_input(BenchmarkId::new("load_nwa", n), &bytes, |b, bytes| {
            b.iter(|| query::load::<CompiledNwa>(bytes).expect("bytes load"))
        });
    }
    group.finish();
}

fn bench_resume_overhead(c: &mut Criterion) {
    // E18c: the decision-service parking cadence — suspend to serialized
    // snapshot bytes and resume every 1 000 events — against the
    // uninterrupted run of the same stream on the same artifact.
    let (ab, doc) = generate_document(
        DocumentConfig {
            events: 200_000,
            max_depth: 32,
            ..Default::default()
        },
        31,
    );
    let stream: Vec<TaggedSymbol> = (0..doc.len())
        .map(|i| TaggedSymbol::new(doc.kind(i), doc.symbol(i)))
        .collect();
    let compiled = query::compile(&contains_tag_nwa(ab.lookup("t1").unwrap(), ab.len()));

    let uninterrupted = query::run_stream(&compiled, stream.iter().copied());
    let mut group = c.benchmark_group("e18c_resume_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    group.throughput(Throughput::Elements(stream.len() as u64));
    // Both sides drive the same lane loop, so the measured difference is
    // the suspend → serialize → decode → resume cycle alone.
    group.bench_with_input(
        BenchmarkId::new("uninterrupted_nwa", stream.len()),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut lane = compiled.lane_start();
                for &event in stream {
                    compiled.lane_step(&mut lane, event);
                }
                let outcome = compiled.lane_outcome(&lane);
                assert_eq!(outcome, uninterrupted);
                outcome
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parked_nwa", stream.len()),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut lane = compiled.lane_start();
                for (i, &event) in stream.iter().enumerate() {
                    if i % 1_000 == 0 && i > 0 {
                        let bytes = query::suspend(&compiled, &lane).to_bytes();
                        let snapshot = Snapshot::from_bytes(&bytes).expect("snapshot bytes");
                        lane = query::resume(&compiled, &snapshot).expect("snapshot resumes");
                    }
                    compiled.lane_step(&mut lane, event);
                }
                let outcome = compiled.lane_outcome(&lane);
                assert_eq!(outcome, uninterrupted);
                outcome
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_cold_start, bench_resume_overhead);
criterion_main!(benches);
