//! Benchmark harness crate: all logic lives in `benches/`.
//!
//! The three bench targets (`succinctness`, `streaming`, `pushdown`) cover
//! experiments E1–E15 and speak only the umbrella crate's `prelude`/`query`
//! facade. Run them with `cargo bench` (compile-check with
//! `cargo bench --no-run`).
