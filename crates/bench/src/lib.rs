//! Benchmark harness crate: all logic lives in `benches/`.
