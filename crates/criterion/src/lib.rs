//! A minimal, dependency-free stand-in for the [criterion] benchmarking
//! crate, implementing exactly the API subset the `bench` crate uses.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be a dependency. This shim keeps the bench sources written against
//! the canonical criterion API (`criterion_group!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`) so they
//! can switch to the real crate by changing one manifest line. Timing is a
//! straightforward warm-up + fixed-sample-count loop around
//! [`std::time::Instant`]; results are printed as one line per benchmark.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("", &mut f);
        group.finish();
        self
    }
}

/// Identifier of a parameterized benchmark: a function name plus a parameter
/// rendered with [`Display`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Throughput annotation for a benchmark, used to report a rate next to the
/// mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the work performed per iteration of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher);
        self.report(id, &bencher);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        match bencher.mean {
            Some(mean) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64();
                        format!("  {per_sec:.0} elem/s")
                    }
                    Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64();
                        format!("  {per_sec:.0} B/s")
                    }
                    _ => String::new(),
                };
                println!(
                    "  {label:<48} mean {:>12?}  min {:>12?}{rate}",
                    mean,
                    bencher.min.unwrap_or(mean)
                );
            }
            None => println!("  {label:<48} (no measurement)"),
        }
    }
}

/// Runs the closure under measurement; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Option<Duration>,
    min: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            mean: None,
            min: None,
        }
    }

    /// Measures `routine`: warms up for the configured duration to estimate
    /// the iteration count, then times `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose iterations per sample so all samples fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut total = Duration::ZERO;
        let mut min: Option<Duration> = None;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample = start.elapsed() / iters_per_sample as u32;
            total += sample;
            min = Some(min.map_or(sample, |m| m.min(sample)));
        }
        self.mean = Some(total / self.sample_size as u32);
        self.min = min;
    }
}

/// Declares a benchmark group function compatible with the criterion macro of
/// the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.id, "f/42");
    }
}
