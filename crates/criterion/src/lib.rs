//! A minimal, dependency-free stand-in for the [criterion] benchmarking
//! crate, implementing exactly the API subset the `bench` crate uses.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be a dependency. This shim keeps the bench sources written against
//! the canonical criterion API (`criterion_group!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`) so they
//! can switch to the real crate by changing one manifest line. Timing is a
//! straightforward warm-up + fixed-sample-count loop around
//! [`std::time::Instant`]; results are printed as one line per benchmark.
//!
//! Beyond the printed tables, every measurement is recorded in a process-wide
//! registry, and passing `--format json` to the bench binary (i.e.
//! `cargo bench --bench <name> -- --format json`) makes
//! [`criterion_main!`] write them as machine-readable
//! `BENCH_<target>.json` — into `$BENCH_JSON_DIR` if set, else the current
//! directory. CI uploads these files as artifacts and gates on throughput
//! regressions against the checked-in baseline
//! (`BENCH_streaming.json` at the workspace root).
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement, as serialized into `BENCH_<target>.json`.
#[derive(Debug, Clone)]
struct Record {
    /// Full benchmark id, `group/function/parameter`.
    id: String,
    /// Mean time per iteration in nanoseconds.
    mean_ns: f64,
    /// Fastest sample in nanoseconds.
    min_ns: f64,
    /// Declared per-iteration work, if any.
    throughput: Option<Throughput>,
}

/// Process-wide measurement registry, drained by [`write_json_if_requested`].
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Returns `true` if the process arguments request JSON output
/// (`--format json` or `--format=json`).
fn json_requested() -> bool {
    let args: Vec<String> = std::env::args().collect();
    args.iter().any(|a| a == "--format=json")
        || args
            .windows(2)
            .any(|w| w[0] == "--format" && w[1] == "json")
}

/// Serializes the recorded measurements of this process into
/// `BENCH_<target>.json` if `--format json` was passed; called by
/// [`criterion_main!`] after all groups have run. The output directory is
/// `$BENCH_JSON_DIR` if set, else the current directory.
pub fn write_json_if_requested(target: &str) {
    if !json_requested() {
        return;
    }
    let records = RECORDS.lock().unwrap();
    let out = render_json(target, &records);
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Renders the JSON document for a set of records.
fn render_json(target: &str, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{target}\",\n"));
    out.push_str("  \"format\": 1,\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let throughput = match r.throughput {
            Some(Throughput::Elements(n)) => format!(
                ",\n      \"throughput\": {{ \"unit\": \"elements\", \"per_iter\": {n}, \"per_sec\": {:.1} }}",
                per_sec(n, r.mean_ns)
            ),
            Some(Throughput::Bytes(n)) => format!(
                ",\n      \"throughput\": {{ \"unit\": \"bytes\", \"per_iter\": {n}, \"per_sec\": {:.1} }}",
                per_sec(n, r.mean_ns)
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\n      \"id\": \"{}\",\n      \"mean_ns\": {:.1},\n      \"min_ns\": {:.1}{throughput}\n    }}{sep}\n",
            r.id, r.mean_ns, r.min_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn per_sec(per_iter: u64, mean_ns: f64) -> f64 {
    if mean_ns > 0.0 {
        per_iter as f64 / (mean_ns / 1e9)
    } else {
        0.0
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("", &mut f);
        group.finish();
        self
    }
}

/// Identifier of a parameterized benchmark: a function name plus a parameter
/// rendered with [`Display`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Throughput annotation for a benchmark, used to report a rate next to the
/// mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the work performed per iteration of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher);
        self.report(id, &bencher);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(mean) = bencher.mean {
            RECORDS.lock().unwrap().push(Record {
                id: label.clone(),
                mean_ns: mean.as_nanos() as f64,
                min_ns: bencher.min.unwrap_or(mean).as_nanos() as f64,
                throughput: self.throughput,
            });
        }
        match bencher.mean {
            Some(mean) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64();
                        format!("  {per_sec:.0} elem/s")
                    }
                    Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                        let per_sec = n as f64 / mean.as_secs_f64();
                        format!("  {per_sec:.0} B/s")
                    }
                    _ => String::new(),
                };
                println!(
                    "  {label:<48} mean {:>12?}  min {:>12?}{rate}",
                    mean,
                    bencher.min.unwrap_or(mean)
                );
            }
            None => println!("  {label:<48} (no measurement)"),
        }
    }
}

/// Runs the closure under measurement; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Option<Duration>,
    min: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            mean: None,
            min: None,
        }
    }

    /// Measures `routine`: warms up for the configured duration to estimate
    /// the iteration count, then times `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose iterations per sample so all samples fit the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut total = Duration::ZERO;
        let mut min: Option<Duration> = None;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample = start.elapsed() / iters_per_sample as u32;
            total += sample;
            min = Some(min.map_or(sample, |m| m.min(sample)));
        }
        self.mean = Some(total / self.sample_size as u32);
        self.min = min;
    }
}

/// Declares a benchmark group function compatible with the criterion macro of
/// the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, running each group in order, then
/// serializing the recorded measurements to `BENCH_<target>.json` when the
/// binary was invoked with `--format json` (see
/// [`write_json_if_requested`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.id, "f/42");
    }

    #[test]
    fn measurements_are_recorded_and_render_as_json() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json_shape");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("work", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();

        let records = RECORDS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.id == "json_shape/work/1000")
            .expect("measurement recorded");
        // In release mode the summed range can const-fold to ~0ns; the
        // record must exist and be finite, not necessarily positive.
        assert!(r.mean_ns.is_finite() && r.mean_ns >= 0.0);

        let json = render_json("demo", std::slice::from_ref(r));
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"id\": \"json_shape/work/1000\""));
        assert!(json.contains("\"unit\": \"elements\""));
        assert!(json.contains("\"per_iter\": 1000"));
        assert!(json.contains("\"per_sec\""));
    }
}
