//! Layer 2: the concurrent decision service.
//!
//! A [`DecisionService`] owns one compiled artifact and a pool of worker
//! threads. Callers submit whole event streams (or raw XML bytes, which are
//! tokenized on the calling thread) and get back a [`DecisionHandle`];
//! workers pull submitted streams from a shared queue into batch slots of up
//! to `lanes` streams, decide the slot through the batched entry point
//! (`BatchAcceptor::run_batch`, so per-model lockstep kernels apply), and
//! fulfil the handles. The
//! artifact is shared by reference inside one `Arc` — the compiled engines
//! are `Send + Sync` precisely so that a single table can serve every
//! worker.
//!
//! Every handle handed out is always fulfilled: submissions are validated
//! against the compiled alphabet before queuing, a worker that panics in
//! the batch kernel fulfils its batch's handles with a typed
//! [`DecisionError`] (and survives), and dropping the service drains the
//! queue before joining the workers.
//!
//! Observability is built in rather than bolted on: each worker keeps
//! monotone counters (batches decided, documents decided, events consumed,
//! streams failed), and the service tracks queue pressure (submitted,
//! completed, currently queued, high-water mark).
//! [`DecisionService::stats`] snapshots all of it
//! into a [`ServiceStats`], including the per-worker mean *lane occupancy* —
//! how full the batch slots actually ran, the number that tells you whether
//! the service is getting the batching win or degenerating into sequential
//! decisions (occupancy → 1/lanes means the queue never has a backlog).

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use automata_core::{BatchAcceptor, StreamOutcome};
use nested_words::{Alphabet, NestedWordError, TaggedSymbol};
use nwa_xml::sax::{FrozenByteTokenizer, SaxError};

/// Why a submitted stream ended without a verdict.
///
/// This is the failure channel of a [`DecisionHandle`]: every handle the
/// service hands out is always fulfilled — with `Ok(StreamOutcome)` on the
/// happy path, or with one of these if the decision could not be made — so
/// [`DecisionHandle::wait`] can never hang on a dead worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionError {
    /// The worker thread deciding this stream's batch panicked inside the
    /// artifact's batch kernel. Every stream of that batch gets this error;
    /// the worker itself survives and keeps serving subsequent batches.
    WorkerPanicked,
}

impl std::fmt::Display for DecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionError::WorkerPanicked => {
                write!(f, "the worker deciding this stream's batch panicked")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

/// Sizing knobs for a [`DecisionService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker-thread count. The default is the machine's available
    /// parallelism (falling back to 1 when it cannot be queried).
    pub workers: usize,
    /// Batch-slot width: the maximum number of streams one worker decides in
    /// lockstep per batch. The default of 4 sits past the knee of the
    /// interleaving curve on the compiled tables (see `bench/service.rs`)
    /// while keeping per-batch latency low.
    pub lanes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            lanes: 4,
        }
    }
}

/// A submitted stream waiting to be decided.
#[derive(Debug)]
struct Job {
    events: Vec<TaggedSymbol>,
    slot: Arc<Slot>,
}

/// The completion cell behind a [`DecisionHandle`].
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<StreamOutcome, DecisionError>>>,
    done: Condvar,
}

impl Slot {
    fn fulfil(&self, outcome: Result<StreamOutcome, DecisionError>) {
        let mut result = self.result.lock().expect("decision slot poisoned");
        *result = Some(outcome);
        self.done.notify_all();
    }
}

/// The caller's side of one submitted decision: a future for a single
/// [`StreamOutcome`], fulfilled by whichever worker's batch the stream
/// landed in.
///
/// Fulfilment is guaranteed: a worker that panics in the batch kernel
/// fulfils every handle of its batch with
/// [`DecisionError::WorkerPanicked`] instead of a verdict, and dropping the
/// service drains the queue first — so [`wait`](DecisionHandle::wait)
/// always returns. [`wait_timeout`](DecisionHandle::wait_timeout) bounds
/// the wait anyway for callers that must not block on a congested queue.
#[derive(Debug, Clone)]
pub struct DecisionHandle {
    slot: Arc<Slot>,
}

impl DecisionHandle {
    /// Blocks until the decision is in and returns it: the verdict, or the
    /// [`DecisionError`] explaining why there is none. Waiting again
    /// returns the same result.
    pub fn wait(&self) -> Result<StreamOutcome, DecisionError> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = *result {
                return outcome;
            }
            result = self.slot.done.wait(result).expect("decision slot poisoned");
        }
    }

    /// Like [`wait`](DecisionHandle::wait), but gives up after `timeout`
    /// and returns `None` if the decision is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<StreamOutcome, DecisionError>> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = *result {
                return Some(outcome);
            }
            let (guard, wait) = self
                .slot
                .done
                .wait_timeout(result, timeout)
                .expect("decision slot poisoned");
            result = guard;
            if wait.timed_out() {
                // A fulfilment racing the timeout still counts.
                return *result;
            }
        }
    }

    /// The decision if it is already in, without blocking.
    pub fn try_outcome(&self) -> Option<Result<StreamOutcome, DecisionError>> {
        *self.slot.result.lock().expect("decision slot poisoned")
    }
}

/// Per-worker monotone counters, updated with relaxed atomics on the worker's
/// hot path.
#[derive(Debug, Default)]
struct WorkerCounters {
    batches: AtomicU64,
    documents: AtomicU64,
    events: AtomicU64,
    failures: AtomicU64,
}

/// The queue and the shutdown flag, together under one mutex.
///
/// The flag lives *inside* the mutex deliberately: shutdown is flipped while
/// holding the lock, so the store can never interleave between a worker's
/// empty-queue-and-not-shutdown check and its `Condvar::wait` (both also
/// under the lock). With the flag outside the mutex, that interleaving is a
/// classic lost wakeup — the worker sleeps through the final `notify_all`
/// and `Drop` deadlocks in `join`.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between the service facade and its workers.
#[derive(Debug)]
struct Shared<A> {
    artifact: A,
    queue: Mutex<QueueState>,
    available: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    max_queue_depth: AtomicUsize,
    workers: Vec<WorkerCounters>,
}

/// A snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Batches this worker has decided.
    pub batches: u64,
    /// Streams this worker has decided (across all its batches).
    pub documents: u64,
    /// Events this worker has consumed.
    pub events: u64,
    /// Streams this worker failed to decide because the batch kernel
    /// panicked (their handles were fulfilled with
    /// [`DecisionError::WorkerPanicked`]).
    pub failures: u64,
    /// Mean fraction of the batch slot actually occupied, in `[0, 1]`:
    /// `documents / (batches · lanes)`. Near `1.0` the worker runs full
    /// batches and gets the whole interleaving win; near `1/lanes` the queue
    /// never has a backlog and the service is effectively sequential.
    pub lane_occupancy: f64,
}

/// A point-in-time snapshot of a [`DecisionService`]'s counters, from
/// [`DecisionService::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Streams submitted so far.
    pub submitted: u64,
    /// Streams decided so far.
    pub completed: u64,
    /// Streams currently waiting in the queue.
    pub queued: usize,
    /// The deepest the queue has ever been — the backlog high-water mark.
    pub max_queue_depth: usize,
    /// One entry per worker thread.
    pub workers: Vec<WorkerStats>,
}

/// A concurrent bytes-in → verdict-out decision service over one shared
/// compiled automaton.
///
/// Construction compiles nothing: the caller brings an already-compiled
/// artifact (any [`BatchAcceptor`] that is `Send + Sync`, i.e. the
/// `CompiledNwa` / `CompiledSummary` / `CompiledTaggedDfa` engines) plus the
/// [`Alphabet`] it was compiled against, and the service spawns
/// [`ServiceConfig::workers`] threads that share the artifact through one
/// `Arc`. Streams enter through [`submit`](DecisionService::submit) (tagged
/// events) or [`submit_bytes`](DecisionService::submit_bytes) (raw XML-ish
/// bytes, tokenized on the calling thread so tokenization scales with
/// submitters, not workers); verdicts come back through [`DecisionHandle`]s.
///
/// Dropping the service is a graceful shutdown: workers finish everything
/// already queued, then exit and are joined.
#[derive(Debug)]
pub struct DecisionService<A: BatchAcceptor + Send + Sync + 'static> {
    shared: Arc<Shared<A>>,
    alphabet: Alphabet,
    config: ServiceConfig,
    threads: Vec<JoinHandle<()>>,
}

impl<A: BatchAcceptor + Send + Sync + 'static> DecisionService<A> {
    /// Spawns the worker pool around one compiled artifact and the alphabet
    /// it was compiled against. `config.workers` and `config.lanes` are
    /// clamped to at least 1.
    pub fn new(artifact: A, alphabet: Alphabet, config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            lanes: config.lanes.max(1),
        };
        let shared = Arc::new(Shared {
            artifact,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            workers: (0..config.workers)
                .map(|_| WorkerCounters::default())
                .collect(),
        });
        let threads = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let lanes = config.lanes;
                std::thread::spawn(move || worker_loop(&shared, index, lanes))
            })
            .collect();
        DecisionService {
            shared,
            alphabet,
            config,
            threads,
        }
    }

    /// The sizing the service was built with (after clamping).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The alphabet the artifact was compiled against.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Submits one stream of tagged events for decision and returns its
    /// completion handle.
    ///
    /// Every event's symbol is validated against the service's alphabet
    /// before anything is queued: a symbol whose index falls outside the
    /// alphabet the artifact was compiled against comes back as
    /// [`NestedWordError::UnknownSymbol`] instead of indexing past the
    /// compiled transition tables inside a worker.
    pub fn submit(&self, events: Vec<TaggedSymbol>) -> Result<DecisionHandle, NestedWordError> {
        let sigma = self.alphabet.len();
        if let Some(event) = events.iter().find(|e| e.symbol().index() >= sigma) {
            return Err(NestedWordError::UnknownSymbol {
                name: event.symbol().to_string(),
            });
        }
        Ok(self.enqueue(events))
    }

    /// Queues one already-validated stream. Callers guarantee every symbol
    /// indexes inside the compiled tables.
    fn enqueue(&self, events: Vec<TaggedSymbol>) -> DecisionHandle {
        let slot = Arc::new(Slot::default());
        let job = Job {
            events,
            slot: Arc::clone(&slot),
        };
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            queue.jobs.push_back(job);
            queue.jobs.len()
        };
        self.shared
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
        DecisionHandle { slot }
    }

    /// Submits a raw XML-ish byte stream: tokenizes it on the calling thread
    /// through the incremental SAX [`FrozenByteTokenizer`], then queues the
    /// tagged events. This is the bytes-in → verdict-out external API of §1.
    ///
    /// Every tag and text symbol must already be interned in the service's
    /// alphabet (the one the artifact was compiled against); the frozen
    /// tokenizer resolves names by read-only lookup, so an unknown name
    /// comes back as [`NestedWordError::UnknownSymbol`] inside
    /// [`SaxError::Syntax`] rather than indexing past the transition tables,
    /// the service's alphabet is never cloned or mutated, and the guard
    /// holds across submissions. Malformed UTF-8 and I/O failures surface as
    /// the corresponding typed [`SaxError`]s before anything is queued.
    pub fn submit_bytes<R: io::Read>(&self, reader: R) -> Result<DecisionHandle, SaxError> {
        let mut events = Vec::new();
        for event in FrozenByteTokenizer::new(reader, &self.alphabet) {
            events.push(event?);
        }
        // Read-only resolution means every symbol is in the alphabet, so
        // queue directly — re-validating would find nothing.
        Ok(self.enqueue(events))
    }

    /// Snapshots the service's counters. The snapshot is not atomic across
    /// counters (workers keep running), but each counter is individually
    /// consistent and monotone.
    pub fn stats(&self) -> ServiceStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len();
        let lanes = self.config.lanes as f64;
        let workers = self
            .shared
            .workers
            .iter()
            .map(|w| {
                let batches = w.batches.load(Ordering::Relaxed);
                let documents = w.documents.load(Ordering::Relaxed);
                WorkerStats {
                    batches,
                    documents,
                    events: w.events.load(Ordering::Relaxed),
                    failures: w.failures.load(Ordering::Relaxed),
                    lane_occupancy: if batches == 0 {
                        0.0
                    } else {
                        documents as f64 / (batches as f64 * lanes)
                    },
                }
            })
            .collect();
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            queued,
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            workers,
        }
    }
}

impl<A: BatchAcceptor + Send + Sync + 'static> Drop for DecisionService<A> {
    /// Graceful shutdown: workers drain everything already queued, then
    /// exit and are joined, so every handle handed out is fulfilled.
    fn drop(&mut self) {
        {
            // The flag must flip while holding the queue lock: a worker
            // checks it and blocks on the condvar atomically under the same
            // lock, so an unlocked store + notify could land between the
            // check and the wait — a lost wakeup that leaves the worker
            // asleep forever and this join deadlocked. A poisoned lock
            // (a panicking submitter) must not abort the drop, so take the
            // guard either way.
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One worker: block for a first job, opportunistically top the batch up to
/// `lanes` jobs without blocking, decide the slot with the batched runner,
/// fulfil the handles. Exits only when shutdown is flagged *and* the queue
/// is empty, so pending submissions are always drained.
fn worker_loop<A: BatchAcceptor>(shared: &Shared<A>, index: usize, lanes: usize) {
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(lanes);
        {
            let mut queue = shared.queue.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    batch.push(job);
                    break;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("service queue poisoned");
            }
            while batch.len() < lanes {
                match queue.jobs.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }

        let streams: Vec<&[TaggedSymbol]> = batch.iter().map(|j| j.events.as_slice()).collect();
        // The trait entry point, so per-model overrides apply (CompiledNwa's
        // register-resident lockstep kernel rather than the generic
        // stored-lane loop). Caught unwinding keeps the fulfilment guarantee:
        // a kernel panic (submission validation makes one unlikely, not
        // impossible — an artifact bug suffices) must not strand the batch's
        // handles in forever-blocking waits or kill the worker. `&artifact`
        // is a shared immutable borrow and the queue lock is not held here,
        // so no observable state can be left half-updated by the unwind.
        let outcomes = catch_unwind(AssertUnwindSafe(|| shared.artifact.run_batch(&streams)));

        // All counters land before any handle is fulfilled: a waiter woken
        // by the last fulfilment must not snapshot stats that are still
        // missing its own stream.
        let counters = &shared.workers[index];
        match outcomes {
            Ok(outcomes) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .documents
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                counters.events.fetch_add(
                    streams.iter().map(|s| s.len() as u64).sum(),
                    Ordering::Relaxed,
                );
                shared
                    .completed
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for (job, outcome) in batch.into_iter().zip(outcomes) {
                    job.slot.fulfil(Ok(outcome));
                }
            }
            Err(_) => {
                counters
                    .failures
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                shared
                    .completed
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                for job in batch {
                    job.slot.fulfil(Err(DecisionError::WorkerPanicked));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::{query, Compile};
    use nested_words::Symbol;
    use nwa::Nwa;

    /// Deterministic NWA over {a} accepting well-matched streams of even
    /// length.
    fn even_len_nwa() -> Nwa {
        let a = Symbol(0);
        let mut m = Nwa::new(2, 1, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, 1 - q);
            m.set_call(q, a, 1 - q, q);
            for h in 0..2 {
                m.set_return(q, h, a, 1 - q);
            }
        }
        m
    }

    #[test]
    fn verdicts_and_stats_on_a_small_burst() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 3,
            },
        );
        let a = Symbol(0);
        let handles: Vec<(DecisionHandle, bool)> = (0..17usize)
            .map(|i| {
                let events: Vec<TaggedSymbol> = (0..i)
                    .map(|j| match j % 3 {
                        0 => TaggedSymbol::Call(a),
                        1 => TaggedSymbol::Internal(a),
                        _ => TaggedSymbol::Return(a),
                    })
                    .collect();
                (service.submit(events).unwrap(), i % 2 == 0)
            })
            .collect();
        for (i, (handle, expect)) in handles.iter().enumerate() {
            let outcome = handle.wait().unwrap();
            assert_eq!(outcome.accepted, *expect, "stream {i}");
            assert_eq!(outcome.events, i);
            // Waiting twice returns the same verdict.
            assert_eq!(handle.wait(), Ok(outcome));
            assert_eq!(handle.try_outcome(), Some(Ok(outcome)));
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 17);
        assert_eq!(stats.completed, 17);
        assert_eq!(stats.queued, 0);
        assert!(stats.max_queue_depth >= 1);
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 17);
        let total_events: u64 = stats.workers.iter().map(|w| w.events).sum();
        assert_eq!(total_events, (0..17u64).sum::<u64>());
        for w in &stats.workers {
            assert!(w.lane_occupancy >= 0.0 && w.lane_occupancy <= 1.0);
            assert_eq!(w.failures, 0);
        }
    }

    #[test]
    fn submit_bytes_decides_and_guards_the_alphabet() {
        let mut ab = Alphabet::new();
        nwa_xml::sax::tokenize("<doc><sec>t</sec></doc>", &mut ab).unwrap();
        let q = nwa_xml::queries::contains_tag_nwa(ab.lookup("sec").unwrap(), ab.len());
        let service = DecisionService::new(q.compile(), ab, ServiceConfig::default());

        let hit = service
            .submit_bytes("<doc><sec>t</sec></doc>".as_bytes())
            .unwrap();
        assert!(hit.wait().unwrap().accepted);
        let miss = service.submit_bytes("<doc>t</doc>".as_bytes()).unwrap();
        assert!(!miss.wait().unwrap().accepted);

        // Unknown names are typed errors before anything is queued, and the
        // service alphabet is untouched, so the guard holds on a retry.
        for _ in 0..2 {
            let err = service
                .submit_bytes("<doc><intruder/></doc>".as_bytes())
                .unwrap_err();
            assert!(matches!(
                err,
                SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == "intruder"
            ));
        }
        assert_eq!(service.stats().submitted, 2);
    }

    #[test]
    fn drop_drains_the_queue_before_joining() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 4,
            },
        );
        let a = Symbol(0);
        let handles: Vec<DecisionHandle> = (0..64)
            .map(|_| {
                service
                    .submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)])
                    .unwrap()
            })
            .collect();
        drop(service);
        for handle in &handles {
            // Every handle handed out before the drop is fulfilled.
            assert!(handle.wait().unwrap().accepted);
        }
    }

    #[test]
    fn worker_outcomes_match_the_query_facade() {
        let m = even_len_nwa();
        let compiled = m.compile();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        let streams: Vec<Vec<TaggedSymbol>> = (0..12usize)
            .map(|i| {
                (0..i + 1)
                    .map(|j| {
                        if j % 2 == 0 {
                            TaggedSymbol::Call(a)
                        } else {
                            TaggedSymbol::Return(a)
                        }
                    })
                    .collect()
            })
            .collect();
        let handles: Vec<DecisionHandle> = streams
            .iter()
            .map(|s| service.submit(s.clone()).unwrap())
            .collect();
        for (stream, handle) in streams.iter().zip(&handles) {
            let expected = query::run_stream(&compiled, stream.iter().copied());
            assert_eq!(handle.wait(), Ok(expected));
        }
    }

    #[test]
    fn submit_rejects_out_of_alphabet_symbols() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        // Symbol 1 is outside the one-symbol alphabet the artifact was
        // compiled against; it must be a typed error at submission, not an
        // out-of-bounds table index inside a worker.
        let err = service
            .submit(vec![
                TaggedSymbol::Internal(Symbol(0)),
                TaggedSymbol::Call(Symbol(1)),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            NestedWordError::UnknownSymbol { ref name } if name == "s1"
        ));
        // Nothing was queued, and the service still serves valid streams.
        assert_eq!(service.stats().submitted, 0);
        assert!(service.submit(vec![]).unwrap().wait().unwrap().accepted);
    }

    #[test]
    fn wait_timeout_observes_fulfilled_and_pending() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 1,
            },
        );
        let handle = service.submit(vec![]).unwrap();
        let outcome = handle.wait().unwrap();
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(10)),
            Some(Ok(outcome))
        );
        // A handle nothing will ever fulfil times out instead of hanging.
        let orphan = DecisionHandle {
            slot: Arc::new(Slot::default()),
        };
        assert_eq!(orphan.wait_timeout(Duration::from_millis(10)), None);
        assert_eq!(orphan.try_outcome(), None);
    }

    /// An artifact whose batch kernel panics on `Return` events — a
    /// stand-in for a buggy compiled engine, pinning the fulfilment
    /// guarantee on worker unwind.
    #[derive(Debug)]
    struct Bomb;

    struct BombLane(usize);

    impl automata_core::StreamRun for BombLane {
        fn step(&mut self, event: TaggedSymbol) {
            assert!(!matches!(event, TaggedSymbol::Return(_)), "bomb tripped");
            self.0 += 1;
        }
        fn is_accepting(&self) -> bool {
            true
        }
        fn stack_height(&self) -> usize {
            0
        }
        fn peak_memory(&self) -> usize {
            0
        }
        fn steps(&self) -> usize {
            self.0
        }
    }

    impl automata_core::StreamAcceptor for Bomb {
        type Run<'a> = BombLane;
        fn start(&self) -> BombLane {
            BombLane(0)
        }
    }

    impl BatchAcceptor for Bomb {
        type Lane = BombLane;
        fn lane_start(&self) -> BombLane {
            BombLane(0)
        }
        fn lane_step(&self, lane: &mut BombLane, event: TaggedSymbol) {
            automata_core::StreamRun::step(lane, event);
        }
        fn lane_accepting(&self, _: &BombLane) -> bool {
            true
        }
        fn lane_outcome(&self, lane: &BombLane) -> StreamOutcome {
            StreamOutcome {
                accepted: true,
                events: lane.0,
                peak_memory: 0,
            }
        }
    }

    #[test]
    fn worker_panic_fulfils_handles_and_worker_survives() {
        let service = DecisionService::new(
            Bomb,
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        // Passes submission validation (the symbol is in the alphabet) but
        // trips the kernel — exactly the failure validation cannot catch.
        let bad = service.submit(vec![TaggedSymbol::Return(a)]).unwrap();
        assert_eq!(bad.wait(), Err(DecisionError::WorkerPanicked));
        // The sole worker survived the unwind and still decides streams.
        let good = service.submit(vec![TaggedSymbol::Internal(a)]).unwrap();
        let outcome = good.wait().unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.events, 1);
        let stats = service.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.workers.iter().map(|w| w.failures).sum::<u64>(), 1);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 1);
    }

    #[test]
    fn rapid_create_drop_never_deadlocks() {
        // Regression for the shutdown lost-wakeup race: the flag must flip
        // under the queue lock, or a worker caught between its shutdown
        // check and its condvar wait sleeps through the final notify and
        // the drop hangs in join. Creating and dropping many pools — with
        // and without queued work — walks the interleavings.
        let m = even_len_nwa();
        let a = Symbol(0);
        for round in 0..50 {
            let service = DecisionService::new(
                m.compile(),
                Alphabet::from_names(["a"]),
                ServiceConfig {
                    workers: 3,
                    lanes: 2,
                },
            );
            if round % 2 == 0 {
                let handle = service
                    .submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)])
                    .unwrap();
                drop(service);
                assert!(handle.wait().unwrap().accepted);
            }
        }
    }
}
