//! Layer 2: the concurrent decision service.
//!
//! A [`DecisionService`] owns one compiled artifact and a pool of worker
//! threads. Callers submit whole event streams (or raw XML bytes, which are
//! tokenized on the calling thread) and get back a [`DecisionHandle`];
//! workers pull submitted streams from a shared queue into batch slots of up
//! to `lanes` streams, decide the slot through the batched entry point
//! (`BatchAcceptor::run_batch`, so per-model lockstep kernels apply), and
//! fulfil the handles. The
//! artifact is shared by reference inside one `Arc` — the compiled engines
//! are `Send + Sync` precisely so that a single table can serve every
//! worker.
//!
//! Observability is built in rather than bolted on: each worker keeps
//! monotone counters (batches decided, documents decided, events consumed),
//! and the service tracks queue pressure (submitted, completed, currently
//! queued, high-water mark). [`DecisionService::stats`] snapshots all of it
//! into a [`ServiceStats`], including the per-worker mean *lane occupancy* —
//! how full the batch slots actually ran, the number that tells you whether
//! the service is getting the batching win or degenerating into sequential
//! decisions (occupancy → 1/lanes means the queue never has a backlog).

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use automata_core::{BatchAcceptor, StreamOutcome};
use nested_words::{Alphabet, NestedWordError, TaggedSymbol};
use nwa_xml::sax::{ByteTokenizer, SaxError};

/// Sizing knobs for a [`DecisionService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker-thread count. The default is the machine's available
    /// parallelism (falling back to 1 when it cannot be queried).
    pub workers: usize,
    /// Batch-slot width: the maximum number of streams one worker decides in
    /// lockstep per batch. The default of 4 sits past the knee of the
    /// interleaving curve on the compiled tables (see `bench/service.rs`)
    /// while keeping per-batch latency low.
    pub lanes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            lanes: 4,
        }
    }
}

/// A submitted stream waiting to be decided.
#[derive(Debug)]
struct Job {
    events: Vec<TaggedSymbol>,
    slot: Arc<Slot>,
}

/// The completion cell behind a [`DecisionHandle`].
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<StreamOutcome>>,
    done: Condvar,
}

impl Slot {
    fn fulfil(&self, outcome: StreamOutcome) {
        let mut result = self.result.lock().expect("decision slot poisoned");
        *result = Some(outcome);
        self.done.notify_all();
    }
}

/// The caller's side of one submitted decision: a future for a single
/// [`StreamOutcome`], fulfilled by whichever worker's batch the stream
/// landed in.
#[derive(Debug, Clone)]
pub struct DecisionHandle {
    slot: Arc<Slot>,
}

impl DecisionHandle {
    /// Blocks until the verdict is in and returns it. Waiting again returns
    /// the same outcome.
    pub fn wait(&self) -> StreamOutcome {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = *result {
                return outcome;
            }
            result = self.slot.done.wait(result).expect("decision slot poisoned");
        }
    }

    /// The verdict if it is already in, without blocking.
    pub fn try_outcome(&self) -> Option<StreamOutcome> {
        *self.slot.result.lock().expect("decision slot poisoned")
    }
}

/// Per-worker monotone counters, updated with relaxed atomics on the worker's
/// hot path.
#[derive(Debug, Default)]
struct WorkerCounters {
    batches: AtomicU64,
    documents: AtomicU64,
    events: AtomicU64,
}

/// State shared between the service facade and its workers.
#[derive(Debug)]
struct Shared<A> {
    artifact: A,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    max_queue_depth: AtomicUsize,
    workers: Vec<WorkerCounters>,
}

/// A snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Batches this worker has decided.
    pub batches: u64,
    /// Streams this worker has decided (across all its batches).
    pub documents: u64,
    /// Events this worker has consumed.
    pub events: u64,
    /// Mean fraction of the batch slot actually occupied, in `[0, 1]`:
    /// `documents / (batches · lanes)`. Near `1.0` the worker runs full
    /// batches and gets the whole interleaving win; near `1/lanes` the queue
    /// never has a backlog and the service is effectively sequential.
    pub lane_occupancy: f64,
}

/// A point-in-time snapshot of a [`DecisionService`]'s counters, from
/// [`DecisionService::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Streams submitted so far.
    pub submitted: u64,
    /// Streams decided so far.
    pub completed: u64,
    /// Streams currently waiting in the queue.
    pub queued: usize,
    /// The deepest the queue has ever been — the backlog high-water mark.
    pub max_queue_depth: usize,
    /// One entry per worker thread.
    pub workers: Vec<WorkerStats>,
}

/// A concurrent bytes-in → verdict-out decision service over one shared
/// compiled automaton.
///
/// Construction compiles nothing: the caller brings an already-compiled
/// artifact (any [`BatchAcceptor`] that is `Send + Sync`, i.e. the
/// `CompiledNwa` / `CompiledSummary` / `CompiledTaggedDfa` engines) plus the
/// [`Alphabet`] it was compiled against, and the service spawns
/// [`ServiceConfig::workers`] threads that share the artifact through one
/// `Arc`. Streams enter through [`submit`](DecisionService::submit) (tagged
/// events) or [`submit_bytes`](DecisionService::submit_bytes) (raw XML-ish
/// bytes, tokenized on the calling thread so tokenization scales with
/// submitters, not workers); verdicts come back through [`DecisionHandle`]s.
///
/// Dropping the service is a graceful shutdown: workers finish everything
/// already queued, then exit and are joined.
#[derive(Debug)]
pub struct DecisionService<A: BatchAcceptor + Send + Sync + 'static> {
    shared: Arc<Shared<A>>,
    alphabet: Alphabet,
    config: ServiceConfig,
    threads: Vec<JoinHandle<()>>,
}

impl<A: BatchAcceptor + Send + Sync + 'static> DecisionService<A> {
    /// Spawns the worker pool around one compiled artifact and the alphabet
    /// it was compiled against. `config.workers` and `config.lanes` are
    /// clamped to at least 1.
    pub fn new(artifact: A, alphabet: Alphabet, config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            lanes: config.lanes.max(1),
        };
        let shared = Arc::new(Shared {
            artifact,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            workers: (0..config.workers)
                .map(|_| WorkerCounters::default())
                .collect(),
        });
        let threads = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let lanes = config.lanes;
                std::thread::spawn(move || worker_loop(&shared, index, lanes))
            })
            .collect();
        DecisionService {
            shared,
            alphabet,
            config,
            threads,
        }
    }

    /// The sizing the service was built with (after clamping).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The alphabet the artifact was compiled against.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Submits one stream of tagged events for decision and returns its
    /// completion handle.
    pub fn submit(&self, events: Vec<TaggedSymbol>) -> DecisionHandle {
        let slot = Arc::new(Slot::default());
        let job = Job {
            events,
            slot: Arc::clone(&slot),
        };
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            queue.push_back(job);
            queue.len()
        };
        self.shared
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
        DecisionHandle { slot }
    }

    /// Submits a raw XML-ish byte stream: tokenizes it on the calling thread
    /// through the incremental SAX [`ByteTokenizer`], then queues the tagged
    /// events. This is the bytes-in → verdict-out external API of §1.
    ///
    /// Every tag and text symbol must already be interned in the service's
    /// alphabet (the one the artifact was compiled against); an unknown name
    /// comes back as [`NestedWordError::UnknownSymbol`] inside
    /// [`SaxError::Syntax`] rather than indexing past the transition tables,
    /// and the service's alphabet is never mutated, so the guard holds
    /// across submissions. Malformed UTF-8 and I/O failures surface as the
    /// corresponding typed [`SaxError`]s before anything is queued.
    pub fn submit_bytes<R: io::Read>(&self, reader: R) -> Result<DecisionHandle, SaxError> {
        // Unknown names are interned into a scratch copy only, so the
        // service's alphabet stays aligned with the compiled artifact.
        let sigma = self.alphabet.len();
        let mut scratch = self.alphabet.clone();
        let mut events = Vec::new();
        let mut unknown = None;
        for event in ByteTokenizer::new(reader, &mut scratch) {
            let event = event?;
            if event.symbol().index() >= sigma {
                unknown = Some(event.symbol());
                break;
            }
            events.push(event);
        }
        if let Some(sym) = unknown {
            return Err(SaxError::Syntax(NestedWordError::UnknownSymbol {
                name: scratch.name(sym).unwrap_or("?").to_string(),
            }));
        }
        Ok(self.submit(events))
    }

    /// Snapshots the service's counters. The snapshot is not atomic across
    /// counters (workers keep running), but each counter is individually
    /// consistent and monotone.
    pub fn stats(&self) -> ServiceStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("service queue poisoned")
            .len();
        let lanes = self.config.lanes as f64;
        let workers = self
            .shared
            .workers
            .iter()
            .map(|w| {
                let batches = w.batches.load(Ordering::Relaxed);
                let documents = w.documents.load(Ordering::Relaxed);
                WorkerStats {
                    batches,
                    documents,
                    events: w.events.load(Ordering::Relaxed),
                    lane_occupancy: if batches == 0 {
                        0.0
                    } else {
                        documents as f64 / (batches as f64 * lanes)
                    },
                }
            })
            .collect();
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            queued,
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            workers,
        }
    }
}

impl<A: BatchAcceptor + Send + Sync + 'static> Drop for DecisionService<A> {
    /// Graceful shutdown: workers drain everything already queued, then
    /// exit and are joined, so every handle handed out is fulfilled.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for thread in self.threads.drain(..) {
            // A worker that panicked already poisoned the slots it held;
            // joining propagates nothing further, so ignore the result.
            let _ = thread.join();
        }
    }
}

/// One worker: block for a first job, opportunistically top the batch up to
/// `lanes` jobs without blocking, decide the slot with the batched runner,
/// fulfil the handles. Exits only when shutdown is flagged *and* the queue
/// is empty, so pending submissions are always drained.
fn worker_loop<A: BatchAcceptor>(shared: &Shared<A>, index: usize, lanes: usize) {
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(lanes);
        {
            let mut queue = shared.queue.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    batch.push(job);
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("service queue poisoned");
            }
            while batch.len() < lanes {
                match queue.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }

        let streams: Vec<&[TaggedSymbol]> = batch.iter().map(|j| j.events.as_slice()).collect();
        // The trait entry point, so per-model overrides apply (CompiledNwa's
        // register-resident lockstep kernel rather than the generic
        // stored-lane loop).
        let outcomes = shared.artifact.run_batch(&streams);

        let counters = &shared.workers[index];
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .documents
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        counters.events.fetch_add(
            streams.iter().map(|s| s.len() as u64).sum(),
            Ordering::Relaxed,
        );

        for (job, outcome) in batch.into_iter().zip(outcomes) {
            job.slot.fulfil(outcome);
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::{query, Compile};
    use nested_words::Symbol;
    use nwa::Nwa;

    /// Deterministic NWA over {a} accepting well-matched streams of even
    /// length.
    fn even_len_nwa() -> Nwa {
        let a = Symbol(0);
        let mut m = Nwa::new(2, 1, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, 1 - q);
            m.set_call(q, a, 1 - q, q);
            for h in 0..2 {
                m.set_return(q, h, a, 1 - q);
            }
        }
        m
    }

    #[test]
    fn verdicts_and_stats_on_a_small_burst() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 3,
            },
        );
        let a = Symbol(0);
        let handles: Vec<(DecisionHandle, bool)> = (0..17usize)
            .map(|i| {
                let events: Vec<TaggedSymbol> = (0..i)
                    .map(|j| match j % 3 {
                        0 => TaggedSymbol::Call(a),
                        1 => TaggedSymbol::Internal(a),
                        _ => TaggedSymbol::Return(a),
                    })
                    .collect();
                (service.submit(events), i % 2 == 0)
            })
            .collect();
        for (i, (handle, expect)) in handles.iter().enumerate() {
            let outcome = handle.wait();
            assert_eq!(outcome.accepted, *expect, "stream {i}");
            assert_eq!(outcome.events, i);
            // Waiting twice returns the same verdict.
            assert_eq!(handle.wait(), outcome);
            assert_eq!(handle.try_outcome(), Some(outcome));
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 17);
        assert_eq!(stats.completed, 17);
        assert_eq!(stats.queued, 0);
        assert!(stats.max_queue_depth >= 1);
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 17);
        let total_events: u64 = stats.workers.iter().map(|w| w.events).sum();
        assert_eq!(total_events, (0..17u64).sum::<u64>());
        for w in &stats.workers {
            assert!(w.lane_occupancy >= 0.0 && w.lane_occupancy <= 1.0);
        }
    }

    #[test]
    fn submit_bytes_decides_and_guards_the_alphabet() {
        let mut ab = Alphabet::new();
        nwa_xml::sax::tokenize("<doc><sec>t</sec></doc>", &mut ab).unwrap();
        let q = nwa_xml::queries::contains_tag_nwa(ab.lookup("sec").unwrap(), ab.len());
        let service = DecisionService::new(q.compile(), ab, ServiceConfig::default());

        let hit = service
            .submit_bytes("<doc><sec>t</sec></doc>".as_bytes())
            .unwrap();
        assert!(hit.wait().accepted);
        let miss = service.submit_bytes("<doc>t</doc>".as_bytes()).unwrap();
        assert!(!miss.wait().accepted);

        // Unknown names are typed errors before anything is queued, and the
        // service alphabet is untouched, so the guard holds on a retry.
        for _ in 0..2 {
            let err = service
                .submit_bytes("<doc><intruder/></doc>".as_bytes())
                .unwrap_err();
            assert!(matches!(
                err,
                SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == "intruder"
            ));
        }
        assert_eq!(service.stats().submitted, 2);
    }

    #[test]
    fn drop_drains_the_queue_before_joining() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 4,
            },
        );
        let a = Symbol(0);
        let handles: Vec<DecisionHandle> = (0..64)
            .map(|_| service.submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)]))
            .collect();
        drop(service);
        for handle in &handles {
            // Every handle handed out before the drop is fulfilled.
            assert!(handle.wait().accepted);
        }
    }

    #[test]
    fn worker_outcomes_match_the_query_facade() {
        let m = even_len_nwa();
        let compiled = m.compile();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        let streams: Vec<Vec<TaggedSymbol>> = (0..12usize)
            .map(|i| {
                (0..i + 1)
                    .map(|j| {
                        if j % 2 == 0 {
                            TaggedSymbol::Call(a)
                        } else {
                            TaggedSymbol::Return(a)
                        }
                    })
                    .collect()
            })
            .collect();
        let handles: Vec<DecisionHandle> =
            streams.iter().map(|s| service.submit(s.clone())).collect();
        for (stream, handle) in streams.iter().zip(&handles) {
            let expected = query::run_stream(&compiled, stream.iter().copied());
            assert_eq!(handle.wait(), expected);
        }
    }
}
