//! Layer 2: the concurrent decision service.
//!
//! A [`DecisionService`] owns one compiled artifact and a pool of worker
//! threads. Callers submit whole event streams (or raw XML bytes, which are
//! tokenized on the calling thread) and get back a [`DecisionHandle`];
//! workers pull submitted streams from a shared queue into batch slots of up
//! to `lanes` streams, decide the slot through the batched entry point
//! (`BatchAcceptor::run_batch`, so per-model lockstep kernels apply), and
//! fulfil the handles. The
//! artifact is shared by reference inside one `Arc` — the compiled engines
//! are `Send + Sync` precisely so that a single table can serve every
//! worker.
//!
//! Every handle handed out is always fulfilled: submissions are validated
//! against the compiled alphabet before queuing, a worker that panics in
//! the batch kernel fulfils its batch's handles with a typed
//! [`DecisionError`] (and survives), and dropping the service drains the
//! queue before joining the workers.
//!
//! Observability is built in rather than bolted on: each worker keeps
//! monotone counters (batches decided, documents decided, events consumed,
//! streams failed), and the service tracks queue pressure (submitted,
//! completed, currently queued, high-water mark).
//! [`DecisionService::stats`] snapshots all of it
//! into a [`ServiceStats`], including the per-worker mean *lane occupancy* —
//! how full the batch slots actually ran, the number that tells you whether
//! the service is getting the batching win or degenerating into sequential
//! decisions (occupancy → 1/lanes means the queue never has a backlog).
//!
//! Two persistence-adjacent capabilities round the service out. A service
//! can boot straight from saved artifact bytes
//! ([`DecisionService::from_artifact_bytes`]): the bytes are fully
//! validated — format, checksums, alphabet fingerprint — before any thread
//! spawns. And in-flight documents can be *parked* between bursts of input:
//! a parked job is its `automata_core::Snapshot` ([`ParkedDoc`]), opened by
//! [`DecisionService::open_document`], advanced across the worker pool by
//! [`DecisionService::advance`] and closed by [`DecisionService::finish`].
//! Every resubmission re-validates the snapshot against the artifact
//! fingerprint, so state parked by one artifact can only ever resume on
//! that artifact (or a byte-identical reload of it), with a typed
//! [`ParkError`] otherwise.
//!
//! Multi-query artifacts (`automata_core::MultiAcceptor`, e.g. an
//! `nwa::QuerySet`) plug in through [`DecisionService::submit_multi`]: one
//! submission decides a stream against every member query in one pass and
//! returns a [`MultiHandle`] for all M verdicts — one queue slot and one
//! worker dispatch instead of M. Each member's alphabet fingerprint is
//! validated against the service's alphabet before anything is queued, so a
//! query compiled over the wrong alphabet is one typed
//! [`MultiSubmitError`] up front.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use automata_core::persist::{expect_alphabet, fingerprint_alphabet};
use automata_core::{
    BatchAcceptor, MultiAcceptor, Persist, PersistError, QuerySetRun, Snapshot, StreamOutcome,
    StreamRun, Suspend,
};
use nested_words::{Alphabet, NestedWordError, TaggedSymbol};
use nwa_xml::sax::{FrozenByteTokenizer, SaxError};

/// Why a submitted stream ended without a verdict.
///
/// This is the failure channel of a [`DecisionHandle`]: every handle the
/// service hands out is always fulfilled — with `Ok(StreamOutcome)` on the
/// happy path, or with one of these if the decision could not be made — so
/// [`DecisionHandle::wait`] can never hang on a dead worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionError {
    /// The worker thread running this unit of work panicked — inside the
    /// artifact's batch kernel (every stream of that batch gets this error)
    /// or while advancing this parked document. The worker itself survives
    /// and keeps serving subsequent batches.
    WorkerPanicked,
}

impl std::fmt::Display for DecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionError::WorkerPanicked => {
                write!(f, "the worker deciding this stream's batch panicked")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

/// Why a parked-document operation was refused *at submission*, before
/// anything was queued.
///
/// [`DecisionService::advance`] front-loads every check that can fail:
/// events are validated against the service's alphabet (same guard as
/// [`DecisionService::submit`]) and the snapshot is resumed against the
/// service's artifact on the calling thread — so what a worker eventually
/// runs can no longer fail validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParkError {
    /// An event's symbol falls outside the alphabet the artifact was
    /// compiled against.
    Input(NestedWordError),
    /// The parked snapshot does not fit this service's artifact: a
    /// fingerprint from a different artifact
    /// ([`PersistError::FingerprintMismatch`]) or structurally impossible
    /// run state — the typed [`PersistError`] says which.
    Artifact(PersistError),
}

impl std::fmt::Display for ParkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParkError::Input(e) => write!(f, "invalid events for a parked document: {e}"),
            ParkError::Artifact(e) => {
                write!(
                    f,
                    "parked snapshot does not fit this service's artifact: {e}"
                )
            }
        }
    }
}

impl std::error::Error for ParkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParkError::Input(e) => Some(e),
            ParkError::Artifact(e) => Some(e),
        }
    }
}

/// Sizing knobs for a [`DecisionService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker-thread count. The default is the machine's available
    /// parallelism (falling back to 1 when it cannot be queried).
    pub workers: usize,
    /// Batch-slot width: the maximum number of streams one worker decides in
    /// lockstep per batch. The default of 4 sits past the knee of the
    /// interleaving curve on the compiled tables (see `bench/service.rs`)
    /// while keeping per-batch latency low.
    pub lanes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            lanes: 4,
        }
    }
}

/// An advance-burst closure: owns the already-resumed lane and the burst
/// of events, runs on a worker against the shared artifact, and yields the
/// re-parked snapshot. Multi-query submissions reuse the same shape — the
/// closure owns the validated stream and runs the artifact's query-set
/// entry points, so the worker loop stays free of the [`MultiAcceptor`]
/// bound.
type AdvanceTask<A> = Box<dyn FnOnce(&A) -> Fulfilment + Send>;

/// What a worker does with one queued job.
enum Payload<A> {
    /// Decide one whole stream through the batched kernel.
    Decide(Vec<TaggedSymbol>),
    /// Advance one parked document by an [`AdvanceTask`] burst.
    Advance { task: AdvanceTask<A>, events: usize },
    /// Decide one whole stream against every member query of a multi-query
    /// artifact in one pass.
    Multi { task: AdvanceTask<A>, events: usize },
}

impl<A> std::fmt::Debug for Payload<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Decide(events) => f.debug_tuple("Decide").field(&events.len()).finish(),
            Payload::Advance { events, .. } => {
                f.debug_struct("Advance").field("events", events).finish()
            }
            Payload::Multi { events, .. } => {
                f.debug_struct("Multi").field("events", events).finish()
            }
        }
    }
}

/// A submitted unit of work waiting for a worker.
#[derive(Debug)]
struct Job<A> {
    payload: Payload<A>,
    slot: Arc<Slot>,
}

/// The happy-path value a worker fulfils a slot with: a full-stream verdict
/// (behind a [`DecisionHandle`]) or a re-parked document (behind a
/// [`ParkedHandle`]). Which variant a slot gets is fixed by the payload
/// that created it, so each handle type unwraps its own variant.
#[derive(Debug, Clone)]
enum Fulfilment {
    Decided(StreamOutcome),
    Parked(ParkedDoc),
    MultiDecided(Vec<StreamOutcome>),
}

/// Maps a slot fulfilment to the verdict a [`DecisionHandle`] promises.
/// Decide jobs are only ever fulfilled with [`Fulfilment::Decided`], so the
/// other arms are unreachable by construction.
fn decided(outcome: &Result<Fulfilment, DecisionError>) -> Result<StreamOutcome, DecisionError> {
    match outcome {
        Ok(Fulfilment::Decided(outcome)) => Ok(*outcome),
        Ok(Fulfilment::Parked(_) | Fulfilment::MultiDecided(_)) => {
            unreachable!("decide job fulfilled with the wrong variant")
        }
        Err(error) => Err(*error),
    }
}

/// Maps a slot fulfilment to the re-parked document a [`ParkedHandle`]
/// promises; the other arms are unreachable by construction.
fn parked(outcome: &Result<Fulfilment, DecisionError>) -> Result<ParkedDoc, DecisionError> {
    match outcome {
        Ok(Fulfilment::Parked(doc)) => Ok(doc.clone()),
        Ok(Fulfilment::Decided(_) | Fulfilment::MultiDecided(_)) => {
            unreachable!("advance job fulfilled with the wrong variant")
        }
        Err(error) => Err(*error),
    }
}

/// Maps a slot fulfilment to the per-query verdicts a [`MultiHandle`]
/// promises; the single-verdict arms are unreachable by construction.
fn multi_decided(
    outcome: &Result<Fulfilment, DecisionError>,
) -> Result<Vec<StreamOutcome>, DecisionError> {
    match outcome {
        Ok(Fulfilment::MultiDecided(outcomes)) => Ok(outcomes.clone()),
        Ok(Fulfilment::Decided(_) | Fulfilment::Parked(_)) => {
            unreachable!("multi-query job fulfilled with a single verdict")
        }
        Err(error) => Err(*error),
    }
}

/// The completion cell behind a [`DecisionHandle`] or [`ParkedHandle`].
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<Fulfilment, DecisionError>>>,
    done: Condvar,
}

impl Slot {
    fn fulfil(&self, outcome: Result<Fulfilment, DecisionError>) {
        let mut result = self.result.lock().expect("decision slot poisoned");
        *result = Some(outcome);
        self.done.notify_all();
    }
}

/// The caller's side of one submitted decision: a future for a single
/// [`StreamOutcome`], fulfilled by whichever worker's batch the stream
/// landed in.
///
/// Fulfilment is guaranteed: a worker that panics in the batch kernel
/// fulfils every handle of its batch with
/// [`DecisionError::WorkerPanicked`] instead of a verdict, and dropping the
/// service drains the queue first — so [`wait`](DecisionHandle::wait)
/// always returns. [`wait_timeout`](DecisionHandle::wait_timeout) bounds
/// the wait anyway for callers that must not block on a congested queue.
#[derive(Debug, Clone)]
pub struct DecisionHandle {
    slot: Arc<Slot>,
}

impl DecisionHandle {
    /// Blocks until the decision is in and returns it: the verdict, or the
    /// [`DecisionError`] explaining why there is none. Waiting again
    /// returns the same result.
    pub fn wait(&self) -> Result<StreamOutcome, DecisionError> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return decided(outcome);
            }
            result = self.slot.done.wait(result).expect("decision slot poisoned");
        }
    }

    /// Like [`wait`](DecisionHandle::wait), but gives up after `timeout`
    /// and returns `None` if the decision is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<StreamOutcome, DecisionError>> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return Some(decided(outcome));
            }
            let (guard, wait) = self
                .slot
                .done
                .wait_timeout(result, timeout)
                .expect("decision slot poisoned");
            result = guard;
            if wait.timed_out() {
                // A fulfilment racing the timeout still counts.
                return result.as_ref().map(decided);
            }
        }
    }

    /// The decision if it is already in, without blocking.
    pub fn try_outcome(&self) -> Option<Result<StreamOutcome, DecisionError>> {
        self.slot
            .result
            .lock()
            .expect("decision slot poisoned")
            .as_ref()
            .map(decided)
    }
}

/// One parked in-flight document: an owned, serializable unit of run state
/// that any service holding the same artifact — or a byte-identical reload
/// of it, even in another process — can pick back up.
///
/// A parked job *is* its [`Snapshot`]: [`DecisionService::open_document`]
/// parks a run at the empty prefix, [`DecisionService::advance`] feeds a
/// parked document its next burst of events on the worker pool (yielding a
/// new `ParkedDoc` through a [`ParkedHandle`]), and
/// [`DecisionService::finish`] closes it into a [`StreamOutcome`].
/// [`to_bytes`](ParkedDoc::to_bytes) / [`from_bytes`](ParkedDoc::from_bytes)
/// ship it across processes next to the artifact bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkedDoc {
    snapshot: Snapshot,
}

impl ParkedDoc {
    /// The run state itself: artifact fingerprint, state, stack and
    /// peak/step counters, in the artifact's own encoding.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Events this document has consumed across all its bursts so far.
    pub fn events(&self) -> u64 {
        self.snapshot.steps
    }

    /// Serializes the parked document in the snapshot's versioned byte
    /// format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.snapshot.to_bytes()
    }

    /// Decodes a parked document from [`to_bytes`](ParkedDoc::to_bytes)
    /// bytes. Corruption is a typed error, never a panic; whether the
    /// snapshot fits a given service's artifact is checked again at
    /// [`advance`](DecisionService::advance) /
    /// [`finish`](DecisionService::finish) time.
    pub fn from_bytes(bytes: &[u8]) -> Result<ParkedDoc, PersistError> {
        Ok(ParkedDoc {
            snapshot: Snapshot::from_bytes(bytes)?,
        })
    }
}

impl From<Snapshot> for ParkedDoc {
    /// Wraps a snapshot taken outside the service (e.g. by
    /// `query::suspend` on a standalone run), so existing run state can be
    /// handed to the pool.
    fn from(snapshot: Snapshot) -> Self {
        ParkedDoc { snapshot }
    }
}

/// The caller's side of one in-flight [`DecisionService::advance`]: a
/// future for the re-parked document, fulfilled by whichever worker ran the
/// burst. Fulfilment is guaranteed exactly as for [`DecisionHandle`].
#[derive(Debug, Clone)]
pub struct ParkedHandle {
    slot: Arc<Slot>,
}

impl ParkedHandle {
    /// Blocks until the burst has been applied and returns the re-parked
    /// document, or the [`DecisionError`] explaining why there is none.
    /// Waiting again returns the same result.
    pub fn wait(&self) -> Result<ParkedDoc, DecisionError> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return parked(outcome);
            }
            result = self.slot.done.wait(result).expect("decision slot poisoned");
        }
    }

    /// Like [`wait`](ParkedHandle::wait), but gives up after `timeout` and
    /// returns `None` if the burst is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ParkedDoc, DecisionError>> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return Some(parked(outcome));
            }
            let (guard, wait) = self
                .slot
                .done
                .wait_timeout(result, timeout)
                .expect("decision slot poisoned");
            result = guard;
            if wait.timed_out() {
                return result.as_ref().map(parked);
            }
        }
    }

    /// The re-parked document if it is already in, without blocking.
    pub fn try_parked(&self) -> Option<Result<ParkedDoc, DecisionError>> {
        self.slot
            .result
            .lock()
            .expect("decision slot poisoned")
            .as_ref()
            .map(parked)
    }
}

/// The caller's side of one [`DecisionService::submit_multi`]: a future for
/// all M per-query verdicts of one stream against a multi-query artifact,
/// in query order. Fulfilment is guaranteed exactly as for
/// [`DecisionHandle`].
#[derive(Debug, Clone)]
pub struct MultiHandle {
    slot: Arc<Slot>,
}

impl MultiHandle {
    /// Blocks until the stream has been decided and returns one
    /// [`StreamOutcome`] per member query, or the [`DecisionError`]
    /// explaining why there are none. Waiting again returns the same
    /// result.
    pub fn wait(&self) -> Result<Vec<StreamOutcome>, DecisionError> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return multi_decided(outcome);
            }
            result = self.slot.done.wait(result).expect("decision slot poisoned");
        }
    }

    /// Like [`wait`](MultiHandle::wait), but gives up after `timeout` and
    /// returns `None` if the verdicts are still pending.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<Vec<StreamOutcome>, DecisionError>> {
        let mut result = self.slot.result.lock().expect("decision slot poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return Some(multi_decided(outcome));
            }
            let (guard, wait) = self
                .slot
                .done
                .wait_timeout(result, timeout)
                .expect("decision slot poisoned");
            result = guard;
            if wait.timed_out() {
                return result.as_ref().map(multi_decided);
            }
        }
    }

    /// The per-query verdicts if they are already in, without blocking.
    pub fn try_outcomes(&self) -> Option<Result<Vec<StreamOutcome>, DecisionError>> {
        self.slot
            .result
            .lock()
            .expect("decision slot poisoned")
            .as_ref()
            .map(multi_decided)
    }
}

/// Why a [`DecisionService::submit_multi`] was refused *at submission*,
/// before anything was queued.
///
/// Like every other submission path, all checks are front-loaded onto the
/// calling thread — so what a worker eventually runs can no longer fail
/// validation, and a misconfigured query set is one typed error up front
/// rather than out-of-range table indexing mid-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiSubmitError {
    /// An event's symbol falls outside the alphabet the service holds —
    /// the same guard as [`DecisionService::submit`].
    Input(NestedWordError),
    /// Member query `query` of the artifact was compiled against a
    /// different alphabet than the service's: its fingerprint `found` does
    /// not match the `expected` fingerprint of the service alphabet. The
    /// first offending query is reported.
    QueryAlphabetMismatch {
        /// Index of the first member query whose alphabet disagrees.
        query: usize,
        /// Fingerprint of the service's alphabet.
        expected: u64,
        /// Fingerprint the member query was compiled against.
        found: u64,
    },
}

impl std::fmt::Display for MultiSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiSubmitError::Input(e) => write!(f, "invalid events for a multi-query run: {e}"),
            MultiSubmitError::QueryAlphabetMismatch {
                query,
                expected,
                found,
            } => write!(
                f,
                "member query {query} was compiled against a different alphabet \
                 (fingerprint {found:#018x}, service alphabet {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for MultiSubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiSubmitError::Input(e) => Some(e),
            MultiSubmitError::QueryAlphabetMismatch { .. } => None,
        }
    }
}

/// Per-worker monotone counters, updated with relaxed atomics on the worker's
/// hot path.
#[derive(Debug, Default)]
struct WorkerCounters {
    batches: AtomicU64,
    documents: AtomicU64,
    events: AtomicU64,
    failures: AtomicU64,
}

/// The queue and the shutdown flag, together under one mutex.
///
/// The flag lives *inside* the mutex deliberately: shutdown is flipped while
/// holding the lock, so the store can never interleave between a worker's
/// empty-queue-and-not-shutdown check and its `Condvar::wait` (both also
/// under the lock). With the flag outside the mutex, that interleaving is a
/// classic lost wakeup — the worker sleeps through the final `notify_all`
/// and `Drop` deadlocks in `join`.
#[derive(Debug)]
struct QueueState<A> {
    jobs: VecDeque<Job<A>>,
    shutdown: bool,
}

impl<A> Default for QueueState<A> {
    fn default() -> Self {
        QueueState {
            jobs: VecDeque::new(),
            shutdown: false,
        }
    }
}

/// State shared between the service facade and its workers.
#[derive(Debug)]
struct Shared<A> {
    artifact: A,
    queue: Mutex<QueueState<A>>,
    available: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    max_queue_depth: AtomicUsize,
    workers: Vec<WorkerCounters>,
}

/// A snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Batches this worker has decided.
    pub batches: u64,
    /// Full streams this worker has decided (across all its batches).
    /// Parked-document bursts and multi-query submissions do not count
    /// here — they contribute to `events` and, on panic, to `failures`.
    pub documents: u64,
    /// Events this worker has consumed, across full streams, multi-query
    /// submissions and parked-document bursts.
    pub events: u64,
    /// Units of work this worker failed — streams whose batch kernel
    /// panicked, or parked-document bursts that panicked individually
    /// (their handles were fulfilled with
    /// [`DecisionError::WorkerPanicked`]).
    pub failures: u64,
    /// Mean fraction of the batch slot actually occupied, in `[0, 1]`:
    /// `documents / (batches · lanes)`. Near `1.0` the worker runs full
    /// batches and gets the whole interleaving win; near `1/lanes` the queue
    /// never has a backlog and the service is effectively sequential.
    pub lane_occupancy: f64,
}

/// A point-in-time snapshot of a [`DecisionService`]'s counters, from
/// [`DecisionService::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Units of work submitted so far (full streams and parked-document
    /// bursts).
    pub submitted: u64,
    /// Units of work fulfilled so far.
    pub completed: u64,
    /// Units of work currently waiting in the queue.
    pub queued: usize,
    /// The deepest the queue has ever been — the backlog high-water mark.
    pub max_queue_depth: usize,
    /// One entry per worker thread.
    pub workers: Vec<WorkerStats>,
}

/// A concurrent bytes-in → verdict-out decision service over one shared
/// compiled automaton.
///
/// Construction compiles nothing: the caller brings an already-compiled
/// artifact (any [`BatchAcceptor`] that is `Send + Sync`, i.e. the
/// `CompiledNwa` / `CompiledSummary` / `CompiledTaggedDfa` engines) plus the
/// [`Alphabet`] it was compiled against, and the service spawns
/// [`ServiceConfig::workers`] threads that share the artifact through one
/// `Arc`. Streams enter through [`submit`](DecisionService::submit) (tagged
/// events) or [`submit_bytes`](DecisionService::submit_bytes) (raw XML-ish
/// bytes, tokenized on the calling thread so tokenization scales with
/// submitters, not workers); verdicts come back through [`DecisionHandle`]s.
///
/// Dropping the service is a graceful shutdown: workers finish everything
/// already queued, then exit and are joined.
#[derive(Debug)]
pub struct DecisionService<A: BatchAcceptor + Send + Sync + 'static> {
    shared: Arc<Shared<A>>,
    alphabet: Alphabet,
    config: ServiceConfig,
    threads: Vec<JoinHandle<()>>,
}

impl<A: BatchAcceptor + Send + Sync + 'static> DecisionService<A> {
    /// Spawns the worker pool around one compiled artifact and the alphabet
    /// it was compiled against. `config.workers` and `config.lanes` are
    /// clamped to at least 1.
    pub fn new(artifact: A, alphabet: Alphabet, config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            lanes: config.lanes.max(1),
        };
        let shared = Arc::new(Shared {
            artifact,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            workers: (0..config.workers)
                .map(|_| WorkerCounters::default())
                .collect(),
        });
        let threads = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let lanes = config.lanes;
                std::thread::spawn(move || worker_loop(&shared, index, lanes))
            })
            .collect();
        DecisionService {
            shared,
            alphabet,
            config,
            threads,
        }
    }

    /// The sizing the service was built with (after clamping).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The alphabet the artifact was compiled against.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Submits one stream of tagged events for decision and returns its
    /// completion handle.
    ///
    /// Every event's symbol is validated against the service's alphabet
    /// before anything is queued: a symbol whose index falls outside the
    /// alphabet the artifact was compiled against comes back as
    /// [`NestedWordError::UnknownSymbol`] instead of indexing past the
    /// compiled transition tables inside a worker.
    pub fn submit(&self, events: Vec<TaggedSymbol>) -> Result<DecisionHandle, NestedWordError> {
        let sigma = self.alphabet.len();
        if let Some(event) = events.iter().find(|e| e.symbol().index() >= sigma) {
            return Err(NestedWordError::UnknownSymbol {
                name: event.symbol().to_string(),
            });
        }
        Ok(DecisionHandle {
            slot: self.enqueue(Payload::Decide(events)),
        })
    }

    /// Queues one already-validated unit of work. Callers guarantee nothing
    /// the worker runs can fail validation (symbols index inside the
    /// compiled tables; parked lanes were resumed at submission).
    fn enqueue(&self, payload: Payload<A>) -> Arc<Slot> {
        let slot = Arc::new(Slot::default());
        let job = Job {
            payload,
            slot: Arc::clone(&slot),
        };
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut queue = self.shared.queue.lock().expect("service queue poisoned");
            queue.jobs.push_back(job);
            queue.jobs.len()
        };
        self.shared
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.available.notify_one();
        slot
    }

    /// Submits a raw XML-ish byte stream: tokenizes it on the calling thread
    /// through the SAX [`FrozenByteTokenizer`] — which sweeps the reader in
    /// [`nwa_xml::scan::SCAN_CHUNK`]-sized chunks with the bulk structural
    /// scanner, validating UTF-8 per chunk instead of per char — then queues
    /// the tagged events. This is the bytes-in → verdict-out external API of
    /// §1.
    ///
    /// Every tag and text symbol must already be interned in the service's
    /// alphabet (the one the artifact was compiled against); the frozen
    /// tokenizer resolves names by read-only lookup, so an unknown name
    /// comes back as [`NestedWordError::UnknownSymbol`] inside
    /// [`SaxError::Syntax`] rather than indexing past the transition tables,
    /// the service's alphabet is never cloned or mutated, and the guard
    /// holds across submissions. Malformed UTF-8 and I/O failures surface as
    /// the corresponding typed [`SaxError`]s before anything is queued.
    pub fn submit_bytes<R: io::Read>(&self, reader: R) -> Result<DecisionHandle, SaxError> {
        let mut events = Vec::new();
        for event in FrozenByteTokenizer::new(reader, &self.alphabet) {
            events.push(event?);
        }
        // Read-only resolution means every symbol is in the alphabet, so
        // queue directly — re-validating would find nothing.
        Ok(DecisionHandle {
            slot: self.enqueue(Payload::Decide(events)),
        })
    }

    /// Snapshots the service's counters. The snapshot is not atomic across
    /// counters (workers keep running), but each counter is individually
    /// consistent and monotone.
    pub fn stats(&self) -> ServiceStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len();
        let lanes = self.config.lanes as f64;
        let workers = self
            .shared
            .workers
            .iter()
            .map(|w| {
                let batches = w.batches.load(Ordering::Relaxed);
                let documents = w.documents.load(Ordering::Relaxed);
                WorkerStats {
                    batches,
                    documents,
                    events: w.events.load(Ordering::Relaxed),
                    failures: w.failures.load(Ordering::Relaxed),
                    lane_occupancy: if batches == 0 {
                        0.0
                    } else {
                        documents as f64 / (batches as f64 * lanes)
                    },
                }
            })
            .collect();
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            queued,
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            workers,
        }
    }
}

impl<A: BatchAcceptor + MultiAcceptor + Send + Sync + 'static> DecisionService<A> {
    /// Submits one stream for decision against **every member query** of a
    /// multi-query artifact (e.g. an `nwa::QuerySet`) and returns a handle
    /// for all M verdicts: the serving-side spelling of one-pass
    /// multi-query execution — M verdicts for one queue slot, one worker
    /// dispatch and one pass over the events.
    ///
    /// Everything that can be refused is refused here, typed, before
    /// anything is queued. First every member query's alphabet fingerprint
    /// is validated against the service's alphabet
    /// ([`MultiAcceptor::member_alphabet_fingerprints`]) — a query compiled
    /// over the wrong alphabet is a
    /// [`MultiSubmitError::QueryAlphabetMismatch`] naming the first
    /// offending index, not out-of-range table indexing inside a worker.
    /// Then every event symbol is checked against the alphabet exactly as
    /// in [`submit`](DecisionService::submit), with unknown symbols
    /// reported as [`MultiSubmitError::Input`].
    pub fn submit_multi(&self, events: Vec<TaggedSymbol>) -> Result<MultiHandle, MultiSubmitError> {
        let expected = fingerprint_alphabet(self.alphabet.len());
        for (query, found) in self
            .shared
            .artifact
            .member_alphabet_fingerprints()
            .into_iter()
            .enumerate()
        {
            if found != expected {
                return Err(MultiSubmitError::QueryAlphabetMismatch {
                    query,
                    expected,
                    found,
                });
            }
        }
        let sigma = self.alphabet.len();
        if let Some(event) = events.iter().find(|e| e.symbol().index() >= sigma) {
            return Err(MultiSubmitError::Input(NestedWordError::UnknownSymbol {
                name: event.symbol().to_string(),
            }));
        }
        let count = events.len();
        // The closure owns the validated stream and carries the
        // `MultiAcceptor` entry points with it, keeping the worker loop on
        // the plain `BatchAcceptor` bound.
        let task: AdvanceTask<A> = Box::new(move |artifact: &A| {
            let mut run = artifact.start_set();
            run.step_slice(&events);
            Fulfilment::MultiDecided(run.outcomes())
        });
        Ok(MultiHandle {
            slot: self.enqueue(Payload::Multi {
                task,
                events: count,
            }),
        })
    }
}

impl<A: BatchAcceptor + Persist + Send + Sync + 'static> DecisionService<A> {
    /// Builds a service straight from saved artifact bytes
    /// ([`Persist::save`] / `query::save`): the cold-start path of a worker
    /// process that ships artifact bytes instead of recompiling the query.
    ///
    /// The bytes are fully validated before any thread spawns — corrupt or
    /// truncated input is a typed [`PersistError`], and an artifact saved
    /// against a different alphabet size is a
    /// [`PersistError::AlphabetMismatch`] rather than out-of-range table
    /// indexing inside a worker later.
    pub fn from_artifact_bytes(
        bytes: &[u8],
        alphabet: Alphabet,
        config: ServiceConfig,
    ) -> Result<Self, PersistError> {
        let artifact = A::load(bytes)?;
        expect_alphabet(artifact.alphabet_fingerprint(), alphabet.len())?;
        Ok(DecisionService::new(artifact, alphabet, config))
    }
}

impl<A: Suspend + Send + Sync + 'static> DecisionService<A> {
    /// Parks a fresh document: a run at the empty prefix, ready for its
    /// first [`advance`](DecisionService::advance).
    pub fn open_document(&self) -> ParkedDoc {
        let lane = self.shared.artifact.lane_start();
        ParkedDoc {
            snapshot: self.shared.artifact.suspend_lane(&lane),
        }
    }

    /// Feeds one burst of events to a parked document on the worker pool
    /// and returns a future for the re-parked document.
    ///
    /// Everything that can be refused is refused here, typed, before
    /// anything is queued: out-of-alphabet symbols come back as
    /// [`ParkError::Input`], and a snapshot that does not fit this
    /// service's artifact — a fingerprint from a different artifact
    /// (resubmission validates the artifact fingerprint on every burst) or
    /// structurally impossible state — comes back as
    /// [`ParkError::Artifact`]. The *resumed lane*, not the snapshot, is
    /// what crosses into the worker, so a queued advance can no longer
    /// fail validation.
    pub fn advance(
        &self,
        parked: &ParkedDoc,
        events: Vec<TaggedSymbol>,
    ) -> Result<ParkedHandle, ParkError> {
        let sigma = self.alphabet.len();
        if let Some(event) = events.iter().find(|e| e.symbol().index() >= sigma) {
            return Err(ParkError::Input(NestedWordError::UnknownSymbol {
                name: event.symbol().to_string(),
            }));
        }
        let lane = self
            .shared
            .artifact
            .resume_lane(&parked.snapshot)
            .map_err(ParkError::Artifact)?;
        let count = events.len();
        let task: AdvanceTask<A> = Box::new(move |artifact: &A| {
            let mut lane = lane;
            for event in events {
                artifact.lane_step(&mut lane, event);
            }
            Fulfilment::Parked(ParkedDoc {
                snapshot: artifact.suspend_lane(&lane),
            })
        });
        Ok(ParkedHandle {
            slot: self.enqueue(Payload::Advance {
                task,
                events: count,
            }),
        })
    }

    /// Closes a parked document: resumes it one last time and returns its
    /// verdict — inline on the calling thread, since no events remain to
    /// batch. The snapshot is validated exactly as in
    /// [`advance`](DecisionService::advance).
    pub fn finish(&self, parked: &ParkedDoc) -> Result<StreamOutcome, PersistError> {
        let lane = self.shared.artifact.resume_lane(&parked.snapshot)?;
        Ok(self.shared.artifact.lane_outcome(&lane))
    }
}

impl<A: BatchAcceptor + Send + Sync + 'static> Drop for DecisionService<A> {
    /// Graceful shutdown: workers drain everything already queued, then
    /// exit and are joined, so every handle handed out is fulfilled.
    fn drop(&mut self) {
        {
            // The flag must flip while holding the queue lock: a worker
            // checks it and blocks on the condvar atomically under the same
            // lock, so an unlocked store + notify could land between the
            // check and the wait — a lost wakeup that leaves the worker
            // asleep forever and this join deadlocked. A poisoned lock
            // (a panicking submitter) must not abort the drop, so take the
            // guard either way.
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One worker: block for a first job, opportunistically top the batch up to
/// `lanes` jobs without blocking, run the slot, fulfil the handles. Whole
/// streams go through the batched runner in lockstep; parked-document
/// bursts run one at a time on their already-resumed lanes. Exits only when
/// shutdown is flagged *and* the queue is empty, so pending submissions are
/// always drained.
fn worker_loop<A: BatchAcceptor>(shared: &Shared<A>, index: usize, lanes: usize) {
    loop {
        let mut batch: Vec<Job<A>> = Vec::with_capacity(lanes);
        {
            let mut queue = shared.queue.lock().expect("service queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    batch.push(job);
                    break;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("service queue poisoned");
            }
            while batch.len() < lanes {
                match queue.jobs.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }

        let mut decisions: Vec<(Vec<TaggedSymbol>, Arc<Slot>)> = Vec::new();
        let mut advances: Vec<(AdvanceTask<A>, usize, Arc<Slot>)> = Vec::new();
        for job in batch {
            match job.payload {
                Payload::Decide(events) => decisions.push((events, job.slot)),
                // Advance bursts and multi-query runs share the boxed-task
                // shape and the individually-caught execution path below.
                Payload::Advance { task, events } | Payload::Multi { task, events } => {
                    advances.push((task, events, job.slot))
                }
            }
        }

        // All counters land before any handle is fulfilled: a waiter woken
        // by the last fulfilment must not snapshot stats that are still
        // missing its own unit of work.
        let counters = &shared.workers[index];

        if !decisions.is_empty() {
            let streams: Vec<&[TaggedSymbol]> = decisions
                .iter()
                .map(|(events, _)| events.as_slice())
                .collect();
            // The trait entry point, so per-model overrides apply
            // (CompiledNwa's register-resident lockstep kernel rather than
            // the generic stored-lane loop). Caught unwinding keeps the
            // fulfilment guarantee: a kernel panic (submission validation
            // makes one unlikely, not impossible — an artifact bug
            // suffices) must not strand the batch's handles in
            // forever-blocking waits or kill the worker. `&artifact` is a
            // shared immutable borrow and the queue lock is not held here,
            // so no observable state can be left half-updated by the
            // unwind.
            let outcomes = catch_unwind(AssertUnwindSafe(|| shared.artifact.run_batch(&streams)));

            match outcomes {
                Ok(outcomes) => {
                    counters.batches.fetch_add(1, Ordering::Relaxed);
                    counters
                        .documents
                        .fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    counters.events.fetch_add(
                        streams.iter().map(|s| s.len() as u64).sum(),
                        Ordering::Relaxed,
                    );
                    shared
                        .completed
                        .fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    for ((_, slot), outcome) in decisions.into_iter().zip(outcomes) {
                        slot.fulfil(Ok(Fulfilment::Decided(outcome)));
                    }
                }
                Err(_) => {
                    counters
                        .failures
                        .fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    shared
                        .completed
                        .fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    for (_, slot) in decisions {
                        slot.fulfil(Err(DecisionError::WorkerPanicked));
                    }
                }
            }
        }

        for (task, events, slot) in advances {
            // Each advance owns its already-resumed lane, so one panicking
            // burst cannot contaminate its batch-mates — catch it
            // individually and keep the fulfilment guarantee per handle.
            match catch_unwind(AssertUnwindSafe(|| task(&shared.artifact))) {
                Ok(fulfilment) => {
                    counters.events.fetch_add(events as u64, Ordering::Relaxed);
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    slot.fulfil(Ok(fulfilment));
                }
                Err(_) => {
                    counters.failures.fetch_add(1, Ordering::Relaxed);
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    slot.fulfil(Err(DecisionError::WorkerPanicked));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::{query, Compile};
    use nested_words::Symbol;
    use nwa::Nwa;

    /// Deterministic NWA over {a} accepting well-matched streams of even
    /// length.
    fn even_len_nwa() -> Nwa {
        let a = Symbol(0);
        let mut m = Nwa::new(2, 1, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, 1 - q);
            m.set_call(q, a, 1 - q, q);
            for h in 0..2 {
                m.set_return(q, h, a, 1 - q);
            }
        }
        m
    }

    #[test]
    fn verdicts_and_stats_on_a_small_burst() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 3,
            },
        );
        let a = Symbol(0);
        let handles: Vec<(DecisionHandle, bool)> = (0..17usize)
            .map(|i| {
                let events: Vec<TaggedSymbol> = (0..i)
                    .map(|j| match j % 3 {
                        0 => TaggedSymbol::Call(a),
                        1 => TaggedSymbol::Internal(a),
                        _ => TaggedSymbol::Return(a),
                    })
                    .collect();
                (service.submit(events).unwrap(), i % 2 == 0)
            })
            .collect();
        for (i, (handle, expect)) in handles.iter().enumerate() {
            let outcome = handle.wait().unwrap();
            assert_eq!(outcome.accepted, *expect, "stream {i}");
            assert_eq!(outcome.events, i);
            // Waiting twice returns the same verdict.
            assert_eq!(handle.wait(), Ok(outcome));
            assert_eq!(handle.try_outcome(), Some(Ok(outcome)));
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 17);
        assert_eq!(stats.completed, 17);
        assert_eq!(stats.queued, 0);
        assert!(stats.max_queue_depth >= 1);
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 17);
        let total_events: u64 = stats.workers.iter().map(|w| w.events).sum();
        assert_eq!(total_events, (0..17u64).sum::<u64>());
        for w in &stats.workers {
            assert!(w.lane_occupancy >= 0.0 && w.lane_occupancy <= 1.0);
            assert_eq!(w.failures, 0);
        }
    }

    #[test]
    fn submit_bytes_decides_and_guards_the_alphabet() {
        let mut ab = Alphabet::new();
        nwa_xml::sax::tokenize("<doc><sec>t</sec></doc>", &mut ab).unwrap();
        let q = nwa_xml::queries::contains_tag_nwa(ab.lookup("sec").unwrap(), ab.len());
        let service = DecisionService::new(q.compile(), ab, ServiceConfig::default());

        let hit = service
            .submit_bytes("<doc><sec>t</sec></doc>".as_bytes())
            .unwrap();
        assert!(hit.wait().unwrap().accepted);
        let miss = service.submit_bytes("<doc>t</doc>".as_bytes()).unwrap();
        assert!(!miss.wait().unwrap().accepted);

        // Unknown names are typed errors before anything is queued, and the
        // service alphabet is untouched, so the guard holds on a retry.
        for _ in 0..2 {
            let err = service
                .submit_bytes("<doc><intruder/></doc>".as_bytes())
                .unwrap_err();
            assert!(matches!(
                err,
                SaxError::Syntax(NestedWordError::UnknownSymbol { ref name }) if name == "intruder"
            ));
        }
        assert_eq!(service.stats().submitted, 2);
    }

    #[test]
    fn drop_drains_the_queue_before_joining() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 4,
            },
        );
        let a = Symbol(0);
        let handles: Vec<DecisionHandle> = (0..64)
            .map(|_| {
                service
                    .submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)])
                    .unwrap()
            })
            .collect();
        drop(service);
        for handle in &handles {
            // Every handle handed out before the drop is fulfilled.
            assert!(handle.wait().unwrap().accepted);
        }
    }

    #[test]
    fn worker_outcomes_match_the_query_facade() {
        let m = even_len_nwa();
        let compiled = m.compile();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        let streams: Vec<Vec<TaggedSymbol>> = (0..12usize)
            .map(|i| {
                (0..i + 1)
                    .map(|j| {
                        if j % 2 == 0 {
                            TaggedSymbol::Call(a)
                        } else {
                            TaggedSymbol::Return(a)
                        }
                    })
                    .collect()
            })
            .collect();
        let handles: Vec<DecisionHandle> = streams
            .iter()
            .map(|s| service.submit(s.clone()).unwrap())
            .collect();
        for (stream, handle) in streams.iter().zip(&handles) {
            let expected = query::run_stream(&compiled, stream.iter().copied());
            assert_eq!(handle.wait(), Ok(expected));
        }
    }

    #[test]
    fn submit_rejects_out_of_alphabet_symbols() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        // Symbol 1 is outside the one-symbol alphabet the artifact was
        // compiled against; it must be a typed error at submission, not an
        // out-of-bounds table index inside a worker.
        let err = service
            .submit(vec![
                TaggedSymbol::Internal(Symbol(0)),
                TaggedSymbol::Call(Symbol(1)),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            NestedWordError::UnknownSymbol { ref name } if name == "s1"
        ));
        // Nothing was queued, and the service still serves valid streams.
        assert_eq!(service.stats().submitted, 0);
        assert!(service.submit(vec![]).unwrap().wait().unwrap().accepted);
    }

    #[test]
    fn wait_timeout_observes_fulfilled_and_pending() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 1,
            },
        );
        let handle = service.submit(vec![]).unwrap();
        let outcome = handle.wait().unwrap();
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(10)),
            Some(Ok(outcome))
        );
        // A handle nothing will ever fulfil times out instead of hanging.
        let orphan = DecisionHandle {
            slot: Arc::new(Slot::default()),
        };
        assert_eq!(orphan.wait_timeout(Duration::from_millis(10)), None);
        assert_eq!(orphan.try_outcome(), None);
    }

    /// An artifact whose batch kernel panics on `Return` events — a
    /// stand-in for a buggy compiled engine, pinning the fulfilment
    /// guarantee on worker unwind.
    #[derive(Debug)]
    struct Bomb;

    struct BombLane(usize);

    impl automata_core::StreamRun for BombLane {
        fn step(&mut self, event: TaggedSymbol) {
            assert!(!matches!(event, TaggedSymbol::Return(_)), "bomb tripped");
            self.0 += 1;
        }
        fn is_accepting(&self) -> bool {
            true
        }
        fn stack_height(&self) -> usize {
            0
        }
        fn peak_memory(&self) -> usize {
            0
        }
        fn steps(&self) -> usize {
            self.0
        }
    }

    impl automata_core::StreamAcceptor for Bomb {
        type Run<'a> = BombLane;
        fn start(&self) -> BombLane {
            BombLane(0)
        }
    }

    impl BatchAcceptor for Bomb {
        type Lane = BombLane;
        fn lane_start(&self) -> BombLane {
            BombLane(0)
        }
        fn lane_step(&self, lane: &mut BombLane, event: TaggedSymbol) {
            automata_core::StreamRun::step(lane, event);
        }
        fn lane_accepting(&self, _: &BombLane) -> bool {
            true
        }
        fn lane_outcome(&self, lane: &BombLane) -> StreamOutcome {
            StreamOutcome {
                accepted: true,
                events: lane.0,
                peak_memory: 0,
            }
        }
    }

    #[test]
    fn worker_panic_fulfils_handles_and_worker_survives() {
        let service = DecisionService::new(
            Bomb,
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        // Passes submission validation (the symbol is in the alphabet) but
        // trips the kernel — exactly the failure validation cannot catch.
        let bad = service.submit(vec![TaggedSymbol::Return(a)]).unwrap();
        assert_eq!(bad.wait(), Err(DecisionError::WorkerPanicked));
        // The sole worker survived the unwind and still decides streams.
        let good = service.submit(vec![TaggedSymbol::Internal(a)]).unwrap();
        let outcome = good.wait().unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.events, 1);
        let stats = service.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.workers.iter().map(|w| w.failures).sum::<u64>(), 1);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 1);
    }

    #[test]
    fn parked_documents_advance_across_the_pool_and_finish() {
        let m = even_len_nwa();
        let compiled = m.compile();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 3,
                lanes: 2,
            },
        );
        let a = Symbol(0);
        let full: Vec<TaggedSymbol> = (0..13)
            .map(|j| match j % 3 {
                0 => TaggedSymbol::Call(a),
                1 => TaggedSymbol::Internal(a),
                _ => TaggedSymbol::Return(a),
            })
            .collect();
        // Feed the document in bursts; each advance may land on a
        // different worker, carrying only the snapshot between them.
        let mut doc = service.open_document();
        assert_eq!(doc.events(), 0);
        for burst in full.chunks(5) {
            doc = service
                .advance(&doc, burst.to_vec())
                .unwrap()
                .wait()
                .unwrap();
        }
        assert_eq!(doc.events(), full.len() as u64);
        let outcome = service.finish(&doc).unwrap();
        assert_eq!(outcome, query::run_stream(&compiled, full.iter().copied()));
        // A parked document serializes and ships next to the artifact
        // bytes; the reload closes to the same verdict.
        let reloaded = ParkedDoc::from_bytes(&doc.to_bytes()).unwrap();
        assert_eq!(reloaded, doc);
        assert_eq!(service.finish(&reloaded).unwrap(), outcome);
        // Bursts count as units of work in the service counters.
        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        let total_events: u64 = stats.workers.iter().map(|w| w.events).sum();
        assert_eq!(total_events, full.len() as u64);
        assert_eq!(stats.workers.iter().map(|w| w.documents).sum::<u64>(), 0);
    }

    #[test]
    fn advance_validates_alphabet_and_fingerprint_at_submission() {
        let m = even_len_nwa();
        let service = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        let doc = service.open_document();
        // Out-of-alphabet events are refused before anything is queued.
        let err = service
            .advance(&doc, vec![TaggedSymbol::Call(Symbol(7))])
            .unwrap_err();
        assert!(matches!(
            err,
            ParkError::Input(NestedWordError::UnknownSymbol { ref name }) if name == "s7"
        ));
        // A snapshot parked by a *different* artifact is refused, typed, at
        // resubmission: the fingerprint check — even with an empty burst.
        let mut other = even_len_nwa();
        other.set_accepting(1, true);
        let foreign_service = DecisionService::new(
            other.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 1,
            },
        );
        let foreign = foreign_service.open_document();
        let err = service.advance(&foreign, vec![]).unwrap_err();
        assert!(matches!(
            err,
            ParkError::Artifact(PersistError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            service.finish(&foreign),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        // Nothing was queued by any of the refusals.
        assert_eq!(service.stats().submitted, 0);
    }

    #[test]
    fn services_boot_from_artifact_bytes() {
        let m = even_len_nwa();
        let bytes = query::save(&m.compile());
        let service: DecisionService<nwa::CompiledNwa> = DecisionService::from_artifact_bytes(
            &bytes,
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 2,
                lanes: 2,
            },
        )
        .unwrap();
        let a = Symbol(0);
        let handle = service
            .submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)])
            .unwrap();
        assert!(handle.wait().unwrap().accepted);
        // A document parked by the original artifact resumes on the
        // reloaded one: same fingerprint, byte-identical tables.
        let original = DecisionService::new(
            m.compile(),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 1,
            },
        );
        let doc = original
            .advance(&original.open_document(), vec![TaggedSymbol::Internal(a)])
            .unwrap()
            .wait()
            .unwrap();
        assert!(!service.finish(&doc).unwrap().accepted);

        // An artifact saved against a different alphabet size is a typed
        // error before any thread spawns.
        let err = DecisionService::<nwa::CompiledNwa>::from_artifact_bytes(
            &bytes,
            Alphabet::from_names(["a", "b"]),
            ServiceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PersistError::AlphabetMismatch { .. }));
        // Corrupt bytes are a typed error, never a panic.
        assert!(DecisionService::<nwa::CompiledNwa>::from_artifact_bytes(
            &bytes[..bytes.len() - 1],
            Alphabet::from_names(["a"]),
            ServiceConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn submit_multi_returns_every_member_verdict() {
        use nwa::{QuerySet, QuerySetBackend};

        let a = Symbol(0);
        let even = even_len_nwa();
        let mut some_call = Nwa::new(2, 1, 0);
        some_call.set_accepting(1, true);
        for q in 0..2usize {
            some_call.set_internal(q, a, q);
            some_call.set_call(q, a, 1, 0);
            for h in 0..2 {
                some_call.set_return(q, h, a, q);
            }
        }
        let queries = [even.clone(), some_call.clone()];
        let streams: Vec<Vec<TaggedSymbol>> = (0..10usize)
            .map(|i| {
                (0..i)
                    .map(|j| match j % 3 {
                        0 => TaggedSymbol::Internal(a),
                        1 => TaggedSymbol::Call(a),
                        _ => TaggedSymbol::Return(a),
                    })
                    .collect()
            })
            .collect();
        for backend in [QuerySetBackend::Product, QuerySetBackend::Lockstep] {
            let service = DecisionService::new(
                QuerySet::with_backend(&queries, backend),
                Alphabet::from_names(["a"]),
                ServiceConfig {
                    workers: 2,
                    lanes: 3,
                },
            );
            let handles: Vec<MultiHandle> = streams
                .iter()
                .map(|s| service.submit_multi(s.clone()).unwrap())
                .collect();
            for (stream, handle) in streams.iter().zip(&handles) {
                let outcomes = handle.wait().unwrap();
                assert_eq!(outcomes.len(), 2);
                for (query, outcome) in queries.iter().zip(&outcomes) {
                    let expected = query::run_stream(query, stream.iter().copied());
                    assert_eq!(*outcome, expected, "{backend:?}");
                }
                // Waiting twice returns the same verdicts.
                assert_eq!(handle.wait().unwrap(), outcomes);
                assert_eq!(handle.try_outcomes(), Some(Ok(outcomes.clone())));
                assert_eq!(
                    handle.wait_timeout(Duration::from_millis(10)),
                    Some(Ok(outcomes))
                );
            }
            // Multi submissions share the queue with single-verdict ones.
            let single = service.submit(streams[4].clone()).unwrap();
            assert_eq!(
                single.wait().unwrap(),
                query::run_stream(
                    &QuerySet::with_backend(&queries, backend),
                    streams[4].iter().copied()
                )
            );
            let stats = service.stats();
            assert_eq!(stats.submitted, 11);
            assert_eq!(stats.completed, 11);
        }
    }

    #[test]
    fn submit_multi_validates_every_query_alphabet_up_front() {
        use nwa::QuerySet;

        // The set's members were compiled over a 3-symbol alphabet, but the
        // service holds a 2-name alphabet: every submission is refused with
        // a typed error naming the first offending query, and nothing is
        // ever queued.
        let mut wide = Nwa::new(1, 3, 0);
        wide.set_accepting(0, true);
        for s in 0..3 {
            let s = Symbol(s as u16);
            wide.set_internal(0, s, 0);
            wide.set_call(0, s, 0, 0);
            wide.set_return(0, 0usize, s, 0);
        }
        let service = DecisionService::new(
            QuerySet::compile(&[wide.clone(), wide]),
            Alphabet::from_names(["a", "b"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        let err = service
            .submit_multi(vec![TaggedSymbol::Internal(Symbol(0))])
            .unwrap_err();
        assert!(matches!(
            err,
            MultiSubmitError::QueryAlphabetMismatch { query: 0, .. }
        ));
        assert_eq!(service.stats().submitted, 0);

        // With a matching artifact, out-of-alphabet events are still typed
        // errors before anything is queued — the same guard as submit().
        let service = DecisionService::new(
            QuerySet::compile(&[even_len_nwa()]),
            Alphabet::from_names(["a"]),
            ServiceConfig {
                workers: 1,
                lanes: 2,
            },
        );
        let err = service
            .submit_multi(vec![TaggedSymbol::Call(Symbol(9))])
            .unwrap_err();
        assert!(matches!(
            err,
            MultiSubmitError::Input(NestedWordError::UnknownSymbol { ref name }) if name == "s9"
        ));
        assert_eq!(service.stats().submitted, 0);
        // And a valid submission still goes through afterwards.
        let outcomes = service.submit_multi(vec![]).unwrap().wait().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].accepted);
    }

    #[test]
    fn rapid_create_drop_never_deadlocks() {
        // Regression for the shutdown lost-wakeup race: the flag must flip
        // under the queue lock, or a worker caught between its shutdown
        // check and its condvar wait sleeps through the final notify and
        // the drop hangs in join. Creating and dropping many pools — with
        // and without queued work — walks the interleavings.
        let m = even_len_nwa();
        let a = Symbol(0);
        for round in 0..50 {
            let service = DecisionService::new(
                m.compile(),
                Alphabet::from_names(["a"]),
                ServiceConfig {
                    workers: 3,
                    lanes: 2,
                },
            );
            if round % 2 == 0 {
                let handle = service
                    .submit(vec![TaggedSymbol::Internal(a), TaggedSymbol::Internal(a)])
                    .unwrap();
                drop(service);
                assert!(handle.wait().unwrap().accepted);
            }
        }
    }
}
