//! Layer 1: the batched lockstep runner.
//!
//! A [`BatchRun`] advances `LANES` independent event streams over one shared
//! automaton. The win is architectural, not algorithmic: when a stream's
//! per-event cost is the latency of the dependent chain
//! `state → table[state + event] → state`, the core retires one table load
//! per chain latency and sits idle otherwise. The lanes of a batch are
//! *independent* chains over the *same* (cache-resident) tables, so the
//! round-robin inner loop keeps several loads in flight at once: with the
//! per-lane step inlined (`BatchAcceptor::lane_step` implementations are
//! `#[inline]` and branch-light) and the lane loop unrolled over the const
//! `LANES`, the out-of-order window overlaps lane B's lookup with lane A's
//! stall.
//!
//! How much that buys depends on what else the step does. The flat
//! compiled DFA is the clean case — its step *is* the bare chain, and its
//! register-resident batch kernel measures ≈ 2.7× the sequential engine on
//! the reference core. The fused compiled NWA step is already
//! issue-width-bound (kind decode, top spill, stack bookkeeping fill the
//! load shadow), so its batch entry runs lanes back to back at parity
//! instead. Both ratios are gated in CI by the service bench
//! (`bench/service.rs`), the same way the compiled/interpreted ratios are
//! gated.
//!
//! [`DynBatchRun`] is the same runner with the width chosen at runtime —
//! the shape the decision service uses, since a batch slot holds however
//! many streams the queue had ready.

use automata_core::{BatchAcceptor, StreamOutcome};
use nested_words::TaggedSymbol;

/// `LANES` independent streams in flight over one shared automaton, in
/// software-pipelined lockstep.
///
/// The run borrows the automaton (like a `StreamRun`) and owns one
/// [`BatchAcceptor::Lane`] per stream. Lanes are advanced either an event
/// at a time ([`step`](BatchRun::step) / [`step_round`](BatchRun::step_round))
/// or a whole slice per lane at once ([`run`](BatchRun::run)); a finished
/// lane can be [`reset`](BatchRun::reset) and refilled with the next
/// stream, which is how a serving loop keeps all lanes occupied.
#[derive(Debug)]
pub struct BatchRun<'a, A: BatchAcceptor, const LANES: usize> {
    acceptor: &'a A,
    lanes: [A::Lane; LANES],
}

impl<'a, A: BatchAcceptor, const LANES: usize> BatchRun<'a, A, LANES> {
    /// Starts `LANES` fresh lanes in the initial configuration.
    pub fn new(acceptor: &'a A) -> Self {
        BatchRun {
            acceptor,
            lanes: std::array::from_fn(|_| acceptor.lane_start()),
        }
    }

    /// The compile-time lane count.
    pub fn lanes(&self) -> usize {
        LANES
    }

    /// Advances one lane by one event.
    #[inline]
    pub fn step(&mut self, lane: usize, event: TaggedSymbol) {
        self.acceptor.lane_step(&mut self.lanes[lane], event);
    }

    /// Advances every lane by one event — one lockstep round. The loop is
    /// unrolled over the const `LANES`, which is where the interleaving
    /// happens: the lanes' table loads are issued back to back and resolve
    /// in parallel.
    #[inline]
    pub fn step_round(&mut self, events: [TaggedSymbol; LANES]) {
        for (lane, event) in self.lanes.iter_mut().zip(events) {
            self.acceptor.lane_step(lane, event);
        }
    }

    /// Would stopping lane `lane`'s stream now accept the prefix read so
    /// far.
    pub fn is_accepting(&self, lane: usize) -> bool {
        self.acceptor.lane_accepting(&self.lanes[lane])
    }

    /// The completed-run observables of one lane.
    pub fn outcome(&self, lane: usize) -> StreamOutcome {
        self.acceptor.lane_outcome(&self.lanes[lane])
    }

    /// The completed-run observables of every lane.
    pub fn outcomes(&self) -> [StreamOutcome; LANES] {
        std::array::from_fn(|i| self.outcome(i))
    }

    /// Restarts one lane in the initial configuration (the next stream's
    /// seat).
    pub fn reset(&mut self, lane: usize) {
        self.lanes[lane] = self.acceptor.lane_start();
    }

    /// Advances lane `i` through `streams[i]` for every lane, interleaved:
    /// the common prefix of all streams runs in lockstep rounds, then each
    /// lane drains its tail. Returns the per-lane outcomes. Lanes continue
    /// from their current state, so fresh runs should come from
    /// [`BatchRun::new`] or follow a [`reset`](BatchRun::reset).
    pub fn run(&mut self, streams: &[&[TaggedSymbol]; LANES]) -> [StreamOutcome; LANES] {
        let common = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        for round in 0..common {
            for (lane, stream) in self.lanes.iter_mut().zip(streams) {
                self.acceptor.lane_step(lane, stream[round]);
            }
        }
        for (lane, stream) in self.lanes.iter_mut().zip(streams) {
            for &event in &stream[common..] {
                self.acceptor.lane_step(lane, event);
            }
        }
        self.outcomes()
    }
}

/// The batched lockstep runner with the lane count chosen at runtime — the
/// batch-slot shape of the decision service, where a slot holds however
/// many streams the queue had ready (so occupancy varies from 1 to the
/// configured width).
///
/// Semantically identical to [`BatchRun`]; the only loss is the const
/// unrolling of the round loop, which matters little because the lanes'
/// chains stay independent either way.
#[derive(Debug)]
pub struct DynBatchRun<'a, A: BatchAcceptor> {
    acceptor: &'a A,
    lanes: Vec<A::Lane>,
}

impl<'a, A: BatchAcceptor> DynBatchRun<'a, A> {
    /// Starts `lanes` fresh lanes in the initial configuration.
    pub fn new(acceptor: &'a A, lanes: usize) -> Self {
        DynBatchRun {
            acceptor,
            lanes: (0..lanes).map(|_| acceptor.lane_start()).collect(),
        }
    }

    /// The lane count.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Advances one lane by one event.
    #[inline]
    pub fn step(&mut self, lane: usize, event: TaggedSymbol) {
        self.acceptor.lane_step(&mut self.lanes[lane], event);
    }

    /// Would stopping lane `lane`'s stream now accept the prefix read so
    /// far.
    pub fn is_accepting(&self, lane: usize) -> bool {
        self.acceptor.lane_accepting(&self.lanes[lane])
    }

    /// The completed-run observables of one lane.
    pub fn outcome(&self, lane: usize) -> StreamOutcome {
        self.acceptor.lane_outcome(&self.lanes[lane])
    }

    /// Restarts one lane in the initial configuration.
    pub fn reset(&mut self, lane: usize) {
        self.lanes[lane] = self.acceptor.lane_start();
    }

    /// Advances lane `i` through `streams[i]`, interleaved in lockstep;
    /// panics if `streams.len()` exceeds the lane count. Returns one
    /// outcome per stream.
    pub fn run(&mut self, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
        assert!(
            streams.len() <= self.lanes.len(),
            "more streams than lanes: {} > {}",
            streams.len(),
            self.lanes.len()
        );
        let common = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        for round in 0..common {
            for (lane, stream) in self.lanes.iter_mut().zip(streams) {
                self.acceptor.lane_step(lane, stream[round]);
            }
        }
        for (lane, stream) in self.lanes.iter_mut().zip(streams) {
            for &event in &stream[common..] {
                self.acceptor.lane_step(lane, event);
            }
        }
        (0..streams.len()).map(|i| self.outcome(i)).collect()
    }
}
