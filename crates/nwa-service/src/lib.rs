//! # nwa-service
//!
//! The serving subsystem of the nested-words suite: many concurrent event
//! streams decided against **one shared, immutable compiled automaton**.
//!
//! The paper's headline application (§1, §3.2) — XML stream processing with
//! per-stream memory proportional to nesting depth — is exactly the shape of
//! a high-fan-in filter process: thousands of documents in flight, one
//! compiled query, a stack per open document. The compiled engines
//! (`query::compile`) made a single stream fast; this crate makes *many*
//! streams fast, in two layers:
//!
//! * **Layer 1 — the batched runner** ([`BatchRun`] with a const lane
//!   count, [`DynBatchRun`] for widths chosen at runtime): N independent
//!   streams advanced in software-pipelined lockstep over one shared table,
//!   via the `automata_core::BatchAcceptor` capability. One stream's
//!   throughput is bounded by the `state → table → state` load-to-use
//!   dependency chain, not by table size — the PR5 microbenchmarks measured
//!   the compiled NWA at ~3.8 ns/event with most of the core idle. Lanes
//!   are mutually independent chains, so interleaving them fills the
//!   pipeline: lane B's table lookup executes in the shadow of lane A's
//!   dependency stall.
//!
//! * **Layer 2 — the decision service** ([`DecisionService`]): a
//!   thread-pool facade over the batched runner. The compiled artifact is
//!   built once and shared (`Arc`'d — the artifacts are `Send + Sync`);
//!   worker threads pull submitted streams from a queue into batch slots
//!   and answer through completion handles. [`DecisionService::submit_bytes`]
//!   routes raw XML bytes through the incremental SAX `FrozenByteTokenizer`
//!   (read-only name lookup against the compiled alphabet), so the external
//!   API is bytes-in → verdict-out; [`DecisionService::submit`] validates
//!   event symbols against the same alphabet, so nothing out of range ever
//!   reaches the tables. Every handle is always fulfilled — worker panics
//!   surface as a typed [`DecisionError`], never a hung
//!   [`DecisionHandle::wait`]. Built-in counters ([`ServiceStats`]) report
//!   per-worker batches, documents, events, failures and lane occupancy,
//!   plus queue high-water marks. A service can also boot straight from
//!   saved artifact bytes ([`DecisionService::from_artifact_bytes`], fully
//!   validated before any thread spawns) and park/unpark in-flight
//!   documents between bursts of input
//!   ([`DecisionService::open_document`] / [`DecisionService::advance`] /
//!   [`DecisionService::finish`]): a parked job is its
//!   `automata_core::Snapshot` ([`ParkedDoc`]), serializable next to the
//!   artifact bytes and fingerprint-checked on every resubmission. When the
//!   artifact is a multi-query set (`automata_core::MultiAcceptor`, e.g. an
//!   `nwa::QuerySet`), [`DecisionService::submit_multi`] decides one stream
//!   against every member query in one pass and answers through a
//!   [`MultiHandle`] carrying all M verdicts, with each member's alphabet
//!   fingerprint validated up front ([`MultiSubmitError`]).
//!
//! This outgrows the single-shot WALi-OpenNWA `query::language` shape the
//! suite's decision layer was modeled on: the unit of work is no longer one
//! call deciding one input, but a long-lived process deciding an open-ended
//! set of concurrent streams against a query compiled once.
//!
//! ```
//! use automata_core::query;
//! use nested_words::{Alphabet, Symbol, TaggedSymbol};
//! use nwa_service::{DecisionService, ServiceConfig};
//! use word_automata::Dfa;
//!
//! // Tagged DFA over Σ = {a} accepting streams of even length.
//! let mut even = Dfa::new(2, 3, 0);
//! even.set_accepting(0, true);
//! for q in 0..2 {
//!     for t in 0..3 {
//!         even.set_transition(q, t, 1 - q);
//!     }
//! }
//! let service = DecisionService::new(
//!     query::compile(&even),
//!     Alphabet::from_names(["a"]),
//!     ServiceConfig::default(),
//! );
//! let a = Symbol(0);
//! let handle = service
//!     .submit(vec![TaggedSymbol::Call(a), TaggedSymbol::Return(a)])
//!     .unwrap();
//! assert!(handle.wait().unwrap().accepted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod service;

pub use batch::{BatchRun, DynBatchRun};
pub use service::{
    DecisionError, DecisionHandle, DecisionService, MultiHandle, MultiSubmitError, ParkError,
    ParkedDoc, ParkedHandle, ServiceConfig, ServiceStats, WorkerStats,
};
