//! # pushdown-automata
//!
//! The context-free substrate of the reproduction of "Marrying Words and
//! Trees" (PODS 2007): context-free grammars with CYK parsing (the classical
//! representation of context-free *word* languages, Lemma 4's baseline) and
//! top-down pushdown *tree* automata (Guessarian; Lemma 5's baseline and the
//! model whose emptiness procedure §4.4 generalizes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod grammar;
pub mod tree_pda;

pub use grammar::Cfg;
pub use tree_pda::PushdownTreeAutomaton;
