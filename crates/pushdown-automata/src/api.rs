//! Implementations of the [`automata_core`] trait vocabulary for the
//! context-free baselines: CYK membership for grammars over flat words and
//! run search for pushdown tree automata over ordered trees.
//!
//! Context-free languages are not closed under intersection or complement,
//! so neither model implements [`automata_core::BooleanOps`] or
//! [`automata_core::Decide`].

use crate::grammar::Cfg;
use crate::tree_pda::PushdownTreeAutomaton;
use automata_core::Acceptor;
use nested_words::OrderedTree;

impl Acceptor<[usize]> for Cfg {
    /// CYK membership on the terminal word.
    fn accepts(&self, input: &[usize]) -> bool {
        self.derives(input)
    }
}

impl Acceptor<OrderedTree> for PushdownTreeAutomaton {
    fn accepts(&self, input: &OrderedTree) -> bool {
        PushdownTreeAutomaton::accepts(self, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;
    use nested_words::{Alphabet, Symbol};

    #[test]
    fn cfg_membership_via_query() {
        let g = Cfg::equal_counts();
        assert!(query::contains(&g, &[0, 1][..]));
        assert!(query::contains(&g, &[][..]));
        assert!(!query::contains(&g, &[0, 0, 1][..]));
    }

    #[test]
    fn tree_pda_membership_via_query() {
        let ab = Alphabet::ab();
        let (a, b) = (ab.lookup("a").unwrap(), ab.lookup("b").unwrap());
        let pda = PushdownTreeAutomaton::comb_language(a, b);
        let accepted = comb(a, b, 2);
        assert_eq!(query::contains(&pda, &accepted), pda.accepts(&accepted));
    }

    /// The right-comb with `n` a-labelled spine nodes ending in a b-leaf.
    fn comb(a: Symbol, b: Symbol, n: usize) -> OrderedTree {
        let mut t = OrderedTree::leaf(b);
        for _ in 0..n {
            t = OrderedTree::node(a, vec![OrderedTree::leaf(b), t]);
        }
        t
    }
}
