//! Context-free grammars and CYK membership.
//!
//! Context-free word languages are one of the two incomparable classes that
//! pushdown nested word automata subsume (Lemma 4 / Theorem 9). The grammar
//! representation here is the baseline used to cross-validate the pushdown
//! NWA implementation on classical languages (Dyck words, equal counts).

use std::collections::{HashMap, HashSet};

/// A context-free grammar over terminal indices `0..num_terminals` with
/// nonterminal indices `0..num_nonterminals`; nonterminal 0 is the start
/// symbol.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    num_terminals: usize,
    num_nonterminals: usize,
    /// Productions `A → α` where α mixes terminals and nonterminals.
    productions: Vec<(usize, Vec<GrammarSymbol>)>,
}

/// One symbol on the right-hand side of a production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrammarSymbol {
    /// A terminal symbol index.
    Terminal(usize),
    /// A nonterminal index.
    Nonterminal(usize),
}

impl Cfg {
    /// Creates a grammar with the given number of terminals and
    /// nonterminals and no productions.
    pub fn new(num_terminals: usize, num_nonterminals: usize) -> Self {
        Cfg {
            num_terminals,
            num_nonterminals,
            productions: Vec::new(),
        }
    }

    /// Number of terminal symbols.
    pub fn num_terminals(&self) -> usize {
        self.num_terminals
    }

    /// Number of nonterminal symbols.
    pub fn num_nonterminals(&self) -> usize {
        self.num_nonterminals
    }

    /// Adds the production `lhs → rhs`.
    pub fn add_production(&mut self, lhs: usize, rhs: Vec<GrammarSymbol>) {
        assert!(lhs < self.num_nonterminals);
        for s in &rhs {
            match s {
                GrammarSymbol::Terminal(t) => assert!(*t < self.num_terminals),
                GrammarSymbol::Nonterminal(n) => assert!(*n < self.num_nonterminals),
            }
        }
        self.productions.push((lhs, rhs));
    }

    /// Converts the grammar into Chomsky normal form, returning
    /// `(unit-free binary rules, terminal rules, nullable_start)`:
    /// `binary[(B, C)]` is the set of `A` with `A → B C`, `terminal[t]` is
    /// the set of `A` with `A → t`, and `nullable_start` says whether the
    /// start symbol derives ε.
    fn to_cnf(&self) -> CnfGrammar {
        // Step 1: introduce fresh nonterminals for terminals inside long rules
        // and break long rules into binary chains. We work over an extended
        // nonterminal space.
        let mut next = self.num_nonterminals;
        let mut term_proxy: HashMap<usize, usize> = HashMap::new();
        let mut rules: Vec<(usize, Vec<usize>)> = Vec::new(); // all-nonterminal RHS
        let mut term_rules: Vec<(usize, usize)> = Vec::new(); // A → t
        let mut eps_rules: HashSet<usize> = HashSet::new(); // A → ε

        for (lhs, rhs) in &self.productions {
            if rhs.is_empty() {
                eps_rules.insert(*lhs);
                continue;
            }
            if rhs.len() == 1 {
                match rhs[0] {
                    GrammarSymbol::Terminal(t) => term_rules.push((*lhs, t)),
                    GrammarSymbol::Nonterminal(n) => rules.push((*lhs, vec![n])),
                }
                continue;
            }
            let mut nts: Vec<usize> = Vec::with_capacity(rhs.len());
            for s in rhs {
                match s {
                    GrammarSymbol::Nonterminal(n) => nts.push(*n),
                    GrammarSymbol::Terminal(t) => {
                        let proxy = *term_proxy.entry(*t).or_insert_with(|| {
                            let p = next;
                            next += 1;
                            p
                        });
                        nts.push(proxy);
                    }
                }
            }
            rules.push((*lhs, nts));
        }
        for (&t, &proxy) in &term_proxy {
            term_rules.push((proxy, t));
        }
        // Step 2: binarize
        let mut binary: Vec<(usize, usize, usize)> = Vec::new();
        let mut unit: Vec<(usize, usize)> = Vec::new();
        for (lhs, rhs) in rules {
            match rhs.len() {
                1 => unit.push((lhs, rhs[0])),
                2 => binary.push((lhs, rhs[0], rhs[1])),
                _ => {
                    let mut current = lhs;
                    for i in 0..rhs.len() - 2 {
                        let fresh = next;
                        next += 1;
                        binary.push((current, rhs[i], fresh));
                        current = fresh;
                    }
                    binary.push((current, rhs[rhs.len() - 2], rhs[rhs.len() - 1]));
                }
            }
        }
        // Step 3: nullable elimination (compute nullable set, expand binary
        // rules, and track whether the start symbol is nullable).
        let mut nullable: HashSet<usize> = eps_rules.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b, c) in &binary {
                if nullable.contains(&b) && nullable.contains(&c) && nullable.insert(a) {
                    changed = true;
                }
            }
            for &(a, b) in &unit {
                if nullable.contains(&b) && nullable.insert(a) {
                    changed = true;
                }
            }
        }
        let mut extra_units: Vec<(usize, usize)> = Vec::new();
        for &(a, b, c) in &binary {
            if nullable.contains(&c) {
                extra_units.push((a, b));
            }
            if nullable.contains(&b) {
                extra_units.push((a, c));
            }
        }
        let mut all_units: Vec<(usize, usize)> = unit;
        all_units.extend(extra_units);
        // Step 4: unit closure (A ⇒* B through unit rules)
        let total = next;
        let mut unit_reach: Vec<HashSet<usize>> = (0..total)
            .map(|a| {
                let mut s = HashSet::new();
                s.insert(a);
                s
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &all_units {
                let to_add: Vec<usize> = unit_reach[b].iter().copied().collect();
                for x in to_add {
                    if unit_reach[a].insert(x) {
                        changed = true;
                    }
                }
            }
        }
        // Final rule tables, folding unit closure into binary/terminal rules.
        let mut binary_map: HashMap<(usize, usize), HashSet<usize>> = HashMap::new();
        for a in 0..total {
            for b in unit_reach[a].iter().copied().collect::<Vec<_>>() {
                for &(x, y, z) in &binary {
                    if x == b {
                        binary_map.entry((y, z)).or_default().insert(a);
                    }
                }
            }
        }
        let mut terminal_map: Vec<HashSet<usize>> = vec![HashSet::new(); self.num_terminals];
        for a in 0..total {
            for b in unit_reach[a].iter().copied().collect::<Vec<_>>() {
                for &(x, t) in &term_rules {
                    if x == b {
                        terminal_map[t].insert(a);
                    }
                }
            }
        }
        CnfGrammar {
            binary: binary_map,
            terminal: terminal_map,
            start_nullable: nullable.contains(&0),
        }
    }

    /// CYK membership: `true` iff the start symbol derives `word`.
    /// `O(|word|³)` after a one-off CNF conversion.
    pub fn derives(&self, word: &[usize]) -> bool {
        let cnf = self.to_cnf();
        cnf.derives(word)
    }

    /// A grammar for the Dyck language of balanced brackets over one bracket
    /// pair, encoded with terminal 0 = open and terminal 1 = close.
    pub fn dyck_one_pair() -> Cfg {
        use GrammarSymbol::{Nonterminal as N, Terminal as T};
        let mut g = Cfg::new(2, 1);
        g.add_production(0, vec![]);
        g.add_production(0, vec![T(0), N(0), T(1), N(0)]);
        g
    }

    /// A grammar for words with equally many 0s and 1s.
    pub fn equal_counts() -> Cfg {
        use GrammarSymbol::{Nonterminal as N, Terminal as T};
        let mut g = Cfg::new(2, 1);
        g.add_production(0, vec![]);
        g.add_production(0, vec![T(0), N(0), T(1), N(0)]);
        g.add_production(0, vec![T(1), N(0), T(0), N(0)]);
        g
    }
}

/// A grammar in (weak) Chomsky normal form with unit and ε elimination
/// folded in.
struct CnfGrammar {
    binary: HashMap<(usize, usize), HashSet<usize>>,
    terminal: Vec<HashSet<usize>>,
    start_nullable: bool,
}

impl CnfGrammar {
    fn derives(&self, word: &[usize]) -> bool {
        let n = word.len();
        if n == 0 {
            return self.start_nullable;
        }
        // table[i][l] = set of nonterminals deriving word[i..i+l]
        let mut table: Vec<Vec<HashSet<usize>>> = vec![vec![HashSet::new(); n + 1]; n];
        for i in 0..n {
            table[i][1] = self.terminal[word[i]].clone();
        }
        for l in 2..=n {
            for i in 0..=n - l {
                let mut cell = HashSet::new();
                for split in 1..l {
                    let left = table[i][split].clone();
                    let right = table[i + split][l - split].clone();
                    for &b in &left {
                        for &c in &right {
                            if let Some(heads) = self.binary.get(&(b, c)) {
                                cell.extend(heads.iter().copied());
                            }
                        }
                    }
                }
                table[i][l] = cell;
            }
        }
        table[0][n].contains(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyck_membership() {
        let g = Cfg::dyck_one_pair();
        assert!(g.derives(&[]));
        assert!(g.derives(&[0, 1]));
        assert!(g.derives(&[0, 0, 1, 1, 0, 1]));
        assert!(!g.derives(&[0]));
        assert!(!g.derives(&[1, 0]));
        assert!(!g.derives(&[0, 1, 1]));
    }

    #[test]
    fn equal_counts_membership() {
        let g = Cfg::equal_counts();
        assert!(g.derives(&[]));
        assert!(g.derives(&[1, 0]));
        assert!(g.derives(&[1, 0, 0, 1]));
        assert!(g.derives(&[0, 0, 1, 1]));
        assert!(!g.derives(&[0, 0, 1]));
        assert!(!g.derives(&[1]));
    }

    #[test]
    fn anbn_grammar() {
        use GrammarSymbol::{Nonterminal as N, Terminal as T};
        let mut g = Cfg::new(2, 1);
        g.add_production(0, vec![]);
        g.add_production(0, vec![T(0), N(0), T(1)]);
        for n in 0..6 {
            let mut w = vec![0; n];
            w.extend(vec![1; n]);
            assert!(g.derives(&w), "a^{n} b^{n}");
        }
        assert!(!g.derives(&[0, 1, 0, 1]));
        assert!(!g.derives(&[0, 0, 1]));
    }

    #[test]
    fn unit_and_long_rules_are_handled() {
        use GrammarSymbol::{Nonterminal as N, Terminal as T};
        // S → A ; A → B ; B → a b a b (long rule with terminals)
        let mut g = Cfg::new(2, 3);
        g.add_production(0, vec![N(1)]);
        g.add_production(1, vec![N(2)]);
        g.add_production(2, vec![T(0), T(1), T(0), T(1)]);
        assert!(g.derives(&[0, 1, 0, 1]));
        assert!(!g.derives(&[0, 1]));
        assert!(!g.derives(&[]));
    }

    #[test]
    fn nullable_nonterminals_inside_rules() {
        use GrammarSymbol::{Nonterminal as N, Terminal as T};
        // S → A a A ; A → ε | a
        let mut g = Cfg::new(1, 2);
        g.add_production(0, vec![N(1), T(0), N(1)]);
        g.add_production(1, vec![]);
        g.add_production(1, vec![T(0)]);
        assert!(g.derives(&[0]));
        assert!(g.derives(&[0, 0]));
        assert!(g.derives(&[0, 0, 0]));
        assert!(!g.derives(&[]));
        assert!(!g.derives(&[0, 0, 0, 0]));
    }
}
