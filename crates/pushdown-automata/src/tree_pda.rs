//! Top-down pushdown tree automata over binary trees (Guessarian 1983),
//! the tree baseline of §4 of the paper.
//!
//! A configuration is a state plus a stack. A rule fires at a node: it reads
//! the node label and the top stack symbol and sends one configuration to
//! each child, replacing the popped symbol by a (possibly empty) string in
//! each child's copy of the stack — the same stack content can thus be
//! consumed along multiple branches, which is what makes membership
//! NP-complete and emptiness EXPTIME-complete for these machines (§4.3,
//! §4.4). Acceptance is by empty stack at every leaf.

use nested_words::{OrderedTree, Symbol};

/// A rule of a pushdown tree automaton: at a node labelled `label`, in state
/// `state`, with `pop` on top of the stack, send `children[i]` (a state and
/// a replacement string pushed in place of `pop`) to the `i`-th child. The
/// rule only applies to nodes whose arity equals `children.len()`.
#[derive(Debug, Clone)]
pub struct TreeRule {
    /// Current state.
    pub state: usize,
    /// Node label the rule reads.
    pub label: Symbol,
    /// Stack symbol popped by the rule.
    pub pop: usize,
    /// One `(state, pushed string)` pair per child; empty for leaves.
    pub children: Vec<(usize, Vec<usize>)>,
}

/// A nondeterministic top-down pushdown tree automaton over binary trees.
#[derive(Debug, Clone, Default)]
pub struct PushdownTreeAutomaton {
    num_states: usize,
    num_stack_symbols: usize,
    initial_state: usize,
    /// The initial stack content (bottom last).
    initial_stack: Vec<usize>,
    rules: Vec<TreeRule>,
}

impl PushdownTreeAutomaton {
    /// Creates an automaton with the given state and stack-symbol counts,
    /// starting in `initial_state` with `initial_stack` (top first).
    pub fn new(
        num_states: usize,
        num_stack_symbols: usize,
        initial_state: usize,
        initial_stack: Vec<usize>,
    ) -> Self {
        PushdownTreeAutomaton {
            num_states,
            num_stack_symbols,
            initial_state,
            initial_stack,
            rules: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of stack symbols.
    pub fn num_stack_symbols(&self) -> usize {
        self.num_stack_symbols
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: TreeRule) {
        assert!(rule.state < self.num_states);
        assert!(rule.pop < self.num_stack_symbols);
        self.rules.push(rule);
    }

    /// Returns `true` if the automaton accepts `tree` (empty stack at every
    /// leaf).
    pub fn accepts(&self, tree: &OrderedTree) -> bool {
        self.accepts_from(self.initial_state, &self.initial_stack, tree)
    }

    fn accepts_from(&self, state: usize, stack: &[usize], tree: &OrderedTree) -> bool {
        let OrderedTree::Node { label, children } = tree else {
            return false;
        };
        let Some((&top, rest)) = stack.split_first() else {
            return false;
        };
        for rule in &self.rules {
            if rule.state != state
                || rule.label != *label
                || rule.pop != top
                || rule.children.len() != children.len()
            {
                continue;
            }
            if children.is_empty() {
                // leaf: accept this branch iff the remaining stack is empty
                if rest.is_empty() {
                    return true;
                }
                continue;
            }
            let ok = rule
                .children
                .iter()
                .zip(children)
                .all(|((q, push), child)| {
                    let mut new_stack = push.clone();
                    new_stack.extend_from_slice(rest);
                    self.accepts_from(*q, &new_stack, child)
                });
            if ok {
                return true;
            }
        }
        false
    }

    /// A pushdown tree automaton for a context-free (and non-regular) tree
    /// language of *chains*: a unary chain of `n` `a`-nodes followed by a
    /// unary chain of `n + 1` `b`-nodes — the tree analogue of `aⁿbⁿ⁺¹`.
    ///
    /// Used by the expressiveness tests and by experiment E9.
    pub fn comb_language(a: Symbol, b: Symbol) -> PushdownTreeAutomaton {
        // stack symbols: 0 = ⊥ (bottom), 1 = counter
        // states: 0 = reading a-chain, 1 = reading b-chain
        let mut pda = PushdownTreeAutomaton::new(2, 2, 0, vec![0]);
        // a-node with one child: push a counter
        pda.add_rule(TreeRule {
            state: 0,
            label: a,
            pop: 0,
            children: vec![(0, vec![1, 0])],
        });
        pda.add_rule(TreeRule {
            state: 0,
            label: a,
            pop: 1,
            children: vec![(0, vec![1, 1])],
        });
        // switch to the b-chain: the first b consumes one counter
        pda.add_rule(TreeRule {
            state: 0,
            label: b,
            pop: 1,
            children: vec![(1, vec![])],
        });
        pda.add_rule(TreeRule {
            state: 1,
            label: b,
            pop: 1,
            children: vec![(1, vec![])],
        });
        // the last b pops the bottom marker at a leaf
        pda.add_rule(TreeRule {
            state: 1,
            label: b,
            pop: 0,
            children: vec![],
        });
        pda.add_rule(TreeRule {
            state: 0,
            label: b,
            pop: 0,
            children: vec![],
        });
        pda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::Alphabet;

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::ab();
        (ab.lookup("a").unwrap(), ab.lookup("b").unwrap())
    }

    /// Builds the chain tree a^n(b^m leafwards): n `a`-nodes then m `b`-nodes,
    /// all unary, ending in a `b`-leaf (m ≥ 1).
    fn chain(a: Symbol, b: Symbol, n: usize, m: usize) -> OrderedTree {
        assert!(m >= 1);
        let mut t = OrderedTree::leaf(b);
        for _ in 0..m - 1 {
            t = OrderedTree::node(b, vec![t]);
        }
        for _ in 0..n {
            t = OrderedTree::node(a, vec![t]);
        }
        t
    }

    #[test]
    fn comb_language_accepts_matching_lengths() {
        let (a, b) = syms();
        let pda = PushdownTreeAutomaton::comb_language(a, b);
        for n in 0..6 {
            assert!(pda.accepts(&chain(a, b, n, n + 1)), "n = {n}");
        }
    }

    #[test]
    fn comb_language_rejects_mismatched_lengths() {
        let (a, b) = syms();
        let pda = PushdownTreeAutomaton::comb_language(a, b);
        for (n, m) in [(1usize, 1usize), (2, 1), (3, 5), (4, 3), (0, 2), (2, 4)] {
            assert!(!pda.accepts(&chain(a, b, n, m)), "n = {n}, m = {m}");
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let (a, b) = syms();
        let pda = PushdownTreeAutomaton::comb_language(a, b);
        // a binary node has no rule
        let t = OrderedTree::node(a, vec![OrderedTree::leaf(b), OrderedTree::leaf(b)]);
        assert!(!pda.accepts(&t));
        // an a-leaf has no accepting rule
        assert!(!pda.accepts(&OrderedTree::leaf(a)));
        assert!(!pda.accepts(&OrderedTree::Empty));
    }

    #[test]
    fn branching_rules_copy_the_stack() {
        let (a, b) = syms();
        // language: a-root whose two children are both b-chains of length
        // equal to 1 + number of ... simply: a(bⁿ, bⁿ) where the same counter
        // stack is sent to both children — demonstrates stack duplication.
        let mut pda = PushdownTreeAutomaton::new(1, 2, 0, vec![1, 1, 0]);
        pda.add_rule(TreeRule {
            state: 0,
            label: a,
            pop: 1,
            children: vec![(0, vec![]), (0, vec![])],
        });
        pda.add_rule(TreeRule {
            state: 0,
            label: b,
            pop: 1,
            children: vec![(0, vec![])],
        });
        pda.add_rule(TreeRule {
            state: 0,
            label: b,
            pop: 0,
            children: vec![],
        });
        // initial stack has two counters: root a consumes one, each child
        // must then be a b-chain consuming one counter and the bottom marker:
        // b(b(leaf)) on both sides
        let good = OrderedTree::node(
            a,
            vec![
                OrderedTree::node(b, vec![OrderedTree::leaf(b)]),
                OrderedTree::node(b, vec![OrderedTree::leaf(b)]),
            ],
        );
        let bad = OrderedTree::node(
            a,
            vec![
                OrderedTree::node(b, vec![OrderedTree::leaf(b)]),
                OrderedTree::leaf(b),
            ],
        );
        assert!(pda.accepts(&good));
        assert!(!pda.accepts(&bad));
    }
}
