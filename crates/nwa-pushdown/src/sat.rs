//! The NP-hardness reduction of Theorem 10: CNF satisfiability reduces to
//! membership for pushdown nested word automata over a unary alphabet.
//!
//! Given a formula with `v` variables and `s` clauses, the automaton first
//! guesses a truth assignment with `v` ε-pushes; the input word is
//! `(〈a aᵛ a〉)ˢ`. At each call the whole stack is propagated along the
//! hierarchical edge, so every clause block receives its own copy of the
//! assignment; inside the `i`-th block the automaton pops the assignment and
//! checks that clause `i` is satisfied. The word is accepted iff the formula
//! is satisfiable.

use crate::automaton::{Pnwa, PnwaMode, BOTTOM};
use nested_words::{NestedWord, Symbol, TaggedSymbol};

/// A CNF formula: each clause is a list of literals, a literal is
/// `(variable index, polarity)` with `true` meaning positive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<(usize, bool)>>,
}

impl CnfFormula {
    /// Evaluates the formula under an assignment (`assignment[i]` = value of
    /// variable `i`).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|&(var, pol)| assignment[var] == pol))
    }

    /// Brute-force satisfiability (for cross-validation in tests and
    /// benches; exponential in the number of variables).
    pub fn brute_force_sat(&self) -> bool {
        (0..(1u64 << self.num_vars)).any(|mask| {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| mask & (1 << i) != 0).collect();
            self.eval(&assignment)
        })
    }
}

/// The input word of the reduction: `(〈a aᵛ a〉)ˢ` over the unary alphabet
/// `{a}`, one rooted block per clause.
pub fn reduction_word(formula: &CnfFormula) -> NestedWord {
    let a = Symbol(0);
    let mut tagged = Vec::new();
    for _ in 0..formula.clauses.len() {
        tagged.push(TaggedSymbol::Call(a));
        for _ in 0..formula.num_vars {
            tagged.push(TaggedSymbol::Internal(a));
        }
        tagged.push(TaggedSymbol::Return(a));
    }
    NestedWord::from_tagged(&tagged)
}

/// The pushdown nested word automaton of the reduction. Membership of
/// [`reduction_word`] in its language is equivalent to satisfiability of the
/// formula.
pub fn reduction_automaton(formula: &CnfFormula) -> Pnwa {
    let v = formula.num_vars;
    let s = formula.clauses.len();
    let a = Symbol(0);
    // stack symbols: 0 = ⊥, 1 = "variable false", 2 = "variable true"
    // linear states:
    //   guess(j)   j in 0..=v   : guessing the assignment (j variables pushed)
    //   clause(i)  i in 0..=s   : about to read block i (outer level)
    // hierarchical states (inside block i, having read k variable positions,
    // with "satisfied" flag): body(i, k, sat) plus a drained state per block.
    let guess = |j: usize| j;
    let clause = |i: usize| v + 1 + i;
    let body = |i: usize, k: usize, sat: usize| v + s + 2 + (i * (v + 1) + k) * 2 + sat;
    let drain = |i: usize| v + s + 2 + s * (v + 1) * 2 + i;
    let total = reduction_state_count(formula);
    let mut p = Pnwa::new(total, 1, 3);
    for i in 0..s {
        for k in 0..=v {
            for sat in 0..2 {
                p.set_mode(body(i, k, sat), PnwaMode::Hierarchical);
            }
        }
        for k in 0..v {
            for sat in 0..2 {
                p.set_mode(body_read(i, k, sat, v, s), PnwaMode::Hierarchical);
            }
        }
        p.set_mode(drain(i), PnwaMode::Hierarchical);
    }
    p.add_initial(guess(0));
    // guess the assignment: push value symbols for variables v-1, …, 0 so
    // that variable 0 ends up on top
    for j in 0..v {
        p.add_push(guess(j), guess(j + 1), 1);
        p.add_push(guess(j), guess(j + 1), 2);
    }
    // after guessing, move to the clause loop (ε-free: guess(v) == clause
    // loop entry handled by using guess(v) as clause(0) via a pop-less hop)
    // — we simply treat guess(v) as the state before block 0 by adding the
    // same call transitions to it as to clause(0).
    let outer_entry = |i: usize| if i == 0 { guess(v) } else { clause(i) };
    for (i, cl) in formula.clauses.iter().enumerate() {
        // call into block i: the body starts in body(i, 0, unsat); the
        // continuation (hierarchical edge) is the linear state clause(i+1)
        p.add_call(outer_entry(i), a, body(i, 0, 0), clause(i + 1));
        // inside the block: reading the k-th internal position pops the value
        // of variable k and updates the satisfied flag
        for k in 0..v {
            for sat in 0..2 {
                // value false (symbol 1) satisfies a negative literal
                let sat_after_false = sat == 1 || cl.iter().any(|&(var, pol)| var == k && !pol);
                let sat_after_true = sat == 1 || cl.iter().any(|&(var, pol)| var == k && pol);
                // pop then read: model as read first into an intermediate?
                // Simpler: pop before reading is not possible (pops are
                // ε-moves), so pop *after* reading the internal position:
                // state body(i,k,sat) reads `a` into a "pending pop" encoded
                // by reusing body(i,k+1,·) reached through a pop transition.
                // We instead pop first (ε), then read:
                p.add_pop(
                    body(i, k, sat),
                    1,
                    body_read(i, k, usize::from(sat_after_false), v, s),
                );
                p.add_pop(
                    body(i, k, sat),
                    2,
                    body_read(i, k, usize::from(sat_after_true), v, s),
                );
            }
        }
        // after v variable positions the block's body ends; if the clause is
        // satisfied the body may pop ⊥ (emptying its leaf configuration)
        p.add_pop(body(i, v, 1), BOTTOM, drain(i));
        // the return transition continuing after block i fires from the
        // hierarchical edge state clause(i+1), which is linear — see the call
        // transition above: case (b) of the run definition applies with the
        // hierarchical configuration (clause(i+1), stack before the call).
        p.add_return(clause(i + 1), a, clause(i + 1));
    }
    // the "read" intermediate states double as the next body states; see
    // body_read below — reading the internal position from the post-pop state
    for i in 0..s {
        for k in 0..v {
            for sat in 0..2 {
                p.add_internal(body_read(i, k, sat, v, s), a, body(i, k + 1, sat));
            }
        }
    }
    // after the last block, the outer run discards its copy of the guessed
    // assignment, pops ⊥ and accepts
    p.add_pop(clause(s), 1, clause(s));
    p.add_pop(clause(s), 2, clause(s));
    p.add_pop(clause(s), BOTTOM, clause(s));
    // formulas with zero clauses accept the empty word
    if s == 0 {
        p.add_pop(guess(0), BOTTOM, guess(0));
    }
    p
}

/// Intermediate "value popped, position not yet read" states; they live in
/// the same index space as the body states of the *next* position with a
/// shifted offset, so the automaton stays `O((v + s) + s·v)` states.
fn body_read(i: usize, k: usize, sat: usize, v: usize, s: usize) -> usize {
    // reuse the body(i, k, sat) numbering shifted by the drain block
    let base = v + s + 2 + s * (v + 1) * 2 + s;
    base + (i * v + k) * 2 + sat
}

/// Total number of states used by [`reduction_automaton`] (for reporting in
/// the benchmarks).
pub fn reduction_state_count(formula: &CnfFormula) -> usize {
    let v = formula.num_vars;
    let s = formula.clauses.len();
    v + s + 2 + s * (v + 1) * 2 + s + s * v * 2
}

/// Decides satisfiability of `formula` through the reduction: builds the
/// automaton and the word and runs PNWA membership.
pub fn sat_via_membership(formula: &CnfFormula) -> bool {
    let p = reduction_automaton(formula);
    let w = reduction_word(formula);
    p.accepts_bounded(&w, formula.num_vars + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formula(num_vars: usize, clauses: &[&[(usize, bool)]]) -> CnfFormula {
        CnfFormula {
            num_vars,
            clauses: clauses.iter().map(|c| c.to_vec()).collect(),
        }
    }

    #[test]
    fn satisfiable_formulas_are_accepted() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1)  — satisfiable with x1 = true
        let f = formula(2, &[&[(0, true), (1, true)], &[(0, false), (1, true)]]);
        assert!(f.brute_force_sat());
        assert!(sat_via_membership(&f));
    }

    #[test]
    fn unsatisfiable_formulas_are_rejected() {
        // x0 ∧ ¬x0
        let f = formula(1, &[&[(0, true)], &[(0, false)]]);
        assert!(!f.brute_force_sat());
        assert!(!sat_via_membership(&f));
    }

    #[test]
    fn reduction_matches_brute_force_on_random_formulas() {
        use nested_words::rng::Prng;
        let mut rng = Prng::new(7);
        for _ in 0..12 {
            let num_vars = 2 + rng.below(3);
            let num_clauses = 1 + rng.below(4);
            let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.below(num_vars), rng.bool(0.5)))
                        .collect()
                })
                .collect();
            let f = CnfFormula { num_vars, clauses };
            assert_eq!(sat_via_membership(&f), f.brute_force_sat(), "formula {f:?}");
        }
    }

    #[test]
    fn reduction_word_shape() {
        let f = formula(3, &[&[(0, true)], &[(1, false)]]);
        let w = reduction_word(&f);
        assert_eq!(w.len(), 2 * (3 + 2));
        assert!(w.is_well_matched());
        assert_eq!(w.depth(), 1);
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let f = formula(2, &[]);
        assert!(f.brute_force_sat());
        assert!(sat_via_membership(&f));
    }
}
