//! # nwa-pushdown
//!
//! Pushdown nested word automata (§4 of "Marrying Words and Trees",
//! PODS 2007): nondeterministic joinless nested word automata extended with
//! a stack, accepting by empty stack at the end of the word and at every
//! leaf configuration.
//!
//! The crate provides
//!
//! * the automaton model and its run semantics ([`automaton`]),
//! * membership checking (NP-complete, Theorem 10) including the reduction
//!   from CNF satisfiability used in the hardness proof ([`automaton`],
//!   [`sat`]),
//! * emptiness checking by saturation of summaries `R(q, U, q')`
//!   (EXPTIME-complete, Theorem 11) ([`emptiness`]),
//! * the expressiveness embeddings and separations of §4.2: context-free
//!   word languages (Lemma 4), context-free tree languages (Lemma 5) and the
//!   equal-count language of Theorem 9 that is a pushdown nested word
//!   language but not a context-free tree language ([`separations`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod automaton;
pub mod emptiness;
pub mod sat;
pub mod separations;

pub use automaton::{Pnwa, PnwaMode};
pub use emptiness::is_empty;
