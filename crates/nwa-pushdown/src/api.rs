//! Implementations of the [`automata_core`] trait vocabulary for pushdown
//! nested word automata.
//!
//! Only membership and emptiness are implemented: pushdown nested word
//! languages are not closed under intersection or complement (like their
//! context-free cousins), so [`automata_core::BooleanOps`] and
//! [`automata_core::Decide`] have no sound instance for [`Pnwa`].

use crate::automaton::Pnwa;
use crate::emptiness;
use automata_core::{Acceptor, Emptiness};
use nested_words::NestedWord;

impl Acceptor<NestedWord> for Pnwa {
    fn accepts(&self, input: &NestedWord) -> bool {
        Pnwa::accepts(self, input)
    }
}

impl Emptiness for Pnwa {
    /// Emptiness by saturation of summaries `R(q, U, q')`
    /// (EXPTIME-complete, Theorem 11).
    fn is_empty(&self) -> bool {
        emptiness::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use automata_core::query;
    use nested_words::{NestedWord, Symbol};

    #[test]
    fn query_verbs_work_on_pnwas() {
        let p = crate::separations::equal_count_pnwa();
        assert!(!query::is_empty(&p));
        let a = Symbol(0);
        let b = Symbol(1);
        let member = NestedWord::flat(vec![a, b]);
        let nonmember = NestedWord::flat(vec![a, a, b]);
        assert_eq!(
            query::contains(&p, &member),
            crate::separations::equal_count_member(&member)
        );
        assert_eq!(
            query::contains(&p, &nonmember),
            crate::separations::equal_count_member(&nonmember)
        );
    }
}
