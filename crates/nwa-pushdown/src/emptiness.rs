//! Emptiness for pushdown nested word automata (§4.4, Theorem 11).
//!
//! The procedure saturates summaries `R(q, U, q')`: there is a nested word
//! and a run over it whose start configuration is `(q, ε)`, whose end
//! configuration is `(q', ε)`, and whose leaf configurations carry states
//! from `U` (with empty stacks). The rules below are exactly the paper's:
//! internal / linear-call / linear-return base cases, hierarchical
//! call-returns, the push–pop rule that matches a push with pops at the end
//! and at every leaf, and linear / hierarchical concatenation. The language
//! is non-empty iff `R(q₀, U, q_f)` holds for an initial `q₀`, some
//! `U ⊆ F` and `q_f ∈ F`, where `F` is the set of states that can pop ⊥.

use crate::automaton::{Pnwa, BOTTOM};
use std::collections::BTreeSet;

type Summary = (usize, BTreeSet<usize>, usize);

/// Computes the full summary relation `R ⊆ Q × 2^{Qh} × Q` by saturation.
/// Worst-case exponential in the number of hierarchical states, as Theorem
/// 11 predicts (emptiness is EXPTIME-complete).
pub fn summaries(a: &Pnwa) -> BTreeSet<Summary> {
    let mut r: BTreeSet<Summary> = BTreeSet::new();

    // Base rules.
    for &(q, _sym, t) in a.internals() {
        r.insert((q, BTreeSet::new(), t));
    }
    for &(q, _sym, ql, qh) in a.calls() {
        if a.is_linear(q) {
            // linear call: as a summary over a pending call only the linear
            // successor matters (matched calls in linear mode arise from this
            // rule concatenated with a linear return)
            r.insert((q, BTreeSet::new(), ql));
        }
        if !a.is_linear(ql) {
            // hierarchical call-return: the body becomes a leaf obligation
            for &(rq, _rsym, t) in a.returns() {
                if rq == qh {
                    r.insert((q, BTreeSet::from([ql]), t));
                }
            }
        }
    }
    for &(q, _sym, t) in a.returns() {
        if a.is_linear(q) {
            r.insert((q, BTreeSet::new(), t));
        }
    }

    // Saturation.
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot: Vec<Summary> = r.iter().cloned().collect();

        // Push–pop rule.
        for (q, u, q2) in &snapshot {
            for &(q1, qpush, gamma) in a.pushes() {
                if qpush != *q {
                    continue;
                }
                for &(qpop, g2, q3) in a.pops() {
                    if g2 != gamma || qpop != *q2 {
                        continue;
                    }
                    // every leaf state must pop gamma; enumerate the possible
                    // successor sets (exact but exponential in |U|)
                    let options: Vec<Vec<usize>> = u
                        .iter()
                        .map(|&leaf| {
                            a.pops()
                                .iter()
                                .filter(|&&(p, g, _)| p == leaf && g == gamma)
                                .map(|&(_, _, t)| t)
                                .collect::<Vec<usize>>()
                        })
                        .collect();
                    if options.iter().any(|o| o.is_empty()) {
                        continue;
                    }
                    for combo in cartesian(&options) {
                        let u2: BTreeSet<usize> = combo.into_iter().collect();
                        if r.insert((q1, u2, q3)) {
                            changed = true;
                        }
                    }
                }
            }
        }

        // Linear concatenation.
        let snapshot: Vec<Summary> = r.iter().cloned().collect();
        for (q, u, q1) in &snapshot {
            for (q2, u2, q3) in &snapshot {
                if q1 == q2 {
                    let mut u3 = u.clone();
                    u3.extend(u2.iter().copied());
                    if r.insert((*q, u3, *q3)) {
                        changed = true;
                    }
                }
            }
        }

        // Hierarchical concatenation.
        let snapshot: Vec<Summary> = r.iter().cloned().collect();
        for (q, u, q1) in &snapshot {
            for leaf in u.iter().copied().collect::<Vec<_>>() {
                for (q2, u2, v) in &snapshot {
                    if *q2 != leaf {
                        continue;
                    }
                    let mut u3: BTreeSet<usize> =
                        u.iter().copied().filter(|&x| x != leaf).collect();
                    u3.extend(u2.iter().copied());
                    u3.insert(*v);
                    if r.insert((*q, u3, *q1)) {
                        changed = true;
                    }
                }
            }
        }
    }
    r
}

fn cartesian(options: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for opts in options {
        let mut next = Vec::new();
        for prefix in &out {
            for &o in opts {
                let mut p = prefix.clone();
                p.push(o);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Emptiness check for pushdown nested word automata (Theorem 11).
pub fn is_empty(a: &Pnwa) -> bool {
    // F = states from which ⊥ can be popped
    let final_states: BTreeSet<usize> = a
        .pops()
        .iter()
        .filter(|&&(_, gamma, _)| gamma == BOTTOM)
        .map(|&(q, _, _)| q)
        .collect();
    let r = summaries(a);
    // also allow the trivial run over the empty word: R(q0, ∅, q0) implicitly
    for q0 in a.initial_states() {
        if final_states.contains(&q0) {
            return false;
        }
    }
    !r.iter().any(|(q, u, qf)| {
        a.initial_states().any(|i| i == *q)
            && final_states.contains(qf)
            && u.iter().all(|x| final_states.contains(x))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::PnwaMode;
    use nested_words::Symbol;

    #[test]
    fn automaton_without_bottom_pop_is_empty() {
        let mut p = Pnwa::new(1, 1, 1);
        p.add_initial(0);
        p.add_internal(0, Symbol(0), 0);
        assert!(is_empty(&p));
    }

    #[test]
    fn automaton_accepting_empty_word_is_nonempty() {
        let mut p = Pnwa::new(1, 1, 1);
        p.add_initial(0);
        p.add_pop(0, BOTTOM, 0);
        assert!(!is_empty(&p));
    }

    #[test]
    fn word_language_anbn_is_nonempty() {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut p = Pnwa::new(4, 2, 2);
        p.add_initial(0);
        p.add_internal(0, a, 1);
        p.add_push(1, 0, 1);
        p.add_internal(0, b, 2);
        p.add_internal(3, b, 2);
        p.add_pop(2, 1, 3);
        p.add_pop(0, BOTTOM, 0);
        p.add_pop(3, BOTTOM, 3);
        assert!(!is_empty(&p));
    }

    #[test]
    fn unmatchable_push_makes_language_empty() {
        // the only way to reach the ⊥-popping state requires popping a
        // symbol that is never pushed
        let a = Symbol(0);
        let mut p = Pnwa::new(3, 1, 3);
        p.add_initial(0);
        p.add_internal(0, a, 1);
        p.add_pop(1, 2, 2); // stack symbol 2 is never pushed
        p.add_pop(2, BOTTOM, 2);
        assert!(is_empty(&p));
        // pushing it first makes the language non-empty
        p.add_push(0, 0, 2);
        assert!(!is_empty(&p));
    }

    #[test]
    fn hierarchical_leaf_obligations_are_checked() {
        let a = Symbol(0);
        // <a a> with a hierarchical body state that cannot pop ⊥: empty.
        let mut p = Pnwa::new(3, 1, 2);
        p.set_mode(1, PnwaMode::Hierarchical);
        p.add_initial(0);
        p.add_call(0, a, 1, 2);
        p.add_return(2, a, 2);
        p.add_pop(2, BOTTOM, 2);
        assert!(is_empty(&p));
        // allowing the body to pop ⊥ makes it non-empty
        p.add_pop(1, BOTTOM, 1);
        assert!(!is_empty(&p));
    }

    #[test]
    fn summaries_contain_base_cases() {
        let a = Symbol(0);
        let mut p = Pnwa::new(2, 1, 1);
        p.add_initial(0);
        p.add_internal(0, a, 1);
        let r = summaries(&p);
        assert!(r.contains(&(0, BTreeSet::new(), 1)));
    }
}
