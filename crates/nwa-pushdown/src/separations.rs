//! Expressiveness results of §4.2: pushdown nested word automata subsume
//! both context-free word languages (Lemma 4) and context-free tree
//! languages (Lemma 5), and are strictly more expressive than both
//! (Theorem 9, Figure 2).

use crate::automaton::{Pnwa, BOTTOM};
use nested_words::{NestedWord, Symbol};

const A: Symbol = Symbol(0);
const B: Symbol = Symbol(1);

/// The Theorem 9 separation language: nested words over {a, b} with equally
/// many `a`-labelled and `b`-labelled positions (counting calls, internals
/// and returns alike). A context-free *word* requirement that is **not** a
/// context-free tree language — the paper's Figure 2 pumping argument.
pub fn equal_count_member(n: &NestedWord) -> bool {
    n.count_symbol(A) == n.count_symbol(B)
}

/// A pushdown NWA (all states linear, i.e. essentially a classical pushdown
/// word automaton — Lemma 4) accepting the equal-count language of
/// Theorem 9.
pub fn equal_count_pnwa() -> Pnwa {
    // stack symbols: 0 = ⊥, 1 = surplus of a, 2 = surplus of b
    // states: 0 = ready to read, 1 = "just read a", 2 = "just read b",
    // 3 = finished (popping ⊥ moves here; no input transitions leave it, so
    // the stack cannot be emptied prematurely)
    let mut p = Pnwa::new(4, 2, 3);
    p.add_initial(0);
    for (sym, state) in [(A, 1usize), (B, 2usize)] {
        p.add_internal(0, sym, state);
        p.add_call(0, sym, state, 0);
        p.add_return(0, sym, state);
    }
    // after reading an a: either cancel a surplus b or push a surplus a
    p.add_pop(1, 2, 0);
    p.add_push(1, 0, 1);
    // ...but pushing onto ⊥ must also be possible when no surplus exists;
    // the push transition above is unconditional, which is exactly that.
    // after reading a b: symmetrically
    p.add_pop(2, 1, 0);
    p.add_push(2, 0, 2);
    // accept: balanced means only ⊥ remains
    p.add_pop(0, BOTTOM, 3);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::Alphabet;

    #[test]
    fn equal_count_pnwa_matches_predicate() {
        let p = equal_count_pnwa();
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 12,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..60 {
            let w = random_nested_word(&ab, cfg, seed);
            assert_eq!(p.accepts(&w), equal_count_member(&w), "seed {seed}");
        }
    }

    #[test]
    fn equal_count_pnwa_hand_picked() {
        let p = equal_count_pnwa();
        let mut ab = Alphabet::ab();
        for (text, expect) in [
            ("", true),
            ("a b", true),
            ("<a b>", true),
            ("a a b", false),
            ("<a <b a> b>", true),
            ("<a <a a> a>", false),
            ("b a a b b a", true),
        ] {
            let w = nested_words::tagged::parse_nested_word(text, &mut ab).unwrap();
            assert_eq!(p.accepts(&w), expect, "word `{text}`");
        }
    }

    #[test]
    fn equal_count_is_not_count_of_positions() {
        // sanity for the predicate itself
        let mut ab = Alphabet::ab();
        let w = nested_words::tagged::parse_nested_word("<a a> <b b>", &mut ab).unwrap();
        assert!(equal_count_member(&w));
    }
}
