//! Pushdown nested word automata: model and membership (§4.1, §4.3).

use nested_words::{NestedWord, PositionKind, Symbol};
use std::collections::BTreeSet;

/// Mode of a PNWA state: linear (word-automaton-like) or hierarchical
/// (top-down-tree-automaton-like). See §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PnwaMode {
    /// A linear state (Ql).
    Linear,
    /// A hierarchical state (Qh).
    Hierarchical,
}

/// A configuration: a state together with a stack (top first). The bottom
/// symbol ⊥ is stack symbol `0`.
pub type Config = (usize, Vec<usize>);

/// A pushdown nested word automaton (§4.1): a nondeterministic joinless NWA
/// whose ε-moves push and pop a stack; acceptance is by empty stack in the
/// end configuration and in every leaf configuration.
#[derive(Debug, Clone, Default)]
pub struct Pnwa {
    num_states: usize,
    sigma: usize,
    num_stack_symbols: usize,
    linear: Vec<bool>,
    initial: BTreeSet<usize>,
    /// Call transitions `(q, a, q_linear, q_hier)`.
    calls: Vec<(usize, Symbol, usize, usize)>,
    /// Internal transitions `(q, a, q')`.
    internals: Vec<(usize, Symbol, usize)>,
    /// Return transitions `(q, a, q')` (joinless: a single source state).
    returns: Vec<(usize, Symbol, usize)>,
    /// Push transitions `(q, q', γ)` with `γ ≠ ⊥`.
    pushes: Vec<(usize, usize, usize)>,
    /// Pop transitions `(q, γ, q')`.
    pops: Vec<(usize, usize, usize)>,
}

/// The bottom-of-stack symbol ⊥.
pub const BOTTOM: usize = 0;

impl Pnwa {
    /// Creates a PNWA with `num_states` states (all linear by default), an
    /// alphabet of `sigma` symbols and `num_stack_symbols` stack symbols
    /// (symbol 0 is ⊥).
    pub fn new(num_states: usize, sigma: usize, num_stack_symbols: usize) -> Self {
        assert!(num_stack_symbols >= 1, "need at least the bottom symbol");
        Pnwa {
            num_states,
            sigma,
            num_stack_symbols,
            linear: vec![true; num_states],
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of stack symbols (including ⊥).
    pub fn num_stack_symbols(&self) -> usize {
        self.num_stack_symbols
    }

    /// Sets the mode of a state.
    pub fn set_mode(&mut self, q: usize, mode: PnwaMode) {
        self.linear[q] = mode == PnwaMode::Linear;
    }

    /// Returns `true` if `q` is a linear state.
    pub fn is_linear(&self, q: usize) -> bool {
        self.linear[q]
    }

    /// Marks a state as initial.
    pub fn add_initial(&mut self, q: usize) {
        self.initial.insert(q);
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.initial.iter().copied()
    }

    /// Adds a call transition.
    pub fn add_call(&mut self, q: usize, a: Symbol, linear_succ: usize, hier: usize) {
        self.calls.push((q, a, linear_succ, hier));
    }

    /// Adds an internal transition.
    pub fn add_internal(&mut self, q: usize, a: Symbol, target: usize) {
        self.internals.push((q, a, target));
    }

    /// Adds a return transition.
    pub fn add_return(&mut self, q: usize, a: Symbol, target: usize) {
        self.returns.push((q, a, target));
    }

    /// Adds a push ε-transition `q → q'` pushing `γ` (`γ ≠ ⊥`).
    pub fn add_push(&mut self, q: usize, target: usize, gamma: usize) {
        assert_ne!(gamma, BOTTOM, "⊥ cannot be pushed");
        assert!(gamma < self.num_stack_symbols);
        self.pushes.push((q, target, gamma));
    }

    /// Adds a pop ε-transition `q → q'` popping `γ`.
    pub fn add_pop(&mut self, q: usize, gamma: usize, target: usize) {
        assert!(gamma < self.num_stack_symbols);
        self.pops.push((q, gamma, target));
    }

    /// Read access to the transition relations (used by the emptiness
    /// procedure).
    pub fn calls(&self) -> &[(usize, Symbol, usize, usize)] {
        &self.calls
    }
    /// Internal transitions.
    pub fn internals(&self) -> &[(usize, Symbol, usize)] {
        &self.internals
    }
    /// Return transitions.
    pub fn returns(&self) -> &[(usize, Symbol, usize)] {
        &self.returns
    }
    /// Push transitions.
    pub fn pushes(&self) -> &[(usize, usize, usize)] {
        &self.pushes
    }
    /// Pop transitions.
    pub fn pops(&self) -> &[(usize, usize, usize)] {
        &self.pops
    }

    /// ε-closure of a set of configurations under push/pop moves, bounded by
    /// `max_stack` stack symbols.
    fn closure(&self, configs: &BTreeSet<Config>, max_stack: usize) -> BTreeSet<Config> {
        let mut out = configs.clone();
        let mut frontier: Vec<Config> = configs.iter().cloned().collect();
        while let Some((q, stack)) = frontier.pop() {
            for &(p, t, gamma) in &self.pushes {
                if p == q && stack.len() < max_stack {
                    let mut s2 = Vec::with_capacity(stack.len() + 1);
                    s2.push(gamma);
                    s2.extend_from_slice(&stack);
                    let c = (t, s2);
                    if out.insert(c.clone()) {
                        frontier.push(c);
                    }
                }
            }
            if let Some((&top, rest)) = stack.split_first() {
                for &(p, gamma, t) in &self.pops {
                    if p == q && gamma == top {
                        let c = (t, rest.to_vec());
                        if out.insert(c.clone()) {
                            frontier.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    /// Membership test: does the automaton accept `word`?
    ///
    /// The search explores all runs whose stacks stay below `max_stack`
    /// symbols; membership is NP-complete (Theorem 10), so the procedure is
    /// worst-case exponential in the automaton, but the certificate bound of
    /// the theorem means `max_stack = |word| + |Q| + 1` suffices for the
    /// languages built in this crate.
    pub fn accepts_bounded(&self, word: &NestedWord, max_stack: usize) -> bool {
        let init: BTreeSet<Config> = self.initial.iter().map(|&q| (q, vec![BOTTOM])).collect();
        let finals = self.eval(
            word,
            0,
            word.len(),
            &self.closure(&init, max_stack),
            max_stack,
        );
        finals.iter().any(|(_, stack)| stack.is_empty())
    }

    /// Membership with the default stack bound `|word| + |Q| + 2`.
    pub fn accepts(&self, word: &NestedWord) -> bool {
        self.accepts_bounded(word, word.len() + self.num_states + 2)
    }

    /// Evaluates the segment `[lo, hi)` of the word from a set of (already
    /// ε-closed) configurations, returning the ε-closed configurations at
    /// `hi`. Leaf-configuration emptiness is enforced along the way.
    fn eval(
        &self,
        word: &NestedWord,
        lo: usize,
        hi: usize,
        start: &BTreeSet<Config>,
        max_stack: usize,
    ) -> BTreeSet<Config> {
        let mut configs = start.clone();
        let mut i = lo;
        while i < hi {
            if configs.is_empty() {
                return configs;
            }
            let a = word.symbol(i);
            let mut next: BTreeSet<Config> = BTreeSet::new();
            match word.kind(i) {
                PositionKind::Internal => {
                    for (q, stack) in &configs {
                        for &(p, sym, t) in &self.internals {
                            if p == *q && sym == a {
                                next.insert((t, stack.clone()));
                            }
                        }
                    }
                    i += 1;
                }
                PositionKind::Call => match word.return_successor(i) {
                    Some(r) if r < hi => {
                        let ret_sym = word.symbol(r);
                        for (q, stack) in &configs {
                            for &(p, sym, ql, qh) in &self.calls {
                                if p != *q || sym != a {
                                    continue;
                                }
                                let body_start: BTreeSet<Config> =
                                    self.closure(&BTreeSet::from([(ql, stack.clone())]), max_stack);
                                let body_end = self.eval(word, i + 1, r, &body_start, max_stack);
                                for (e, beta) in &body_end {
                                    if self.linear[*e] {
                                        // case (a): the hierarchical edge must
                                        // carry an initial state and the run
                                        // follows the linear configuration
                                        if self.initial.contains(&qh) {
                                            for &(rq, rsym, t) in &self.returns {
                                                if rq == *e && rsym == ret_sym {
                                                    next.insert((t, beta.clone()));
                                                }
                                            }
                                        }
                                    } else {
                                        // case (b): the body end is a leaf
                                        // configuration and must have an empty
                                        // stack; the run continues from the
                                        // hierarchical configuration (qh, stack)
                                        if beta.is_empty() {
                                            for &(rq, rsym, t) in &self.returns {
                                                if rq == qh && rsym == ret_sym {
                                                    next.insert((t, stack.clone()));
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        i = r + 1;
                    }
                    _ => {
                        // pending call: only the linear successor continues
                        for (q, stack) in &configs {
                            for &(p, sym, ql, _qh) in &self.calls {
                                if p == *q && sym == a {
                                    next.insert((ql, stack.clone()));
                                }
                            }
                        }
                        i += 1;
                    }
                },
                PositionKind::Return => {
                    // pending return: the hierarchical edge carries the default
                    // configuration (an initial state with ⊥)
                    for (q, stack) in &configs {
                        if self.linear[*q] {
                            for &(rq, rsym, t) in &self.returns {
                                if rq == *q && rsym == a {
                                    next.insert((t, stack.clone()));
                                }
                            }
                        } else if stack.is_empty() {
                            // leaf configuration; continue from the default
                            for &q0 in &self.initial {
                                for &(rq, rsym, t) in &self.returns {
                                    if rq == q0 && rsym == a {
                                        next.insert((t, vec![BOTTOM]));
                                    }
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
            configs = self.closure(&next, max_stack);
        }
        configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// A PNWA accepting all nested words over {a,b} (one linear state that
    /// pops ⊥ at will).
    fn universal() -> Pnwa {
        let mut p = Pnwa::new(1, 2, 1);
        p.add_initial(0);
        for s in [Symbol(0), Symbol(1)] {
            p.add_internal(0, s, 0);
            p.add_call(0, s, 0, 0);
            p.add_return(0, s, 0);
        }
        p.add_pop(0, BOTTOM, 0);
        p
    }

    #[test]
    fn universal_automaton_accepts_everything() {
        let mut ab = Alphabet::ab();
        let p = universal();
        for s in ["", "a b", "<a a>", "<a <b b> a>", "<a", "b>", "<a b> a"] {
            let w = parse(&mut ab, s);
            assert!(p.accepts(&w), "word `{s}`");
        }
    }

    #[test]
    fn empty_stack_acceptance_is_required() {
        // same as universal but without the ⊥ pop: nothing is accepted
        let mut p = Pnwa::new(1, 2, 1);
        p.add_initial(0);
        for s in [Symbol(0), Symbol(1)] {
            p.add_internal(0, s, 0);
        }
        let mut ab = Alphabet::ab();
        assert!(!p.accepts(&parse(&mut ab, "a")));
        assert!(!p.accepts(&NestedWord::empty()));
    }

    /// A PNWA for the context-free word language { aⁿ bⁿ : n ≥ 0 } read as
    /// internal positions (all states linear) — Lemma 4 in miniature.
    fn anbn() -> Pnwa {
        let a = Symbol(0);
        let b = Symbol(1);
        // states: 0 = reading a's, 1 = push pending, 2 = pop pending,
        // 3 = reading b's, 4 = finished (no outgoing input transitions, so
        // popping ⊥ prematurely cannot be followed by more input)
        // stack: 1 = counter
        let mut p = Pnwa::new(5, 2, 2);
        p.add_initial(0);
        // read a, then push a counter (ε), back to state 0
        p.add_internal(0, a, 1);
        p.add_push(1, 0, 1);
        // switch to b's: read b, then pop a counter
        p.add_internal(0, b, 2);
        p.add_internal(3, b, 2);
        p.add_pop(2, 1, 3);
        // finish: pop ⊥ from states 0 (n = 0) or 3 into the final state
        p.add_pop(0, BOTTOM, 4);
        p.add_pop(3, BOTTOM, 4);
        p
    }

    #[test]
    fn context_free_word_language_anbn() {
        let p = anbn();
        let a = Symbol(0);
        let b = Symbol(1);
        for n in 0..6usize {
            let mut syms = vec![a; n];
            syms.extend(vec![b; n]);
            let w = NestedWord::flat(syms);
            assert!(p.accepts(&w), "n = {n}");
        }
        for (na, nb) in [(1usize, 0usize), (0, 1), (2, 3), (3, 2), (1, 2)] {
            let mut syms = vec![a; na];
            syms.extend(vec![b; nb]);
            let w = NestedWord::flat(syms);
            assert!(!p.accepts(&w), "a^{na} b^{nb}");
        }
        // out-of-order word rejected
        let w = NestedWord::flat(vec![b, a]);
        assert!(!p.accepts(&w));
    }

    #[test]
    fn hierarchical_fork_duplicates_the_stack() {
        let a = Symbol(0);
        // Language: <a body a> where the body and the continuation are both
        // empty; uses a hierarchical body state that must pop ⊥... simpler:
        // the call forks the stack to the body (which must empty it) and to
        // the continuation (which must also empty it) — demonstrating that
        // one push can be consumed twice, the root cause of NP-hardness.
        let mut p = Pnwa::new(3, 1, 2);
        // state 0: linear start; state 1: hierarchical body; state 2: linear end
        p.set_mode(1, PnwaMode::Hierarchical);
        p.add_initial(0);
        // push a token, then call: body must pop token and ⊥; continuation
        // (state 2) must also pop token and ⊥.
        p.add_push(0, 0, 1);
        p.add_call(0, a, 1, 2);
        p.add_pop(1, 1, 1);
        p.add_pop(1, BOTTOM, 1);
        p.add_return(2, a, 2);
        p.add_pop(2, 1, 2);
        p.add_pop(2, BOTTOM, 2);
        let mut ab = Alphabet::from_names(["a"]);
        // <a a>: body empty — the body-leaf configuration is (1, stack) and
        // must be emptied by the body's ε-pops before the return.
        let w = parse(&mut ab, "<a a>");
        assert!(p.accepts(&w));
        // without the body pops the word is rejected
        let mut p2 = p.clone();
        p2.pops.retain(|&(q, _, _)| q != 1);
        assert!(!p2.accepts(&w));
    }
}
