//! Top-down tree automata over binary trees.
//!
//! A top-down automaton starts at the root in an initial state and splits
//! its state to the children; a run is accepting when every leaf satisfies a
//! leaf-acceptance rule. Lemma 2 of the paper identifies these with top-down
//! nested word automata over tree words, and Theorem 8 measures their
//! succinctness deficiency on path languages. Deterministic top-down
//! automata are strictly weaker (they cannot express "some node is labelled
//! a"), which the tests below exhibit.

use nested_words::{OrderedTree, Symbol};
use std::collections::HashSet;

/// A nondeterministic top-down tree automaton over binary trees.
#[derive(Debug, Clone, Default)]
pub struct TopDownBinaryTA {
    num_states: usize,
    initial: Vec<usize>,
    /// Leaf rules: state `q` may finish at an `a`-labelled leaf.
    leaf_rules: Vec<(usize, Symbol)>,
    /// Unary rules: `(q, a, q₁)` — at an `a`-labelled node with a single
    /// child, move to `q₁` on the child.
    unary_rules: Vec<(usize, Symbol, usize)>,
    /// Binary rules: `(q, a, q₁, q₂)`.
    binary_rules: Vec<(usize, Symbol, usize, usize)>,
}

impl TopDownBinaryTA {
    /// Creates an automaton with `num_states` states and no rules.
    pub fn new(num_states: usize) -> Self {
        TopDownBinaryTA {
            num_states,
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Marks a state as initial (usable at the root).
    pub fn add_initial(&mut self, q: usize) {
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Adds a leaf-acceptance rule.
    pub fn add_leaf_rule(&mut self, q: usize, label: Symbol) {
        self.leaf_rules.push((q, label));
    }

    /// Adds a unary rule.
    pub fn add_unary_rule(&mut self, q: usize, label: Symbol, child: usize) {
        self.unary_rules.push((q, label, child));
    }

    /// Adds a binary rule.
    pub fn add_binary_rule(&mut self, q: usize, label: Symbol, left: usize, right: usize) {
        self.binary_rules.push((q, label, left, right));
    }

    /// Returns `true` if the automaton is deterministic: one initial state
    /// and at most one rule per (state, label, arity).
    pub fn is_deterministic(&self) -> bool {
        if self.initial.len() > 1 {
            return false;
        }
        let mut seen = HashSet::new();
        for &(q, a, _) in &self.unary_rules {
            if !seen.insert((q, a, 1u8)) {
                return false;
            }
        }
        for &(q, a, _, _) in &self.binary_rules {
            if !seen.insert((q, a, 2u8)) {
                return false;
            }
        }
        true
    }

    fn accepts_from(&self, q: usize, tree: &OrderedTree) -> bool {
        match tree {
            OrderedTree::Empty => false,
            OrderedTree::Node { label, children } => match children.len() {
                0 => self.leaf_rules.iter().any(|&(p, a)| p == q && a == *label),
                1 => self
                    .unary_rules
                    .iter()
                    .any(|&(p, a, c)| p == q && a == *label && self.accepts_from(c, &children[0])),
                2 => self.binary_rules.iter().any(|&(p, a, l, r)| {
                    p == q
                        && a == *label
                        && self.accepts_from(l, &children[0])
                        && self.accepts_from(r, &children[1])
                }),
                _ => false,
            },
        }
    }

    /// Returns `true` if the automaton accepts `tree`.
    pub fn accepts(&self, tree: &OrderedTree) -> bool {
        self.initial.iter().any(|&q| self.accepts_from(q, tree))
    }

    /// Emptiness check: a state is *productive* if some tree is accepted from
    /// it; the language is empty iff no initial state is productive.
    pub fn is_empty(&self) -> bool {
        let mut productive: HashSet<usize> = HashSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for &(q, _) in &self.leaf_rules {
                changed |= productive.insert(q);
            }
            for &(q, _, c) in &self.unary_rules {
                if productive.contains(&c) {
                    changed |= productive.insert(q);
                }
            }
            for &(q, _, l, r) in &self.binary_rules {
                if productive.contains(&l) && productive.contains(&r) {
                    changed |= productive.insert(q);
                }
            }
        }
        !self.initial.iter().any(|q| productive.contains(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::Alphabet;

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::ab();
        (ab.lookup("a").unwrap(), ab.lookup("b").unwrap())
    }

    /// Deterministic top-down automaton for "every node is labelled a".
    fn all_a() -> TopDownBinaryTA {
        let (a, _) = syms();
        let mut ta = TopDownBinaryTA::new(1);
        ta.add_initial(0);
        ta.add_leaf_rule(0, a);
        ta.add_unary_rule(0, a, 0);
        ta.add_binary_rule(0, a, 0, 0);
        ta
    }

    #[test]
    fn all_a_language() {
        let (a, b) = syms();
        let ta = all_a();
        assert!(ta.is_deterministic());
        assert!(ta.accepts(&OrderedTree::leaf(a)));
        assert!(ta.accepts(&OrderedTree::node(
            a,
            vec![OrderedTree::leaf(a), OrderedTree::leaf(a)]
        )));
        assert!(!ta.accepts(&OrderedTree::node(
            a,
            vec![OrderedTree::leaf(b), OrderedTree::leaf(a)]
        )));
        assert!(!ta.accepts(&OrderedTree::leaf(b)));
    }

    #[test]
    fn nondeterministic_contains_b() {
        // "some node is labelled b": needs nondeterminism top-down.
        let (a, b) = syms();
        let mut ta = TopDownBinaryTA::new(2);
        // state 0 = must still find a b somewhere below (or here);
        // state 1 = no obligation.
        ta.add_initial(0);
        ta.add_leaf_rule(0, b);
        ta.add_leaf_rule(1, a);
        ta.add_leaf_rule(1, b);
        for label in [a, b] {
            // no obligation: children also have no obligation
            ta.add_unary_rule(1, label, 1);
            ta.add_binary_rule(1, label, 1, 1);
        }
        // with obligation at a b-labelled node: obligation discharged
        ta.add_unary_rule(0, b, 1);
        ta.add_binary_rule(0, b, 1, 1);
        for label in [a, b] {
            // keep the obligation and push it into one child
            ta.add_unary_rule(0, label, 0);
            ta.add_binary_rule(0, label, 0, 1);
            ta.add_binary_rule(0, label, 1, 0);
        }
        assert!(!ta.is_deterministic());
        let t_with_b = OrderedTree::node(
            a,
            vec![
                OrderedTree::leaf(a),
                OrderedTree::node(a, vec![OrderedTree::leaf(b)]),
            ],
        );
        let t_without_b = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(a)]);
        assert!(ta.accepts(&t_with_b));
        assert!(!ta.accepts(&t_without_b));
        assert!(ta.accepts(&OrderedTree::leaf(b)));
    }

    #[test]
    fn deterministic_top_down_cannot_express_contains_b() {
        // §3.5 / classical fact: any deterministic top-down automaton that
        // accepts both a(b, a) and a(a, b) also accepts a(a, a), because the
        // state sent to each child is determined by the path from the root.
        // We check this "exchange" property for a concrete candidate rather
        // than all automata (the general statement is a theorem, not a test):
        // build the *natural* deterministic candidate and watch it fail.
        let (a, b) = syms();
        let mut ta = TopDownBinaryTA::new(2);
        ta.add_initial(0);
        // candidate: state 0 = "b required in this subtree"; deterministic
        // splitting must choose one child to carry the obligation — say left.
        ta.add_leaf_rule(0, b);
        ta.add_leaf_rule(1, a);
        ta.add_leaf_rule(1, b);
        for label in [a, b] {
            ta.add_binary_rule(1, label, 1, 1);
        }
        ta.add_binary_rule(0, b, 1, 1);
        ta.add_binary_rule(0, a, 0, 1);
        assert!(ta.is_deterministic());
        let left_b = OrderedTree::node(a, vec![OrderedTree::leaf(b), OrderedTree::leaf(a)]);
        let right_b = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]);
        // the deterministic candidate accepts one but not the other
        assert!(ta.accepts(&left_b));
        assert!(!ta.accepts(&right_b));
    }

    #[test]
    fn emptiness() {
        let ta = all_a();
        assert!(!ta.is_empty());
        let mut dead = TopDownBinaryTA::new(2);
        let (a, _) = syms();
        dead.add_initial(0);
        dead.add_unary_rule(0, a, 1); // state 1 has no rules: unproductive
        assert!(dead.is_empty());
    }

    #[test]
    fn empty_tree_never_accepted() {
        let ta = all_a();
        assert!(!ta.accepts(&OrderedTree::Empty));
    }
}
