//! Compiled streaming execution for deterministic stepwise automata: the
//! `automata-core` [`Compile`] capability for [`DetStepwiseTA`], closing the
//! last hole in the suite's capability matrix.
//!
//! Lemma 1 of the paper identifies stepwise automata with weak bottom-up
//! nested word automata whose return transition **ignores its symbol** —
//! which is exactly what makes a flat-table streaming engine possible: a
//! tree arrives as its `t_w` word encoding (§2.3: `Call(label)`, the
//! children, `Return(label)`), and evaluation is a fold the stack machine
//! can run one event at a time:
//!
//! * `Call(a)` pushes the parent's partial value and starts the node at
//!   `init(a)`;
//! * `Return(_)` pops the parent's partial value `q` and folds the
//!   completed child value `r` into it with `combine(q, r)` — the label is
//!   ignored, per Lemma 1;
//! * `Internal(_)` never occurs in a tree encoding and goes to a dead
//!   state.
//!
//! [`CompiledStepwiseTA`] runs this machine over a dense *extended* state
//! domain that adds a top-level tracker (nothing-seen / one-tree-done /
//! many-trees) and an absorbing dead state, so the engine is total over
//! arbitrary event streams while accepting exactly the `t_w` encodings of
//! the trees the source automaton accepts. Both tables (`init` over labels,
//! the extended `combine` over state pairs) are flat arrays, so one event
//! is an add-and-load like the other compiled engines — and the artifact
//! implements [`Persist`] and [`Suspend`] alongside them.

use crate::stepwise::DetStepwiseTA;
use automata_core::persist::{
    checksum_bytes, expect_alphabet, fingerprint_alphabet, fingerprint_payload, kind, Reader,
    Writer,
};
use automata_core::{
    BatchAcceptor, Compile, Persist, PersistError, Snapshot, StreamAcceptor, StreamOutcome,
    StreamRun, Suspend,
};
use nested_words::TaggedSymbol;

/// A [`DetStepwiseTA`] lowered into flat tables over an *extended* state
/// domain, streaming tree events (`t_w` encodings, §2.3) one at a time.
///
/// For a source automaton with `n` states the extended domain has
/// `m = 2n + 3` values:
///
/// * `0..n` — plain partial values of the node currently being folded;
/// * `n..2n` — *top-done(q)*: exactly one complete tree evaluated to `q`
///   at the top level (the accepting shape: accepting iff `q` is);
/// * `2n` — *top-start*: nothing consumed yet;
/// * `2n + 1` — *top-many*: more than one top-level tree completed;
/// * `2n + 2` — the absorbing *dead* state (internal events, unknown
///   labels, pending returns, any malformed stream).
///
/// The top-level trackers occur exactly when the stack is empty, so
/// acceptance needs no stack check. Build one with [`Compile::compile`]
/// (or `query::compile`); it accepts a stream iff the stream is
/// `tree.to_tagged()` for some tree the source automaton accepts
/// (property-tested in `tests/persist.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledStepwiseTA {
    /// `n` — states of the source automaton.
    num_states: usize,
    /// Alphabet size.
    sigma: u32,
    /// `init[a]` — plain state opening an `a`-labelled node.
    init: Vec<u32>,
    /// The source `combine` table, `n × n`, row-major over plain states.
    combine: Vec<u32>,
    /// Acceptance by plain state index.
    accepting: Vec<bool>,
    /// The extended fold table, `m × m`: `combine_ext[ctx·m + child]` is
    /// the context after folding a completed `child` value into `ctx` —
    /// derived from `combine` plus the top-level/dead bookkeeping.
    combine_ext: Vec<u32>,
    /// Acceptance over the extended domain: exactly the *top-done(q)*
    /// values with `q` accepting.
    accepting_ext: Vec<bool>,
    /// Content hash over the source tables (see [`Persist`]), stamped into
    /// snapshots and validated on resume.
    fingerprint: u64,
}

impl CompiledStepwiseTA {
    /// Lowers `ta` into the extended flat tables.
    ///
    /// Panics if the extended table `(2n + 3)²` overflows the `u32` offset
    /// space; such automata are beyond the dense representation.
    pub fn new(ta: &DetStepwiseTA) -> CompiledStepwiseTA {
        let n = ta.num_states();
        let sigma = ta.sigma();
        let m = 2 * n + 3;
        assert!(
            u32::try_from(m).is_ok() && u32::try_from(m * m).is_ok(),
            "automaton too large to compile: (2·states + 3)² must fit u32"
        );
        let init: Vec<u32> = (0..sigma)
            .map(|a| ta.init(nested_words::Symbol(a as u16)) as u32)
            .collect();
        let combine: Vec<u32> = (0..n)
            .flat_map(|q| (0..n).map(move |r| (q, r)))
            .map(|(q, r)| ta.combine(q, r) as u32)
            .collect();
        let accepting: Vec<bool> = (0..n).map(|q| ta.is_accepting(q)).collect();
        let mut compiled = CompiledStepwiseTA {
            num_states: n,
            sigma: sigma as u32,
            init,
            combine,
            accepting,
            combine_ext: Vec::new(),
            accepting_ext: Vec::new(),
            fingerprint: 0,
        };
        compiled.derive_extended();
        compiled.fingerprint = compiled.compute_fingerprint();
        compiled
    }

    /// Number of states of the source automaton.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size of the source automaton.
    pub fn sigma(&self) -> usize {
        self.sigma as usize
    }

    fn m(&self) -> usize {
        2 * self.num_states + 3
    }

    fn top_start(&self) -> u32 {
        (2 * self.num_states) as u32
    }

    fn top_many(&self) -> u32 {
        (2 * self.num_states + 1) as u32
    }

    fn dead(&self) -> u32 {
        (2 * self.num_states + 2) as u32
    }

    /// Rebuilds the derived extended tables from the source tables — run
    /// at compile time and after [`Persist::load`].
    fn derive_extended(&mut self) {
        let n = self.num_states;
        let m = self.m();
        let dead = self.dead();
        let mut ext = vec![dead; m * m];
        for ctx in 0..m {
            for child in 0..n {
                // A completed child is always a plain value; folding it
                // into the context depends on what the context is.
                ext[ctx * m + child] = if ctx < n {
                    self.combine[ctx * n + child]
                } else if ctx == self.top_start() as usize {
                    (n + child) as u32 // top-done(child)
                } else if ctx == self.dead() as usize {
                    dead
                } else {
                    // top-done(_) or top-many: a second top-level tree.
                    self.top_many()
                };
            }
            // A non-plain "child" value can only arise from a malformed
            // stream; the `dead` fill already routes those to the sink.
        }
        let mut acc = vec![false; m];
        acc[n..2 * n].copy_from_slice(&self.accepting);
        self.combine_ext = ext;
        self.accepting_ext = acc;
    }

    /// Serializes the *source* tables (the extended tables are derived) —
    /// the payload [`Persist::save`] seals, and the bytes the content
    /// fingerprint hashes. One definition for both, so the fingerprint
    /// computed at compile time equals the one a loader derives from
    /// [`Reader::payload_checksum`].
    fn write_payload(&self, w: &mut Writer) {
        w.put_u64(self.num_states as u64);
        w.put_u32(self.sigma);
        w.put_u32_slice(&self.init);
        w.put_u32_slice(&self.combine);
        w.put_bools(&self.accepting);
    }

    /// Content hash over the serialized payload — computed once at compile
    /// time. Loaders fold the fingerprint out of the checksum pass
    /// [`Reader::open`] already made instead.
    fn compute_fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        fingerprint_payload(kind::COMPILED_STEPWISE_TA, checksum_bytes(w.payload()))
    }

    #[inline]
    fn step_value(&self, current: &mut u32, stack: &mut Vec<u32>, event: TaggedSymbol) -> bool {
        // Returns whether the event pushed (for peak tracking).
        match event {
            TaggedSymbol::Call(a) => {
                stack.push(*current);
                *current = if (a.index() as u32) < self.sigma {
                    self.init[a.index()]
                } else {
                    self.dead()
                };
                true
            }
            TaggedSymbol::Internal(_) => {
                *current = self.dead();
                false
            }
            TaggedSymbol::Return(_) => {
                *current = match stack.pop() {
                    Some(ctx) => self.combine_ext[ctx as usize * self.m() + *current as usize],
                    None => self.dead(),
                };
                false
            }
        }
    }

    /// Shared validation for [`Suspend::resume_run`] /
    /// [`Suspend::resume_lane`]: every extended state must index the
    /// extended tables.
    fn check_snapshot(&self, s: &Snapshot) -> Result<(), PersistError> {
        if s.fingerprint != self.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: self.fingerprint,
                found: s.fingerprint,
            });
        }
        let m = self.m() as u32;
        if s.state >= m || s.stack.iter().any(|&v| v >= m) {
            return Err(PersistError::Malformed {
                context: "snapshot state outside the extended domain",
            });
        }
        if (s.peak as usize) < s.stack.len() {
            return Err(PersistError::Malformed {
                context: "snapshot peak below its stack height",
            });
        }
        if s.check != 0 {
            return Err(PersistError::Malformed {
                context: "stepwise snapshots carry no integrity word",
            });
        }
        Ok(())
    }
}

impl Compile for DetStepwiseTA {
    type Compiled = CompiledStepwiseTA;

    /// Flat extended-domain tables streaming `t_w` tree events
    /// ([`CompiledStepwiseTA`]); panics if `(2·states + 3)²` overflows
    /// `u32`.
    fn compile(&self) -> CompiledStepwiseTA {
        CompiledStepwiseTA::new(self)
    }
}

/// A streaming run of a [`CompiledStepwiseTA`] over tree events: the
/// current extended value plus the stack of suspended parent folds — one
/// frame per open node, so peak memory is the tree depth.
#[derive(Debug, Clone)]
pub struct CompiledStepwiseRun<'a> {
    tables: &'a CompiledStepwiseTA,
    current: u32,
    stack: Vec<u32>,
    max_stack: usize,
    steps: usize,
}

impl StreamRun for CompiledStepwiseRun<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        if self
            .tables
            .step_value(&mut self.current, &mut self.stack, event)
        {
            self.max_stack = self.max_stack.max(self.stack.len());
        }
    }

    fn is_accepting(&self) -> bool {
        self.tables.accepting_ext[self.current as usize]
    }

    fn stack_height(&self) -> usize {
        self.stack.len()
    }

    fn peak_memory(&self) -> usize {
        self.max_stack
    }

    fn steps(&self) -> usize {
        self.steps
    }
}

impl StreamAcceptor for CompiledStepwiseTA {
    type Run<'a> = CompiledStepwiseRun<'a>;

    fn start(&self) -> CompiledStepwiseRun<'_> {
        CompiledStepwiseRun {
            tables: self,
            current: self.top_start(),
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }
}

/// One stream's worth of batched-execution state for a
/// [`CompiledStepwiseTA`]: the extended value plus the parent-fold stack,
/// owned so N lanes share one artifact across threads.
#[derive(Debug, Clone)]
pub struct CompiledStepwiseLane {
    current: u32,
    stack: Vec<u32>,
    max_stack: usize,
    steps: usize,
}

impl BatchAcceptor for CompiledStepwiseTA {
    type Lane = CompiledStepwiseLane;

    fn lane_start(&self) -> CompiledStepwiseLane {
        CompiledStepwiseLane {
            current: self.top_start(),
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }

    #[inline]
    fn lane_step(&self, lane: &mut CompiledStepwiseLane, event: TaggedSymbol) {
        lane.steps += 1;
        if self.step_value(&mut lane.current, &mut lane.stack, event) {
            lane.max_stack = lane.max_stack.max(lane.stack.len());
        }
    }

    fn lane_accepting(&self, lane: &CompiledStepwiseLane) -> bool {
        self.accepting_ext[lane.current as usize]
    }

    fn lane_outcome(&self, lane: &CompiledStepwiseLane) -> StreamOutcome {
        StreamOutcome {
            accepted: self.lane_accepting(lane),
            events: lane.steps,
            peak_memory: lane.max_stack,
        }
    }
}

impl Persist for CompiledStepwiseTA {
    const KIND: u16 = kind::COMPILED_STEPWISE_TA;

    fn save(&self) -> Vec<u8> {
        // Only the source tables go on the wire; the extended tables are
        // re-derived on load (they are a pure function of the source).
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.seal(Self::KIND, self.alphabet_fingerprint())
    }

    fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, Self::KIND)?;
        // `open` just hashed the whole payload; the content fingerprint
        // derives from that same walk instead of re-hashing the tables.
        let fingerprint = fingerprint_payload(Self::KIND, r.payload_checksum());
        let n = usize::try_from(r.get_u64()?).map_err(|_| PersistError::Malformed {
            context: "state count overflows",
        })?;
        let sigma = r.get_u32()?;
        let init = r.get_u32_vec()?;
        let combine = r.get_u32_vec()?;
        let accepting = r.get_bool_vec()?;
        r.finish()?;
        expect_alphabet(alphabet, sigma as usize)?;
        if n == 0 {
            return Err(PersistError::Malformed {
                context: "stepwise artifact with no states",
            });
        }
        let m = 2u64 * n as u64 + 3;
        if u32::try_from(m).is_err() || u32::try_from(m * m).is_err() {
            return Err(PersistError::Malformed {
                context: "extended table exceeds the u32 offset space",
            });
        }
        if init.len() != sigma as usize {
            return Err(PersistError::Malformed {
                context: "init table length disagrees with the alphabet size",
            });
        }
        if combine.len() != n * n {
            return Err(PersistError::Malformed {
                context: "combine table length disagrees with the state count",
            });
        }
        if accepting.len() != n {
            return Err(PersistError::Malformed {
                context: "acceptance table length disagrees with the state count",
            });
        }
        // Every decoded entry must be a plain source state.
        if init.iter().chain(combine.iter()).any(|&v| v as usize >= n) {
            return Err(PersistError::Malformed {
                context: "table entry references a state out of range",
            });
        }
        let mut artifact = CompiledStepwiseTA {
            num_states: n,
            sigma,
            init,
            combine,
            accepting,
            combine_ext: Vec::new(),
            accepting_ext: Vec::new(),
            fingerprint,
        };
        artifact.derive_extended();
        Ok(artifact)
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn alphabet_fingerprint(&self) -> u64 {
        fingerprint_alphabet(self.sigma as usize)
    }
}

impl Suspend for CompiledStepwiseTA {
    fn suspend_lane(&self, lane: &CompiledStepwiseLane) -> Snapshot {
        Snapshot {
            fingerprint: self.fingerprint,
            state: lane.current,
            stack: lane.stack.clone(),
            peak: lane.max_stack as u32,
            steps: lane.steps as u64,
            check: 0,
        }
    }

    fn resume_lane(&self, snapshot: &Snapshot) -> Result<CompiledStepwiseLane, PersistError> {
        self.check_snapshot(snapshot)?;
        Ok(CompiledStepwiseLane {
            current: snapshot.state,
            stack: snapshot.stack.clone(),
            max_stack: snapshot.peak as usize,
            steps: decode_steps(snapshot.steps)?,
        })
    }

    fn suspend_run(&self, run: &CompiledStepwiseRun<'_>) -> Snapshot {
        Snapshot {
            fingerprint: self.fingerprint,
            state: run.current,
            stack: run.stack.clone(),
            peak: run.max_stack as u32,
            steps: run.steps as u64,
            check: 0,
        }
    }

    fn resume_run<'a>(
        &'a self,
        snapshot: &Snapshot,
    ) -> Result<CompiledStepwiseRun<'a>, PersistError> {
        self.check_snapshot(snapshot)?;
        Ok(CompiledStepwiseRun {
            tables: self,
            current: snapshot.state,
            stack: snapshot.stack.clone(),
            max_stack: snapshot.peak as usize,
            steps: decode_steps(snapshot.steps)?,
        })
    }
}

/// Step counters are `u64` on the wire and `usize` in run state.
fn decode_steps(steps: u64) -> Result<usize, PersistError> {
    usize::try_from(steps).map_err(|_| PersistError::Malformed {
        context: "snapshot step count overflows",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::{OrderedTree, Symbol};

    /// Two states over Σ = {a, b}: state 1 iff the tree contains a `b`.
    fn contains_b() -> DetStepwiseTA {
        let mut ta = DetStepwiseTA::new(2, 2);
        ta.set_init(Symbol(0), 0);
        ta.set_init(Symbol(1), 1);
        for q in 0..2 {
            for r in 0..2 {
                ta.set_combine(q, r, q.max(r));
            }
        }
        ta.set_accepting(1, true);
        ta
    }

    fn sample_trees() -> Vec<OrderedTree> {
        let a = Symbol(0);
        let b = Symbol(1);
        vec![
            OrderedTree::leaf(a),
            OrderedTree::leaf(b),
            OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(a)]),
            OrderedTree::node(
                a,
                vec![
                    OrderedTree::leaf(a),
                    OrderedTree::node(a, vec![OrderedTree::leaf(b)]),
                ],
            ),
        ]
    }

    #[test]
    fn compiled_agrees_with_eval_on_tree_encodings() {
        let ta = contains_b();
        let compiled = ta.compile();
        for tree in sample_trees() {
            let events = tree.to_tagged();
            let outcome = {
                let mut run = compiled.start();
                for &e in &events {
                    run.step(e);
                }
                run.is_accepting()
            };
            assert_eq!(outcome, ta.accepts(&tree), "tree {tree:?}");
        }
    }

    #[test]
    fn malformed_streams_are_rejected_not_mangled() {
        let compiled = contains_b().compile();
        let a = Symbol(0);
        for events in [
            vec![TaggedSymbol::Internal(a)],
            vec![TaggedSymbol::Return(a)],
            vec![TaggedSymbol::Call(a)], // unclosed node
            vec![
                // two top-level trees
                TaggedSymbol::Call(a),
                TaggedSymbol::Return(a),
                TaggedSymbol::Call(a),
                TaggedSymbol::Return(a),
            ],
        ] {
            let mut run = compiled.start();
            for &e in &events {
                run.step(e);
            }
            assert!(!run.is_accepting(), "events {events:?}");
        }
        // The empty stream is not a tree either.
        assert!(!compiled.start().is_accepting());
    }

    #[test]
    fn round_trips_and_resumes() {
        let compiled = contains_b().compile();
        let back = CompiledStepwiseTA::load(&compiled.save()).unwrap();
        assert_eq!(back, compiled);

        let tree = &sample_trees()[3];
        let events = tree.to_tagged();
        let mid = events.len() / 2;
        let mut lane = compiled.lane_start();
        for &e in &events[..mid] {
            compiled.lane_step(&mut lane, e);
        }
        let snapshot = compiled.suspend_lane(&lane);
        // Resume on the reloaded artifact and finish the document there.
        let mut resumed = back.resume_lane(&snapshot).unwrap();
        for &e in &events[mid..] {
            back.lane_step(&mut resumed, e);
        }
        let mut full = compiled.lane_start();
        for &e in &events {
            compiled.lane_step(&mut full, e);
        }
        assert_eq!(back.lane_outcome(&resumed), compiled.lane_outcome(&full));
    }
}
