//! Implementations of the [`automata_core`] trait vocabulary for the tree
//! automaton models. Inputs are [`OrderedTree`]s; the input domain of every
//! model here is the set of *non-empty* trees (binary trees for the ranked
//! models), so complements are taken relative to that domain.

use crate::bottom_up::BottomUpBinaryTA;
use crate::stepwise::{DetStepwiseTA, StepwiseTA};
use crate::top_down::TopDownBinaryTA;
use automata_core::{Acceptor, BooleanOps, Decide, Emptiness, Minimize, Witness};
use nested_words::OrderedTree;

impl Acceptor<OrderedTree> for DetStepwiseTA {
    fn accepts(&self, input: &OrderedTree) -> bool {
        DetStepwiseTA::accepts(self, input)
    }
}

impl BooleanOps for DetStepwiseTA {
    fn intersect(&self, other: &Self) -> Self {
        DetStepwiseTA::intersect(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        DetStepwiseTA::union(self, other)
    }

    fn complement(&self) -> Self {
        DetStepwiseTA::complement(self)
    }
}

impl Emptiness for DetStepwiseTA {
    fn is_empty(&self) -> bool {
        DetStepwiseTA::is_empty(self)
    }
}

impl Decide for DetStepwiseTA {}

impl Minimize for DetStepwiseTA {
    /// The minimal deterministic stepwise automaton (two-sided congruence
    /// refinement over the reachable states; see
    /// [`DetStepwiseTA::minimize`]).
    fn minimize(&self) -> Self {
        DetStepwiseTA::minimize(self)
    }

    fn num_states(&self) -> usize {
        DetStepwiseTA::num_states(self)
    }
}

impl Witness for DetStepwiseTA {
    type Input = OrderedTree;

    /// A smallest accepted tree ([`DetStepwiseTA::find_accepted_tree`]:
    /// bottom-up reachability with backpointers).
    fn witness(&self) -> Option<OrderedTree> {
        self.find_accepted_tree()
    }
}

impl Acceptor<OrderedTree> for StepwiseTA {
    fn accepts(&self, input: &OrderedTree) -> bool {
        StepwiseTA::accepts(self, input)
    }
}

impl Emptiness for StepwiseTA {
    /// Decided on the subset-construction determinization.
    fn is_empty(&self) -> bool {
        self.determinize().is_empty()
    }
}

impl Witness for StepwiseTA {
    type Input = OrderedTree;

    /// A smallest accepted tree of the subset-construction determinization
    /// (whose smallest accepted trees coincide with the nondeterministic
    /// automaton's).
    fn witness(&self) -> Option<OrderedTree> {
        self.determinize().find_accepted_tree()
    }
}

impl Acceptor<OrderedTree> for TopDownBinaryTA {
    fn accepts(&self, input: &OrderedTree) -> bool {
        TopDownBinaryTA::accepts(self, input)
    }
}

impl Emptiness for TopDownBinaryTA {
    fn is_empty(&self) -> bool {
        TopDownBinaryTA::is_empty(self)
    }
}

impl Acceptor<OrderedTree> for BottomUpBinaryTA {
    fn accepts(&self, input: &OrderedTree) -> bool {
        BottomUpBinaryTA::accepts(self, input)
    }
}

impl Emptiness for BottomUpBinaryTA {
    fn is_empty(&self) -> bool {
        BottomUpBinaryTA::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;
    use nested_words::{Alphabet, Symbol};

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::ab();
        (ab.lookup("a").unwrap(), ab.lookup("b").unwrap())
    }

    /// Deterministic stepwise automaton for "the tree contains a b-labelled
    /// node".
    fn det_contains_b() -> DetStepwiseTA {
        let (a, b) = syms();
        let mut ta = DetStepwiseTA::new(2, 2);
        ta.set_init(a, 0);
        ta.set_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                ta.set_combine(q, r, usize::from(q == 1 || r == 1));
            }
        }
        ta.set_accepting(1, true);
        ta
    }

    /// Deterministic stepwise automaton for "the number of b-labelled nodes
    /// is even".
    fn det_even_bs() -> DetStepwiseTA {
        let (a, b) = syms();
        let mut ta = DetStepwiseTA::new(2, 2);
        ta.set_init(a, 0);
        ta.set_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                ta.set_combine(q, r, q ^ r);
            }
        }
        ta.set_accepting(0, true);
        ta
    }

    #[test]
    fn product_agrees_with_components() {
        let (a, b) = syms();
        let t1 = det_contains_b();
        let t2 = det_even_bs();
        let both = t1.intersect(&t2);
        let either = t1.union(&t2);
        let samples = [
            OrderedTree::leaf(a),
            OrderedTree::leaf(b),
            OrderedTree::node(a, vec![OrderedTree::leaf(b), OrderedTree::leaf(b)]),
            OrderedTree::node(b, vec![OrderedTree::leaf(a)]),
            OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(a)]),
        ];
        for t in &samples {
            assert_eq!(both.accepts(t), t1.accepts(t) && t2.accepts(t));
            assert_eq!(either.accepts(t), t1.accepts(t) || t2.accepts(t));
        }
    }

    #[test]
    fn decide_laws_for_stepwise() {
        let t1 = det_contains_b();
        let t2 = det_even_bs();
        assert!(query::equals(&t1, &t1.complement().complement()));
        assert!(!query::equals(&t1, &t2));
        assert!(query::subset_eq(&t1.intersect(&t2), &t1));
        assert!(query::is_empty(&t1.intersect(&t1.complement())));
        assert!(!query::is_empty(&t1));
    }

    #[test]
    fn acceptor_covers_all_tree_models() {
        let (a, b) = syms();
        let with_b = OrderedTree::node(a, vec![OrderedTree::leaf(b)]);

        let det = det_contains_b();
        assert!(query::contains(&det, &with_b));

        let mut nondet = StepwiseTA::new(2, 2);
        nondet.add_init(a, 0);
        nondet.add_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                nondet.add_combine(q, r, usize::from(q == 1 || r == 1));
            }
        }
        nondet.add_accepting(1);
        assert!(query::contains(&nondet, &with_b));
        assert!(!query::is_empty(&nondet));

        let mut top_down = TopDownBinaryTA::new(1);
        top_down.add_initial(0);
        top_down.add_leaf_rule(0, a);
        top_down.add_unary_rule(0, a, 0);
        assert!(query::contains(&top_down, &OrderedTree::leaf(a)));
        assert!(!query::is_empty(&top_down));

        let bottom_up = BottomUpBinaryTA::universal(2);
        assert!(query::contains(&bottom_up, &with_b));
        assert!(!query::is_empty(&bottom_up));
    }
}
