//! # tree-automata
//!
//! Tree automata over ordered trees: the *tree baselines* of the
//! reproduction of "Marrying Words and Trees" (PODS 2007).
//!
//! The paper compares nested word automata against three classical families,
//! all implemented here:
//!
//! * **bottom-up tree automata over binary trees** ([`bottom_up`]),
//! * **top-down tree automata over binary trees** ([`top_down`], Lemma 2),
//! * **stepwise bottom-up tree automata over unranked ordered trees**
//!   ([`stepwise`], Brüggemann-Klein–Murata–Wood / Martens–Niehren; the
//!   paper's Lemma 1 identifies them with weak bottom-up NWAs whose return
//!   transition ignores the symbol).
//!
//! All three support membership, emptiness, determinization (where the
//! nondeterministic variant exists) and, for deterministic stepwise
//! automata, congruence-based minimization — the quantity the succinctness
//! experiments (E5, E8, E14) report.
//!
//! Deterministic stepwise automata additionally lower into a flat streaming
//! engine over `t_w` tree events ([`compile`], via Lemma 1's
//! return-ignores-its-symbol identification), with byte-format persistence
//! and suspendable runs behind the `automata-core`
//! [`Persist`](automata_core::Persist) / [`Suspend`](automata_core::Suspend)
//! capabilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bottom_up;
pub mod compile;
pub mod stepwise;
pub mod top_down;

pub use bottom_up::BottomUpBinaryTA;
pub use compile::CompiledStepwiseTA;
pub use stepwise::{DetStepwiseTA, StepwiseTA};
pub use top_down::TopDownBinaryTA;
