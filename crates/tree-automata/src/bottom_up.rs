//! Nondeterministic bottom-up tree automata over binary trees.
//!
//! A bottom-up automaton assigns states to nodes from the leaves upward:
//! leaf rules `δ₀ ⊆ Σ × Q`, unary rules `δ₁ ⊆ Q × Σ × Q` and binary rules
//! `δ₂ ⊆ Q × Q × Σ × Q`; a tree is accepted when its root can be labelled
//! with a final state. These are the classical acceptors of regular binary
//! tree languages that §3.4 of the paper generalizes.

use nested_words::{OrderedTree, Symbol};
use std::collections::{BTreeSet, HashSet};

/// A nondeterministic bottom-up tree automaton over binary trees (nodes with
/// at most two children).
#[derive(Debug, Clone, Default)]
pub struct BottomUpBinaryTA {
    num_states: usize,
    /// Leaf rules: (label, state).
    leaf_rules: Vec<(Symbol, usize)>,
    /// Unary rules: (child state, label, state).
    unary_rules: Vec<(usize, Symbol, usize)>,
    /// Binary rules: (left state, right state, label, state).
    binary_rules: Vec<(usize, usize, Symbol, usize)>,
    accepting: HashSet<usize>,
}

impl BottomUpBinaryTA {
    /// Creates an automaton with `num_states` states and no rules.
    pub fn new(num_states: usize) -> Self {
        BottomUpBinaryTA {
            num_states,
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Adds the leaf rule `a → q`.
    pub fn add_leaf_rule(&mut self, label: Symbol, q: usize) {
        self.leaf_rules.push((label, q));
    }

    /// Adds the unary rule `a(q₁) → q`.
    pub fn add_unary_rule(&mut self, child: usize, label: Symbol, q: usize) {
        self.unary_rules.push((child, label, q));
    }

    /// Adds the binary rule `a(q₁, q₂) → q`.
    pub fn add_binary_rule(&mut self, left: usize, right: usize, label: Symbol, q: usize) {
        self.binary_rules.push((left, right, label, q));
    }

    /// Marks `q` as accepting.
    pub fn add_accepting(&mut self, q: usize) {
        self.accepting.insert(q);
    }

    /// Returns `true` if `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting.contains(&q)
    }

    /// The set of states assignable to the root of `tree`.
    pub fn states_of(&self, tree: &OrderedTree) -> BTreeSet<usize> {
        match tree {
            OrderedTree::Empty => BTreeSet::new(),
            OrderedTree::Node { label, children } => match children.len() {
                0 => self
                    .leaf_rules
                    .iter()
                    .filter(|(a, _)| a == label)
                    .map(|&(_, q)| q)
                    .collect(),
                1 => {
                    let c = self.states_of(&children[0]);
                    self.unary_rules
                        .iter()
                        .filter(|(c1, a, _)| a == label && c.contains(c1))
                        .map(|&(_, _, q)| q)
                        .collect()
                }
                2 => {
                    let l = self.states_of(&children[0]);
                    let r = self.states_of(&children[1]);
                    self.binary_rules
                        .iter()
                        .filter(|(l1, r1, a, _)| a == label && l.contains(l1) && r.contains(r1))
                        .map(|&(_, _, _, q)| q)
                        .collect()
                }
                _ => BTreeSet::new(), // not a binary tree: reject
            },
        }
    }

    /// Returns `true` if the automaton accepts `tree`.
    pub fn accepts(&self, tree: &OrderedTree) -> bool {
        self.states_of(tree)
            .iter()
            .any(|q| self.accepting.contains(q))
    }

    /// Emptiness check: computes the set of reachable (inhabited) states by
    /// saturation and tests whether it meets the accepting set.
    pub fn is_empty(&self) -> bool {
        let mut inhabited: HashSet<usize> = HashSet::new();
        let mut changed = true;
        while changed {
            changed = false;
            for &(_, q) in &self.leaf_rules {
                changed |= inhabited.insert(q);
            }
            for &(c, _, q) in &self.unary_rules {
                if inhabited.contains(&c) {
                    changed |= inhabited.insert(q);
                }
            }
            for &(l, r, _, q) in &self.binary_rules {
                if inhabited.contains(&l) && inhabited.contains(&r) {
                    changed |= inhabited.insert(q);
                }
            }
        }
        !inhabited.iter().any(|q| self.accepting.contains(q))
    }

    /// Builds the automaton accepting all binary trees over an alphabet of
    /// size `sigma` (a single universal state).
    pub fn universal(sigma: usize) -> Self {
        let mut ta = BottomUpBinaryTA::new(1);
        for s in 0..sigma {
            let a = Symbol(s as u16);
            ta.add_leaf_rule(a, 0);
            ta.add_unary_rule(0, a, 0);
            ta.add_binary_rule(0, 0, a, 0);
        }
        ta.add_accepting(0);
        ta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::Alphabet;

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::ab();
        (ab.lookup("a").unwrap(), ab.lookup("b").unwrap())
    }

    /// Automaton accepting binary trees containing at least one b-labelled node.
    fn contains_b() -> BottomUpBinaryTA {
        let (a, b) = syms();
        // state 0 = no b seen, state 1 = b seen
        let mut ta = BottomUpBinaryTA::new(2);
        ta.add_leaf_rule(a, 0);
        ta.add_leaf_rule(b, 1);
        for label in [a, b] {
            let hit = label == b;
            for c in 0..2usize {
                let target = usize::from(hit || c == 1);
                ta.add_unary_rule(c, label, target);
            }
            for l in 0..2usize {
                for r in 0..2usize {
                    let target = usize::from(hit || l == 1 || r == 1);
                    ta.add_binary_rule(l, r, label, target);
                }
            }
        }
        ta.add_accepting(1);
        ta
    }

    #[test]
    fn accepts_trees_with_b() {
        let (a, b) = syms();
        let ta = contains_b();
        let t1 = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]);
        let t2 = OrderedTree::node(a, vec![OrderedTree::leaf(a)]);
        let t3 = OrderedTree::leaf(b);
        assert!(ta.accepts(&t1));
        assert!(!ta.accepts(&t2));
        assert!(ta.accepts(&t3));
        assert!(!ta.accepts(&OrderedTree::leaf(a)));
    }

    #[test]
    fn rejects_non_binary_trees() {
        let (a, b) = syms();
        let ta = contains_b();
        let wide = OrderedTree::node(
            b,
            vec![
                OrderedTree::leaf(a),
                OrderedTree::leaf(a),
                OrderedTree::leaf(a),
            ],
        );
        assert!(!ta.accepts(&wide));
    }

    #[test]
    fn empty_tree_is_rejected() {
        let ta = contains_b();
        assert!(!ta.accepts(&OrderedTree::Empty));
    }

    #[test]
    fn emptiness_detection() {
        let (a, _) = syms();
        let ta = contains_b();
        assert!(!ta.is_empty());
        // automaton with unreachable accepting state
        let mut dead = BottomUpBinaryTA::new(2);
        dead.add_leaf_rule(a, 0);
        dead.add_accepting(1);
        assert!(dead.is_empty());
        // no accepting states at all
        let mut none = BottomUpBinaryTA::new(1);
        none.add_leaf_rule(a, 0);
        assert!(none.is_empty());
    }

    #[test]
    fn universal_automaton_accepts_everything_binary() {
        let (a, b) = syms();
        let ta = BottomUpBinaryTA::universal(2);
        let t = OrderedTree::node(
            a,
            vec![
                OrderedTree::node(b, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]),
                OrderedTree::leaf(a),
            ],
        );
        assert!(ta.accepts(&t));
        assert!(!ta.is_empty());
    }

    #[test]
    fn nondeterminism_unions_rules() {
        let (a, _) = syms();
        // two leaf rules for the same label, only one leads to acceptance
        let mut ta = BottomUpBinaryTA::new(2);
        ta.add_leaf_rule(a, 0);
        ta.add_leaf_rule(a, 1);
        ta.add_accepting(1);
        assert!(ta.accepts(&OrderedTree::leaf(a)));
        assert_eq!(ta.states_of(&OrderedTree::leaf(a)).len(), 2);
    }
}
