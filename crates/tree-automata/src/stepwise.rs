//! Stepwise bottom-up tree automata over unranked ordered trees
//! (Brüggemann-Klein–Murata–Wood \[5\], Martens–Niehren \[15\]).
//!
//! A stepwise automaton evaluates a node by first applying an initial
//! assignment to the node label and then folding in the values of the
//! children one at a time with a binary `combine` operation:
//!
//! ```text
//! eval(a(t₁,…,tₙ)) = combine(…combine(combine(init(a), eval(t₁)), eval(t₂))…, eval(tₙ))
//! ```
//!
//! Lemma 1 of the paper identifies stepwise automata with weak bottom-up
//! nested word automata whose return transition ignores its symbol, and the
//! succinctness experiments (E5, E14) report the size of the *minimal
//! deterministic* stepwise automaton computed here.

use nested_words::{OrderedTree, Symbol};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A deterministic stepwise bottom-up tree automaton.
///
/// `init` and `combine` are total: missing entries go to an implicit sink
/// that is added by [`DetStepwiseTA::new`].
#[derive(Debug, Clone)]
pub struct DetStepwiseTA {
    num_states: usize,
    sigma: usize,
    /// `init[a]` — state assigned to an `a`-labelled node before children.
    init: Vec<usize>,
    /// `combine[q * num_states + r]` — state after folding child value `r`
    /// into partial value `q`.
    combine: Vec<usize>,
    accepting: Vec<bool>,
}

impl DetStepwiseTA {
    /// Creates a deterministic stepwise automaton with `num_states` states
    /// over an alphabet of `sigma` symbols. All entries initially point at
    /// state 0; callers overwrite them with [`DetStepwiseTA::set_init`] and
    /// [`DetStepwiseTA::set_combine`].
    pub fn new(num_states: usize, sigma: usize) -> Self {
        assert!(num_states > 0, "need at least one state");
        DetStepwiseTA {
            num_states,
            sigma,
            init: vec![0; sigma],
            combine: vec![0; num_states * num_states],
            accepting: vec![false; num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Sets `init(label) = q`.
    pub fn set_init(&mut self, label: Symbol, q: usize) {
        self.init[label.index()] = q;
    }

    /// Returns `init(label)`.
    pub fn init(&self, label: Symbol) -> usize {
        self.init[label.index()]
    }

    /// Sets `combine(q, child) = target`.
    pub fn set_combine(&mut self, q: usize, child: usize, target: usize) {
        self.combine[q * self.num_states + child] = target;
    }

    /// Returns `combine(q, child)`.
    pub fn combine(&self, q: usize, child: usize) -> usize {
        self.combine[q * self.num_states + child]
    }

    /// Marks a state as accepting.
    pub fn set_accepting(&mut self, q: usize, accepting: bool) {
        self.accepting[q] = accepting;
    }

    /// Returns `true` if `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting[q]
    }

    /// Evaluates a tree to its state. Returns `None` on the empty tree.
    pub fn eval(&self, tree: &OrderedTree) -> Option<usize> {
        match tree {
            OrderedTree::Empty => None,
            OrderedTree::Node { label, children } => {
                let mut q = self.init(*label);
                for c in children {
                    let r = self.eval(c)?;
                    q = self.combine(q, r);
                }
                Some(q)
            }
        }
    }

    /// Returns `true` if the automaton accepts `tree`.
    pub fn accepts(&self, tree: &OrderedTree) -> bool {
        self.eval(tree).map(|q| self.accepting[q]).unwrap_or(false)
    }

    /// States reachable as values of partial or complete evaluations.
    pub fn reachable_states(&self) -> BTreeSet<usize> {
        let mut reach: BTreeSet<usize> = self.init.iter().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot: Vec<usize> = reach.iter().copied().collect();
            for &q in &snapshot {
                for &r in &snapshot {
                    if reach.insert(self.combine(q, r)) {
                        changed = true;
                    }
                }
            }
        }
        reach
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        !self.reachable_states().iter().any(|&q| self.accepting[q])
    }

    /// Finds a smallest accepted tree, or `None` iff the language is empty.
    ///
    /// The bottom-up reachability behind [`DetStepwiseTA::is_empty`] is
    /// instrumented with backpointers: `init(a) = q` reaches `q` with the
    /// one-node tree `a`, and `combine(q, r) = t` reaches `t` with the tree
    /// for `q` extended by the tree for `r` as one more child. Node counts
    /// are minimized to a fixpoint (each rule grows its conclusion strictly,
    /// so the backpointer graph is well-founded), then the smallest
    /// accepting value is unwound into an [`OrderedTree`].
    pub fn find_accepted_tree(&self) -> Option<OrderedTree> {
        #[derive(Clone, Copy)]
        enum Back {
            None,
            /// Reached as `init(label)`: a leaf.
            Init(Symbol),
            /// Reached as `combine(partial, child)`: one more child.
            Combine(usize, usize),
        }
        let n = self.num_states;
        let mut size = vec![usize::MAX; n];
        let mut back = vec![Back::None; n];
        for a in 0..self.sigma {
            let q = self.init[a];
            if 1 < size[q] {
                size[q] = 1;
                back[q] = Back::Init(Symbol(a as u16));
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..n {
                if size[q] == usize::MAX {
                    continue;
                }
                for r in 0..n {
                    if size[r] == usize::MAX {
                        continue;
                    }
                    let t = self.combine(q, r);
                    let candidate = size[q].saturating_add(size[r]);
                    if candidate < size[t] {
                        size[t] = candidate;
                        back[t] = Back::Combine(q, r);
                        changed = true;
                    }
                }
            }
        }
        let goal = (0..n)
            .filter(|&q| self.accepting[q] && size[q] != usize::MAX)
            .min_by_key(|&q| size[q])?;

        // Unwind: follow the combine chain down to the init leaf, collecting
        // the child values folded in along the way, then build each child
        // recursively (depth is bounded by the witness height).
        fn build(back: &[Back], q: usize) -> OrderedTree {
            let mut children_states = Vec::new();
            let mut cur = q;
            let label = loop {
                match back[cur] {
                    Back::Init(a) => break a,
                    Back::Combine(partial, child) => {
                        children_states.push(child);
                        cur = partial;
                    }
                    Back::None => unreachable!("unwinding an unreached state"),
                }
            };
            children_states.reverse();
            OrderedTree::node(
                label,
                children_states
                    .into_iter()
                    .map(|c| build(back, c))
                    .collect(),
            )
        }
        Some(build(&back, goal))
    }

    /// Product construction: runs both automata in lockstep; `combine_acc`
    /// decides acceptance of a state pair. Both the `init` assignment and the
    /// `combine` fold are componentwise, so the product evaluates every tree
    /// to the pair of the component values.
    pub fn product(
        &self,
        other: &DetStepwiseTA,
        combine_acc: impl Fn(bool, bool) -> bool,
    ) -> DetStepwiseTA {
        assert_eq!(self.sigma, other.sigma, "product requires equal alphabets");
        let n2 = other.num_states;
        let pair = |q1: usize, q2: usize| q1 * n2 + q2;
        let mut out = DetStepwiseTA::new(self.num_states * n2, self.sigma);
        for a in 0..self.sigma {
            out.init[a] = pair(self.init[a], other.init[a]);
        }
        for q1 in 0..self.num_states {
            for q2 in 0..n2 {
                let q = pair(q1, q2);
                out.accepting[q] = combine_acc(self.accepting[q1], other.accepting[q2]);
                for r1 in 0..self.num_states {
                    for r2 in 0..n2 {
                        out.set_combine(
                            q,
                            pair(r1, r2),
                            pair(self.combine(q1, r1), other.combine(q2, r2)),
                        );
                    }
                }
            }
        }
        out
    }

    /// Intersection of two deterministic stepwise automata.
    pub fn intersect(&self, other: &DetStepwiseTA) -> DetStepwiseTA {
        self.product(other, |x, y| x && y)
    }

    /// Union of two deterministic stepwise automata.
    pub fn union(&self, other: &DetStepwiseTA) -> DetStepwiseTA {
        self.product(other, |x, y| x || y)
    }

    /// Complement relative to the domain of *non-empty* ordered trees (the
    /// empty tree evaluates to no state and is rejected by every stepwise
    /// automaton, including the complement).
    pub fn complement(&self) -> DetStepwiseTA {
        let mut out = self.clone();
        for b in &mut out.accepting {
            *b = !*b;
        }
        out
    }

    /// Minimizes the automaton: restricts to reachable states and merges
    /// congruent states (same acceptance and pointwise-congruent `combine`
    /// behaviour on both sides). Returns the minimal deterministic stepwise
    /// automaton for the same tree language.
    pub fn minimize(&self) -> DetStepwiseTA {
        let reach: Vec<usize> = self.reachable_states().into_iter().collect();
        let index_of: HashMap<usize, usize> =
            reach.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let n = reach.len();
        if n == 0 {
            return DetStepwiseTA::new(1, self.sigma);
        }

        // Moore-style refinement over the reachable states.
        let mut block_of: Vec<usize> = reach
            .iter()
            .map(|&q| usize::from(self.accepting[q]))
            .collect();
        let mut num_blocks = 1 + block_of.iter().copied().max().unwrap_or(0);
        loop {
            let mut sig_to_block: HashMap<(usize, Vec<(usize, usize)>), usize> = HashMap::new();
            let mut new_block_of = vec![0usize; n];
            for (i, &q) in reach.iter().enumerate() {
                let mut sig = Vec::with_capacity(2 * n);
                for (j, &r) in reach.iter().enumerate() {
                    let left = block_of[index_of[&self.combine(q, r)]];
                    let right = block_of[index_of[&self.combine(r, q)]];
                    sig.push((left, right));
                    let _ = j;
                }
                let key = (block_of[i], sig);
                let next = sig_to_block.len();
                new_block_of[i] = *sig_to_block.entry(key).or_insert(next);
            }
            let new_num = sig_to_block.len();
            let stable = new_num == num_blocks;
            block_of = new_block_of;
            num_blocks = new_num;
            if stable {
                break;
            }
        }

        let mut out = DetStepwiseTA::new(num_blocks, self.sigma);
        for (i, &q) in reach.iter().enumerate() {
            let b = block_of[i];
            out.accepting[b] = self.accepting[q];
            for (j, &r) in reach.iter().enumerate() {
                let t = block_of[index_of[&self.combine(q, r)]];
                out.set_combine(b, block_of[j], t);
            }
        }
        for a in 0..self.sigma {
            let q = self.init[a];
            out.init[a] = block_of[index_of[&q]];
        }
        out
    }
}

/// A nondeterministic stepwise bottom-up tree automaton.
#[derive(Debug, Clone, Default)]
pub struct StepwiseTA {
    num_states: usize,
    sigma: usize,
    init: Vec<(Symbol, usize)>,
    combine: Vec<(usize, usize, usize)>,
    accepting: HashSet<usize>,
}

impl StepwiseTA {
    /// Creates a nondeterministic stepwise automaton with `num_states`
    /// states over an alphabet of `sigma` symbols.
    pub fn new(num_states: usize, sigma: usize) -> Self {
        StepwiseTA {
            num_states,
            sigma,
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds `q ∈ init(label)`.
    pub fn add_init(&mut self, label: Symbol, q: usize) {
        self.init.push((label, q));
    }

    /// Adds `(q, child) → target` to the combine relation.
    pub fn add_combine(&mut self, q: usize, child: usize, target: usize) {
        self.combine.push((q, child, target));
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, q: usize) {
        self.accepting.insert(q);
    }

    /// The set of states a tree can evaluate to.
    pub fn eval(&self, tree: &OrderedTree) -> BTreeSet<usize> {
        match tree {
            OrderedTree::Empty => BTreeSet::new(),
            OrderedTree::Node { label, children } => {
                let mut current: BTreeSet<usize> = self
                    .init
                    .iter()
                    .filter(|(a, _)| a == label)
                    .map(|&(_, q)| q)
                    .collect();
                for c in children {
                    let child_states = self.eval(c);
                    let mut next = BTreeSet::new();
                    for &(q, r, t) in &self.combine {
                        if current.contains(&q) && child_states.contains(&r) {
                            next.insert(t);
                        }
                    }
                    current = next;
                }
                current
            }
        }
    }

    /// Returns `true` if the automaton accepts `tree`.
    pub fn accepts(&self, tree: &OrderedTree) -> bool {
        self.eval(tree).iter().any(|q| self.accepting.contains(q))
    }

    /// Determinizes via the subset construction; the result's states are
    /// reachable subsets (plus an implicit empty subset acting as sink).
    pub fn determinize(&self) -> DetStepwiseTA {
        // Collect init subsets per label.
        let mut init_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.sigma];
        for &(a, q) in &self.init {
            init_sets[a.index()].insert(q);
        }
        let mut subset_index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let intern = |s: BTreeSet<usize>,
                      subsets: &mut Vec<BTreeSet<usize>>,
                      queue: &mut VecDeque<usize>,
                      subset_index: &mut HashMap<BTreeSet<usize>, usize>|
         -> usize {
            if let Some(&i) = subset_index.get(&s) {
                return i;
            }
            let i = subsets.len();
            subset_index.insert(s.clone(), i);
            subsets.push(s);
            queue.push_back(i);
            i
        };

        let mut queue = VecDeque::new();
        // The empty subset is the sink and must be state 0 so DetStepwiseTA's
        // defaults (everything points at 0) stay consistent.
        intern(BTreeSet::new(), &mut subsets, &mut queue, &mut subset_index);
        let init_idx: Vec<usize> = init_sets
            .iter()
            .map(|s| intern(s.clone(), &mut subsets, &mut queue, &mut subset_index))
            .collect();

        // Explore the combine table over discovered subsets.
        let mut table: HashMap<(usize, usize), usize> = HashMap::new();
        let mut processed = 0usize;
        while processed < subsets.len() {
            // (re)process all pairs among subsets seen so far
            let count = subsets.len();
            for qi in 0..count {
                for ri in 0..count {
                    if table.contains_key(&(qi, ri)) {
                        continue;
                    }
                    let mut next = BTreeSet::new();
                    for &(q, r, t) in &self.combine {
                        if subsets[qi].contains(&q) && subsets[ri].contains(&r) {
                            next.insert(t);
                        }
                    }
                    let ti = intern(next, &mut subsets, &mut queue, &mut subset_index);
                    table.insert((qi, ri), ti);
                }
            }
            processed = count;
        }

        let mut det = DetStepwiseTA::new(subsets.len(), self.sigma);
        for (a, &idx) in init_idx.iter().enumerate() {
            det.set_init(Symbol(a as u16), idx);
        }
        for (&(q, r), &t) in &table {
            det.set_combine(q, r, t);
        }
        for (i, s) in subsets.iter().enumerate() {
            det.set_accepting(i, s.iter().any(|q| self.accepting.contains(q)));
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::Alphabet;

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::ab();
        (ab.lookup("a").unwrap(), ab.lookup("b").unwrap())
    }

    /// Deterministic stepwise automaton for "the tree contains a b-labelled
    /// node" over unranked {a,b}-trees. State 1 = seen, 0 = not seen.
    fn det_contains_b() -> DetStepwiseTA {
        let (a, b) = syms();
        let mut ta = DetStepwiseTA::new(2, 2);
        ta.set_init(a, 0);
        ta.set_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                ta.set_combine(q, r, usize::from(q == 1 || r == 1));
            }
        }
        ta.set_accepting(1, true);
        ta
    }

    #[test]
    fn det_stepwise_membership() {
        let (a, b) = syms();
        let ta = det_contains_b();
        let wide_with_b = OrderedTree::node(
            a,
            vec![
                OrderedTree::leaf(a),
                OrderedTree::leaf(a),
                OrderedTree::node(a, vec![OrderedTree::leaf(b)]),
                OrderedTree::leaf(a),
            ],
        );
        let wide_without = OrderedTree::node(a, (0..5).map(|_| OrderedTree::leaf(a)).collect());
        assert!(ta.accepts(&wide_with_b));
        assert!(!ta.accepts(&wide_without));
        assert!(ta.accepts(&OrderedTree::leaf(b)));
        assert!(!ta.accepts(&OrderedTree::Empty));
    }

    #[test]
    fn reachability_and_emptiness() {
        let ta = det_contains_b();
        assert_eq!(ta.reachable_states().len(), 2);
        assert!(!ta.is_empty());
        let mut dead = DetStepwiseTA::new(3, 2);
        // accepting state 2 is never reachable
        dead.set_accepting(2, true);
        assert!(dead.is_empty());
    }

    #[test]
    fn minimize_merges_redundant_states() {
        let (a, b) = syms();
        // 4-state automaton where states 2,3 duplicate 0,1
        let mut ta = DetStepwiseTA::new(4, 2);
        ta.set_init(a, 2);
        ta.set_init(b, 3);
        for (q, r, t) in [
            (2, 2, 0),
            (2, 3, 1),
            (3, 2, 1),
            (3, 3, 1),
            (0, 0, 0),
            (0, 1, 1),
            (1, 0, 1),
            (1, 1, 1),
            (2, 0, 0),
            (0, 2, 0),
            (2, 1, 1),
            (1, 2, 1),
            (3, 0, 1),
            (0, 3, 1),
            (3, 1, 1),
            (1, 3, 1),
        ] {
            ta.set_combine(q, r, t);
        }
        ta.set_accepting(1, true);
        ta.set_accepting(3, true);
        let min = ta.minimize();
        assert_eq!(min.num_states(), 2);
        // language preserved on samples
        let trees = [
            OrderedTree::leaf(a),
            OrderedTree::leaf(b),
            OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]),
            OrderedTree::node(a, vec![OrderedTree::leaf(a)]),
        ];
        for t in &trees {
            assert_eq!(ta.accepts(t), min.accepts(t));
        }
    }

    #[test]
    fn nondeterministic_stepwise_and_determinization() {
        let (a, b) = syms();
        // Nondeterministic automaton for "some leaf is b": guess where.
        let mut ta = StepwiseTA::new(2, 2);
        ta.add_init(a, 0);
        ta.add_init(b, 0);
        ta.add_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                let t = usize::from(q == 1 || r == 1);
                ta.add_combine(q, r, t);
            }
        }
        ta.add_accepting(1);
        let with_b = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]);
        let without = OrderedTree::node(a, vec![OrderedTree::leaf(a)]);
        assert!(ta.accepts(&with_b));
        assert!(!ta.accepts(&without));
        let det = ta.determinize();
        assert!(det.accepts(&with_b));
        assert!(!det.accepts(&without));
        let min = det.minimize();
        assert!(min.num_states() <= det.num_states());
        assert!(min.accepts(&with_b));
        assert!(!min.accepts(&without));
    }

    #[test]
    fn find_accepted_tree_produces_smallest_witness() {
        let (a, b) = syms();
        let ta = det_contains_b();
        // smallest accepted tree is the single leaf b
        let t = ta.find_accepted_tree().unwrap();
        assert_eq!(t, OrderedTree::leaf(b));
        assert!(ta.accepts(&t));
        // "at least two b-nodes": 0/1/2-or-more counted in the state
        let mut two = DetStepwiseTA::new(3, 2);
        two.set_init(a, 0);
        two.set_init(b, 1);
        for q in 0..3 {
            for r in 0..3 {
                two.set_combine(q, r, (q + r).min(2));
            }
        }
        two.set_accepting(2, true);
        let t2 = two.find_accepted_tree().unwrap();
        assert_eq!(t2.node_count(), 2);
        assert!(two.accepts(&t2));
        // empty language has no witness
        let dead = DetStepwiseTA::new(2, 2);
        assert_eq!(dead.find_accepted_tree(), None);
    }

    #[test]
    fn minimize_empty_language_is_one_state() {
        let ta = DetStepwiseTA::new(5, 2);
        let min = ta.minimize();
        assert_eq!(min.num_states(), 1);
        assert!(min.is_empty());
    }
}
