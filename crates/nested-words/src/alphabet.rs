//! Interned alphabets and symbols.
//!
//! Every automaton model in the suite works over a finite alphabet Σ. To keep
//! transition tables dense and comparisons cheap, symbols are small integer
//! indices into an [`Alphabet`] that owns the human-readable names.

use std::fmt;

/// A symbol of an alphabet, represented as a dense index.
///
/// Symbols are only meaningful relative to the [`Alphabet`] that created
/// them, but carrying the index alone keeps automata representations compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u16);

impl Symbol {
    /// Returns the dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for Symbol {
    fn from(v: u16) -> Self {
        Symbol(v)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite alphabet Σ with named symbols.
///
/// The alphabet interns symbol names and hands out dense [`Symbol`] indices.
/// All structures in the suite (nested words, trees, automata) refer to
/// symbols by index; the alphabet is only needed to render or parse text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet { names: Vec::new() }
    }

    /// Creates an alphabet from an iterator of symbol names.
    ///
    /// Duplicate names are interned once.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut a = Alphabet::new();
        for n in names {
            a.intern(&n.into());
        }
        a
    }

    /// Creates the two-letter alphabet `{a, b}` used throughout the paper's
    /// examples and separation families.
    pub fn ab() -> Self {
        Alphabet::from_names(["a", "b"])
    }

    /// Creates an alphabet of `k` symbols named `a`, `b`, `c`, … (wrapping to
    /// `x0`, `x1`, … past 26 letters).
    pub fn with_size(k: usize) -> Self {
        let mut names = Vec::with_capacity(k);
        for i in 0..k {
            if i < 26 {
                names.push(((b'a' + i as u8) as char).to_string());
            } else {
                names.push(format!("x{}", i - 26));
            }
        }
        Alphabet::from_names(names)
    }

    /// Interns a symbol name, returning its [`Symbol`].
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(s) = self.lookup(name) {
            return s;
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "alphabet exceeds u16::MAX symbols"
        );
        let s = Symbol(self.names.len() as u16);
        self.names.push(name.to_string());
        s
    }

    /// Looks up an existing symbol by name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u16))
    }

    /// Returns the name of a symbol, if it belongs to this alphabet.
    pub fn name(&self, s: Symbol) -> Option<&str> {
        self.names.get(s.index()).map(String::as_str)
    }

    /// Returns the number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols of the alphabet in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }

    /// Returns `true` if `s` is a symbol of this alphabet.
    pub fn contains(&self, s: Symbol) -> bool {
        s.index() < self.names.len()
    }
}

impl Default for Alphabet {
    fn default() -> Self {
        Alphabet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let s1 = a.intern("a");
        let s2 = a.intern("a");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let a = Alphabet::from_names(["foo", "bar"]);
        let s = a.lookup("bar").unwrap();
        assert_eq!(a.name(s), Some("bar"));
        assert_eq!(a.lookup("baz"), None);
    }

    #[test]
    fn ab_alphabet_has_two_symbols() {
        let a = Alphabet::ab();
        assert_eq!(a.len(), 2);
        assert_eq!(a.name(Symbol(0)), Some("a"));
        assert_eq!(a.name(Symbol(1)), Some("b"));
    }

    #[test]
    fn with_size_generates_distinct_names() {
        let a = Alphabet::with_size(30);
        assert_eq!(a.len(), 30);
        assert_eq!(a.name(Symbol(0)), Some("a"));
        assert_eq!(a.name(Symbol(26)), Some("x0"));
        // all names distinct
        let mut names: Vec<_> = a
            .symbols()
            .map(|s| a.name(s).unwrap().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn symbols_iterates_in_order() {
        let a = Alphabet::with_size(4);
        let v: Vec<_> = a.symbols().collect();
        assert_eq!(v, vec![Symbol(0), Symbol(1), Symbol(2), Symbol(3)]);
        assert!(a.contains(Symbol(3)));
        assert!(!a.contains(Symbol(4)));
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.symbols().count(), 0);
    }
}
