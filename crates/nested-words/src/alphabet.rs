//! Interned alphabets and symbols.
//!
//! Every automaton model in the suite works over a finite alphabet Σ. To keep
//! transition tables dense and comparisons cheap, symbols are small integer
//! indices into an [`Alphabet`] that owns the human-readable names.

use crate::error::NestedWordError;
use std::collections::HashMap;
use std::fmt;

/// A symbol of an alphabet, represented as a dense index.
///
/// Symbols are only meaningful relative to the [`Alphabet`] that created
/// them, but carrying the index alone keeps automata representations compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u16);

impl Symbol {
    /// Returns the dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for Symbol {
    fn from(v: u16) -> Self {
        Symbol(v)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite alphabet Σ with named symbols.
///
/// The alphabet interns symbol names and hands out dense [`Symbol`] indices.
/// All structures in the suite (nested words, trees, automata) refer to
/// symbols by index; the alphabet is only needed to render or parse text.
#[derive(Debug, Clone)]
pub struct Alphabet {
    names: Vec<String>,
    /// Name → index, kept in sync with `names` for O(1) interning.
    index: HashMap<String, u16>,
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Self) -> bool {
        // `index` is derived from `names`, so names alone decide equality.
        self.names == other.names
    }
}

impl Eq for Alphabet {}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet {
            names: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Creates an alphabet from an iterator of symbol names.
    ///
    /// Duplicate names are interned once.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut a = Alphabet::new();
        for n in names {
            a.intern(&n.into());
        }
        a
    }

    /// Creates the two-letter alphabet `{a, b}` used throughout the paper's
    /// examples and separation families.
    pub fn ab() -> Self {
        Alphabet::from_names(["a", "b"])
    }

    /// Creates an alphabet of `k` symbols named `a`, `b`, `c`, … (wrapping to
    /// `x0`, `x1`, … past 26 letters).
    pub fn with_size(k: usize) -> Self {
        let mut names = Vec::with_capacity(k);
        for i in 0..k {
            if i < 26 {
                names.push(((b'a' + i as u8) as char).to_string());
            } else {
                names.push(format!("x{}", i - 26));
            }
        }
        Alphabet::from_names(names)
    }

    /// The maximum number of symbols an alphabet can hold: symbols are dense
    /// `u16` indices, so at most `u16::MAX` of them fit (the suite reserves
    /// the top value so tagged-index arithmetic can never overflow).
    pub const MAX_SYMBOLS: usize = u16::MAX as usize;

    /// Interns a symbol name, returning its [`Symbol`], or a typed
    /// [`NestedWordError::AlphabetFull`] once [`Alphabet::MAX_SYMBOLS`]
    /// distinct names have been interned. Looking up an already-interned
    /// name never fails, full or not.
    pub fn try_intern(&mut self, name: &str) -> Result<Symbol, NestedWordError> {
        if let Some(s) = self.lookup(name) {
            return Ok(s);
        }
        if self.names.len() >= Self::MAX_SYMBOLS {
            return Err(NestedWordError::AlphabetFull {
                capacity: Self::MAX_SYMBOLS,
            });
        }
        let s = Symbol(self.names.len() as u16);
        self.index.insert(name.to_string(), s.0);
        self.names.push(name.to_string());
        Ok(s)
    }

    /// Interns a symbol name, returning its [`Symbol`].
    ///
    /// This is the panicking convenience wrapper around
    /// [`Alphabet::try_intern`]; use the fallible variant when the input is
    /// untrusted (e.g. tag names streamed from a document).
    ///
    /// # Panics
    ///
    /// Panics if the alphabet already holds [`Alphabet::MAX_SYMBOLS`]
    /// distinct symbols and `name` is not one of them.
    pub fn intern(&mut self, name: &str) -> Symbol {
        match self.try_intern(name) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Looks up an existing symbol by name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).map(|&i| Symbol(i))
    }

    /// Returns the name of a symbol, if it belongs to this alphabet.
    pub fn name(&self, s: Symbol) -> Option<&str> {
        self.names.get(s.index()).map(String::as_str)
    }

    /// Returns the number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols of the alphabet in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }

    /// Returns `true` if `s` is a symbol of this alphabet.
    pub fn contains(&self, s: Symbol) -> bool {
        s.index() < self.names.len()
    }
}

impl Default for Alphabet {
    fn default() -> Self {
        Alphabet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let s1 = a.intern("a");
        let s2 = a.intern("a");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let a = Alphabet::from_names(["foo", "bar"]);
        let s = a.lookup("bar").unwrap();
        assert_eq!(a.name(s), Some("bar"));
        assert_eq!(a.lookup("baz"), None);
    }

    #[test]
    fn ab_alphabet_has_two_symbols() {
        let a = Alphabet::ab();
        assert_eq!(a.len(), 2);
        assert_eq!(a.name(Symbol(0)), Some("a"));
        assert_eq!(a.name(Symbol(1)), Some("b"));
    }

    #[test]
    fn with_size_generates_distinct_names() {
        let a = Alphabet::with_size(30);
        assert_eq!(a.len(), 30);
        assert_eq!(a.name(Symbol(0)), Some("a"));
        assert_eq!(a.name(Symbol(26)), Some("x0"));
        // all names distinct
        let mut names: Vec<_> = a
            .symbols()
            .map(|s| a.name(s).unwrap().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn symbols_iterates_in_order() {
        let a = Alphabet::with_size(4);
        let v: Vec<_> = a.symbols().collect();
        assert_eq!(v, vec![Symbol(0), Symbol(1), Symbol(2), Symbol(3)]);
        assert!(a.contains(Symbol(3)));
        assert!(!a.contains(Symbol(4)));
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.symbols().count(), 0);
    }

    #[test]
    fn try_intern_reports_full_alphabet() {
        let mut a = Alphabet::new();
        for i in 0..Alphabet::MAX_SYMBOLS {
            a.try_intern(&format!("s{i}")).unwrap();
        }
        assert_eq!(a.len(), Alphabet::MAX_SYMBOLS);
        let err = a.try_intern("one-too-many").unwrap_err();
        assert!(matches!(
            err,
            NestedWordError::AlphabetFull { capacity } if capacity == Alphabet::MAX_SYMBOLS
        ));
        // A full alphabet still resolves already-interned names.
        assert_eq!(a.try_intern("s0").unwrap(), Symbol(0));
        assert_eq!(a.lookup("s42"), Some(Symbol(42)));
        assert_eq!(a.len(), Alphabet::MAX_SYMBOLS);
    }
}
