//! A small deterministic pseudo-random number generator.
//!
//! The build environment has no access to crates.io, so the suite cannot
//! depend on the `rand` crate. The generators in [`crate::generate`], the
//! property tests and the benchmark harness only need reproducible,
//! reasonably well-mixed streams — not cryptographic quality — which
//! SplitMix64 (Steele–Lea–Flood 2014) provides in a dozen lines.

/// A SplitMix64 generator. Identical seeds yield identical streams.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Prng(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed index in `0..bound`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        // Modulo bias is ≤ bound/2^64, irrelevant for test workloads.
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniformly distributed float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_hits_all_values() {
        let mut rng = Prng::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
