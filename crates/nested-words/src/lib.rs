//! # nested-words
//!
//! The data model of *"Marrying Words and Trees"* (Rajeev Alur, PODS 2007):
//! **nested words**, a representation for data that carries both a linear
//! order and a properly nested hierarchical structure.
//!
//! A nested word of length `ℓ` is a word `a₁…a_ℓ` over an alphabet together
//! with a *matching relation* that connects *call* positions to *return*
//! positions without crossing; edges may be *pending* (a call without a
//! return, or a return without a call). Words are nested words with an empty
//! matching relation, and ordered trees embed into nested words via the
//! call/return traversal of §2.3 of the paper.
//!
//! The crate provides:
//!
//! * [`Alphabet`] and [`Symbol`] — interned, index-based alphabets shared by
//!   every automaton model in the suite;
//! * [`MatchingRelation`] — validated matching relations (§2.1);
//! * [`NestedWord`] — the nested word itself, with depth, call-parents,
//!   well-matchedness and rootedness queries (§2.1);
//! * [`TaggedSymbol`] and the `nw_w` / `w_nw` bijection with tagged words
//!   (§2.2), including a human-readable text syntax `"<a b a>"`;
//! * [`OrderedTree`] and the `t_w` / `t_nw` / `nw_t` encodings of ordered
//!   trees as *tree words* (§2.3), plus `path(w)` encodings of linear words
//!   as unary trees (§3.6);
//! * the word and tree operations of §2.4: concatenation, subwords,
//!   prefixes, suffixes, reversal and insertion;
//! * random generators for nested words, trees and documents used by the
//!   test suite and the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod error;
pub mod generate;
pub mod matching;
pub mod ops;
pub mod path;
pub mod rng;
pub mod tagged;
pub mod tree;
pub mod word;

pub use alphabet::{Alphabet, Symbol};
pub use error::NestedWordError;
pub use matching::MatchingRelation;
pub use tagged::{TaggedSymbol, TaggedWord};
pub use tree::OrderedTree;
pub use word::{NestedWord, PositionKind};
