//! Word and tree operations on nested words (§2.4 of the paper).
//!
//! All operations are defined through the tagged-word encoding: because
//! `nw_w` is a bijection, any operation on tagged words lifts to nested
//! words. Concatenation may connect pending calls of the first operand with
//! pending returns of the second; taking subwords may turn matched edges
//! into pending ones.

use crate::alphabet::Symbol;
use crate::error::NestedWordError;
use crate::tagged::TaggedSymbol;
use crate::word::{NestedWord, PositionKind};

/// Concatenation of two nested words (§2.4):
/// `concat(n, n') = w_nw(nw_w(n) · nw_w(n'))`.
pub fn concat(n: &NestedWord, m: &NestedWord) -> NestedWord {
    let mut tagged = n.to_tagged();
    tagged.extend(m.to_tagged());
    NestedWord::from_tagged(&tagged)
}

/// Concatenation of arbitrarily many nested words, left to right.
pub fn concat_all<'a, I>(words: I) -> NestedWord
where
    I: IntoIterator<Item = &'a NestedWord>,
{
    let mut tagged = Vec::new();
    for w in words {
        tagged.extend(w.to_tagged());
    }
    NestedWord::from_tagged(&tagged)
}

/// The subword `n[i, j)` over 0-based, half-open position ranges (§2.4 uses
/// 1-based closed ranges `n[i, j]`). Out-of-range or empty ranges yield the
/// empty nested word. Matched edges leaving the range become pending.
pub fn subword(n: &NestedWord, start: usize, end: usize) -> NestedWord {
    if start >= end || start >= n.len() {
        return NestedWord::empty();
    }
    let end = end.min(n.len());
    let tagged: Vec<TaggedSymbol> = (start..end)
        .map(|i| TaggedSymbol::new(n.kind(i), n.symbol(i)))
        .collect();
    NestedWord::from_tagged(&tagged)
}

/// The prefix `n[0, end)` (§2.4 prefixes are `n[1, j]`).
pub fn prefix(n: &NestedWord, end: usize) -> NestedWord {
    subword(n, 0, end)
}

/// The suffix `n[start, ℓ)` (§2.4 suffixes are `n[i, ℓ]`).
pub fn suffix(n: &NestedWord, start: usize) -> NestedWord {
    subword(n, start, n.len())
}

/// Reverse of a nested word (§2.4): the underlying word is reversed and every
/// hierarchical edge flips direction, so calls become returns and vice versa.
pub fn reverse(n: &NestedWord) -> NestedWord {
    let tagged: Vec<TaggedSymbol> = (0..n.len())
        .rev()
        .map(|i| {
            let s = n.symbol(i);
            match n.kind(i) {
                PositionKind::Call => TaggedSymbol::Return(s),
                PositionKind::Internal => TaggedSymbol::Internal(s),
                PositionKind::Return => TaggedSymbol::Call(s),
            }
        })
        .collect();
    NestedWord::from_tagged(&tagged)
}

/// `Insert(n, a, n')` (§2.4): inserts the well-matched nested word `inserted`
/// after every `a`-labelled position of `n`.
///
/// Fails with [`NestedWordError::NotWellMatched`] when `inserted` is not
/// well-matched (the paper requires this so that insertion cannot re-wire the
/// matching of `n`).
pub fn insert(
    n: &NestedWord,
    at: Symbol,
    inserted: &NestedWord,
) -> Result<NestedWord, NestedWordError> {
    if !inserted.is_well_matched() {
        return Err(NestedWordError::NotWellMatched);
    }
    let ins = inserted.to_tagged();
    let mut tagged = Vec::with_capacity(n.len() + ins.len());
    for i in 0..n.len() {
        tagged.push(TaggedSymbol::new(n.kind(i), n.symbol(i)));
        if n.symbol(i) == at {
            tagged.extend(ins.iter().copied());
        }
    }
    Ok(NestedWord::from_tagged(&tagged))
}

/// Deletes every rooted subword whose call is labelled `at` (the subtree
/// deletion operation mentioned at the end of §2.4). Pending calls labelled
/// `at` are deleted together with everything after them.
pub fn delete_subtrees(n: &NestedWord, at: Symbol) -> NestedWord {
    let mut tagged = Vec::new();
    let mut i = 0;
    while i < n.len() {
        if n.kind(i) == PositionKind::Call && n.symbol(i) == at {
            match n.return_successor(i) {
                Some(j) => {
                    i = j + 1;
                    continue;
                }
                None => break,
            }
        }
        tagged.push(TaggedSymbol::new(n.kind(i), n.symbol(i)));
        i += 1;
    }
    NestedWord::from_tagged(&tagged)
}

/// Substitutes, for every `a`-labelled *leaf edge* (a matched call
/// immediately followed by its return, both labelled `a`), the well-matched
/// word `replacement` (tree substitution lifted to nested words, §2.4).
pub fn substitute_leaves(
    n: &NestedWord,
    at: Symbol,
    replacement: &NestedWord,
) -> Result<NestedWord, NestedWordError> {
    if !replacement.is_well_matched() {
        return Err(NestedWordError::NotWellMatched);
    }
    let rep = replacement.to_tagged();
    let mut tagged = Vec::new();
    let mut i = 0;
    while i < n.len() {
        if n.kind(i) == PositionKind::Call
            && n.symbol(i) == at
            && n.return_successor(i) == Some(i + 1)
            && n.symbol(i + 1) == at
        {
            tagged.extend(rep.iter().copied());
            i += 2;
            continue;
        }
        tagged.push(TaggedSymbol::new(n.kind(i), n.symbol(i)));
        i += 1;
    }
    Ok(NestedWord::from_tagged(&tagged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::tagged::{display_nested_word, parse_nested_word};

    fn setup() -> Alphabet {
        Alphabet::ab()
    }

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    #[test]
    fn concat_connects_pending_edges() {
        let mut ab = setup();
        // first word ends with a pending call, second starts with a pending return
        let n = parse(&mut ab, "a <a");
        let m = parse(&mut ab, "b> b");
        let c = concat(&n, &m);
        assert_eq!(display_nested_word(&c, &ab), "a <a b> b");
        assert!(c.is_well_matched());
        assert_eq!(c.return_successor(1), Some(2));
    }

    #[test]
    fn concat_all_associates() {
        let mut ab = setup();
        let w1 = parse(&mut ab, "<a");
        let w2 = parse(&mut ab, "b");
        let w3 = parse(&mut ab, "a>");
        let left = concat(&concat(&w1, &w2), &w3);
        let right = concat(&w1, &concat(&w2, &w3));
        let all = concat_all([&w1, &w2, &w3]);
        assert_eq!(left, right);
        assert_eq!(left, all);
        assert!(all.is_rooted());
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a b a>");
        assert_eq!(concat(&n, &NestedWord::empty()), n);
        assert_eq!(concat(&NestedWord::empty(), &n), n);
    }

    #[test]
    fn subword_turns_matched_edges_pending() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a b b a>");
        // subword covering only the call
        let p = prefix(&n, 2);
        assert!(p.is_pending_call(0));
        // subword covering only the return
        let s = suffix(&n, 2);
        assert!(s.is_pending_return(1));
    }

    #[test]
    fn prefix_concat_suffix_recovers_word() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a <b a a> <b a b> a> <a b a a>");
        for i in 0..=n.len() {
            let rebuilt = concat(&prefix(&n, i), &suffix(&n, i));
            assert_eq!(rebuilt, n, "split at {i}");
        }
    }

    #[test]
    fn subword_out_of_range_is_empty() {
        let mut ab = setup();
        let n = parse(&mut ab, "a b");
        assert!(subword(&n, 5, 9).is_empty());
        assert!(subword(&n, 1, 1).is_empty());
        assert_eq!(subword(&n, 1, 100).len(), 1);
    }

    #[test]
    fn reverse_involution() {
        let mut ab = setup();
        let n = parse(&mut ab, "a a> <b a a> <a <a");
        assert_eq!(reverse(&reverse(&n)), n);
    }

    #[test]
    fn reverse_swaps_calls_and_returns() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a b a>");
        let r = reverse(&n);
        assert_eq!(display_nested_word(&r, &ab), "<a b a>");
        let n = parse(&mut ab, "<a b b>");
        let r = reverse(&n);
        assert_eq!(display_nested_word(&r, &ab), "<b b a>");
    }

    #[test]
    fn reverse_preserves_depth_and_well_matchedness() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a <b a a> <b a b> a>");
        let r = reverse(&n);
        assert_eq!(r.depth(), n.depth());
        assert_eq!(r.is_well_matched(), n.is_well_matched());
        assert_eq!(r.len(), n.len());
    }

    #[test]
    fn insert_after_every_occurrence() {
        let mut ab = setup();
        let n = parse(&mut ab, "a b a");
        let ins = parse(&mut ab, "<b b>");
        let a = ab.lookup("a").unwrap();
        let out = insert(&n, a, &ins).unwrap();
        assert_eq!(display_nested_word(&out, &ab), "a <b b> b a <b b>");
    }

    #[test]
    fn insert_requires_well_matched_argument() {
        let mut ab = setup();
        let n = parse(&mut ab, "a");
        let ins = parse(&mut ab, "<b");
        let a = ab.lookup("a").unwrap();
        assert!(matches!(
            insert(&n, a, &ins),
            Err(NestedWordError::NotWellMatched)
        ));
    }

    #[test]
    fn insert_into_tree_word_is_tree_insertion() {
        let mut ab = setup();
        // tree a(b()) ; insert b() after every a-labelled position
        let n = parse(&mut ab, "<a <b b> a>");
        let ins = parse(&mut ab, "<b b>");
        let a = ab.lookup("a").unwrap();
        let out = insert(&n, a, &ins).unwrap();
        assert_eq!(display_nested_word(&out, &ab), "<a <b b> <b b> a> <b b>");
        assert!(out.is_well_matched());
    }

    #[test]
    fn delete_subtrees_removes_rooted_blocks() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a <b a b> <a a> a>");
        let b = ab.lookup("b").unwrap();
        let out = delete_subtrees(&n, b);
        assert_eq!(display_nested_word(&out, &ab), "<a <a a> a>");
    }

    #[test]
    fn delete_subtrees_with_pending_call_truncates() {
        let mut ab = setup();
        let n = parse(&mut ab, "a <b a");
        let b = ab.lookup("b").unwrap();
        let out = delete_subtrees(&n, b);
        assert_eq!(display_nested_word(&out, &ab), "a");
    }

    #[test]
    fn substitute_leaves_replaces_leaf_edges() {
        let mut ab = setup();
        let n = parse(&mut ab, "<a <b b> <a a> a>");
        let rep = parse(&mut ab, "<b <b b> b>");
        let b = ab.lookup("b").unwrap();
        let out = substitute_leaves(&n, b, &rep).unwrap();
        assert_eq!(display_nested_word(&out, &ab), "<a <b <b b> b> <a a> a>");
    }
}
