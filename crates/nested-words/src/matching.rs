//! Matching relations (§2.1 of the paper).
//!
//! A matching relation of length `ℓ` is a set of edges `i ; j` over
//! positions `{−∞, 1, …, ℓ} × {1, …, ℓ, +∞}` such that edges go forward, no
//! position is shared by two edges in the same role, no position is both a
//! call and a return, and no two edges cross. Edges touching `−∞` or `+∞`
//! are *pending*.
//!
//! Positions are 0-based in this API; the paper uses 1-based positions.

use crate::error::NestedWordError;
use crate::word::PositionKind;

/// A single hierarchical edge of a matching relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// A matched edge `call ; ret` with `call < ret` (0-based positions).
    Matched {
        /// Call position.
        call: usize,
        /// Return position.
        ret: usize,
    },
    /// A pending call `call ; +∞`.
    PendingCall {
        /// Call position.
        call: usize,
    },
    /// A pending return `−∞ ; ret`.
    PendingReturn {
        /// Return position.
        ret: usize,
    },
}

/// A validated matching relation over positions `0..len`.
///
/// The relation records, for every position, whether it is a call, an
/// internal or a return, and for matched calls/returns the index of the
/// partner position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatchingRelation {
    kinds: Vec<PositionKind>,
    /// For a matched call, the return position; for a matched return, the
    /// call position; `u32::MAX` encodes "no partner" (internal or pending).
    partner: Vec<u32>,
}

const NO_PARTNER: u32 = u32::MAX;

impl MatchingRelation {
    /// The empty matching relation of length `len` (every position internal).
    pub fn empty(len: usize) -> Self {
        MatchingRelation {
            kinds: vec![PositionKind::Internal; len],
            partner: vec![NO_PARTNER; len],
        }
    }

    /// Builds a matching relation of length `len` from an explicit edge set,
    /// validating all conditions of §2.1.
    pub fn from_edges(len: usize, edges: &[Edge]) -> Result<Self, NestedWordError> {
        assert!(len < NO_PARTNER as usize, "matching relation too long");
        let mut kinds = vec![PositionKind::Internal; len];
        let mut partner = vec![NO_PARTNER; len];

        let mark = |pos: usize,
                    kind: PositionKind,
                    kinds: &mut Vec<PositionKind>|
         -> Result<(), NestedWordError> {
            if pos >= len {
                return Err(NestedWordError::OutOfRange { position: pos, len });
            }
            match kinds[pos] {
                PositionKind::Internal => {
                    kinds[pos] = kind;
                    Ok(())
                }
                existing if existing == kind => {
                    Err(NestedWordError::DuplicateEndpoint { position: pos })
                }
                _ => Err(NestedWordError::CallAndReturn { position: pos }),
            }
        };

        let mut matched: Vec<(usize, usize)> = Vec::new();
        for e in edges {
            match *e {
                Edge::Matched { call, ret } => {
                    if call >= ret {
                        return Err(NestedWordError::EdgeNotForward { call, ret });
                    }
                    mark(call, PositionKind::Call, &mut kinds)?;
                    mark(ret, PositionKind::Return, &mut kinds)?;
                    partner[call] = ret as u32;
                    partner[ret] = call as u32;
                    matched.push((call, ret));
                }
                Edge::PendingCall { call } => {
                    mark(call, PositionKind::Call, &mut kinds)?;
                }
                Edge::PendingReturn { ret } => {
                    mark(ret, PositionKind::Return, &mut kinds)?;
                }
            }
        }

        // Crossing check: i < i' ≤ j < j' forbidden. Pending edges cannot
        // cross anything because their infinite endpoint absorbs the
        // ordering constraint; for pending calls the paper's condition 3 is
        // never violated with j = +∞, and symmetrically for pending returns.
        // But a matched edge enclosing a pending call whose +∞ endpoint lies
        // beyond its return *is* a crossing: call' < call ≤ ret' < +∞.
        matched.sort_unstable();
        for w in 0..matched.len() {
            let (i, j) = matched[w];
            for &(i2, j2) in matched.iter().skip(w + 1) {
                if i2 > j {
                    break;
                }
                // i < i2 ≤ j; crossing iff j < j2
                if j < j2 {
                    return Err(NestedWordError::CrossingEdges {
                        first: (i, j),
                        second: (i2, j2),
                    });
                }
            }
        }
        // Pending call strictly inside a matched edge crosses it
        // (call < pending ≤ ret < +∞).
        for (pos, kind) in kinds.iter().enumerate() {
            if *kind == PositionKind::Call && partner[pos] == NO_PARTNER {
                for &(i, j) in &matched {
                    if i < pos && pos <= j {
                        return Err(NestedWordError::CrossingEdges {
                            first: (i, j),
                            second: (pos, usize::MAX),
                        });
                    }
                }
            }
            // Pending return strictly inside a matched edge crosses it
            // (−∞ < i ≤ pos < j with the edge (−∞, pos)): i ≤ pos requires
            // checking −∞ < i which always holds, so the violation is
            // i ≤ pos < j ⇒ i < i' is instantiated with i' = −∞; condition 3
            // reads i' < i ≤ j' < j with (i', j') = (−∞, pos): true whenever
            // pos < j and pos ≥ i.
            if *kind == PositionKind::Return && partner[pos] == NO_PARTNER {
                for &(i, j) in &matched {
                    if i <= pos && pos < j {
                        return Err(NestedWordError::CrossingEdges {
                            first: (i, j),
                            second: (usize::MIN, pos),
                        });
                    }
                }
            }
        }

        Ok(MatchingRelation { kinds, partner })
    }

    /// Builds the matching relation induced by a sequence of position kinds,
    /// matching calls and returns like balanced parentheses: a return matches
    /// the innermost open call, returns with no open call are pending, calls
    /// never closed are pending. This is the `w_nw` direction of §2.2 and is
    /// total on all kind sequences.
    pub fn from_kinds(kinds: &[PositionKind]) -> Self {
        let len = kinds.len();
        assert!(len < NO_PARTNER as usize, "matching relation too long");
        let mut partner = vec![NO_PARTNER; len];
        let mut stack: Vec<usize> = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            match k {
                PositionKind::Call => stack.push(i),
                PositionKind::Internal => {}
                PositionKind::Return => {
                    if let Some(c) = stack.pop() {
                        partner[c] = i as u32;
                        partner[i] = c as u32;
                    }
                }
            }
        }
        MatchingRelation {
            kinds: kinds.to_vec(),
            partner,
        }
    }

    /// Length of the relation (number of positions).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if the relation has no positions.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind (call / internal / return) of position `i`.
    pub fn kind(&self, i: usize) -> PositionKind {
        self.kinds[i]
    }

    /// The kinds of all positions, in order.
    pub fn kinds(&self) -> &[PositionKind] {
        &self.kinds
    }

    /// For a matched call `i`, its return-successor; `None` for pending
    /// calls, internals and returns.
    pub fn return_successor(&self, i: usize) -> Option<usize> {
        if self.kinds[i] == PositionKind::Call && self.partner[i] != NO_PARTNER {
            Some(self.partner[i] as usize)
        } else {
            None
        }
    }

    /// For a matched return `i`, its call-predecessor; `None` for pending
    /// returns, internals and calls.
    pub fn call_predecessor(&self, i: usize) -> Option<usize> {
        if self.kinds[i] == PositionKind::Return && self.partner[i] != NO_PARTNER {
            Some(self.partner[i] as usize)
        } else {
            None
        }
    }

    /// Returns `true` if position `i` is a pending call (`i ; +∞`).
    pub fn is_pending_call(&self, i: usize) -> bool {
        self.kinds[i] == PositionKind::Call && self.partner[i] == NO_PARTNER
    }

    /// Returns `true` if position `i` is a pending return (`−∞ ; i`).
    pub fn is_pending_return(&self, i: usize) -> bool {
        self.kinds[i] == PositionKind::Return && self.partner[i] == NO_PARTNER
    }

    /// Returns `true` if every call has a return-successor and every return
    /// has a call-predecessor (§2.1, well-matched).
    pub fn is_well_matched(&self) -> bool {
        self.kinds
            .iter()
            .enumerate()
            .all(|(i, k)| *k == PositionKind::Internal || self.partner[i] != NO_PARTNER)
    }

    /// Enumerates all edges of the relation, matched and pending, in order of
    /// their left endpoint (pending returns first, by position).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            match self.kinds[i] {
                PositionKind::Call => {
                    if let Some(r) = self.return_successor(i) {
                        out.push(Edge::Matched { call: i, ret: r });
                    } else {
                        out.push(Edge::PendingCall { call: i });
                    }
                }
                PositionKind::Return => {
                    if self.call_predecessor(i).is_none() {
                        out.push(Edge::PendingReturn { ret: i });
                    }
                }
                PositionKind::Internal => {}
            }
        }
        out
    }

    /// The nesting depth: the maximum number of properly nested matched
    /// edges (§2.1).
    pub fn depth(&self) -> usize {
        let mut depth = 0usize;
        let mut current = 0usize;
        for i in 0..self.len() {
            match self.kinds[i] {
                PositionKind::Call => {
                    if self.partner[i] != NO_PARTNER {
                        current += 1;
                        depth = depth.max(current);
                    }
                }
                PositionKind::Return => {
                    if self.partner[i] != NO_PARTNER {
                        current = current.saturating_sub(1);
                    }
                }
                PositionKind::Internal => {}
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PositionKind::{Call, Internal, Return};

    #[test]
    fn empty_relation_is_well_matched() {
        let m = MatchingRelation::empty(5);
        assert_eq!(m.len(), 5);
        assert!(m.is_well_matched());
        assert_eq!(m.depth(), 0);
        assert!(m.edges().is_empty());
    }

    #[test]
    fn from_edges_valid_nesting() {
        // <a <b b> a>  => edges (0,3), (1,2)
        let m = MatchingRelation::from_edges(
            4,
            &[
                Edge::Matched { call: 0, ret: 3 },
                Edge::Matched { call: 1, ret: 2 },
            ],
        )
        .unwrap();
        assert_eq!(m.kind(0), Call);
        assert_eq!(m.kind(1), Call);
        assert_eq!(m.kind(2), Return);
        assert_eq!(m.kind(3), Return);
        assert_eq!(m.return_successor(0), Some(3));
        assert_eq!(m.call_predecessor(2), Some(1));
        assert_eq!(m.depth(), 2);
        assert!(m.is_well_matched());
    }

    #[test]
    fn crossing_edges_rejected() {
        let err = MatchingRelation::from_edges(
            4,
            &[
                Edge::Matched { call: 0, ret: 2 },
                Edge::Matched { call: 1, ret: 3 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NestedWordError::CrossingEdges { .. }));
    }

    #[test]
    fn backward_edge_rejected() {
        let err =
            MatchingRelation::from_edges(4, &[Edge::Matched { call: 3, ret: 1 }]).unwrap_err();
        assert!(matches!(err, NestedWordError::EdgeNotForward { .. }));
    }

    #[test]
    fn duplicate_call_rejected() {
        let err = MatchingRelation::from_edges(
            5,
            &[
                Edge::Matched { call: 0, ret: 2 },
                Edge::Matched { call: 0, ret: 4 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NestedWordError::DuplicateEndpoint { .. }));
    }

    #[test]
    fn call_and_return_same_position_rejected() {
        let err = MatchingRelation::from_edges(
            5,
            &[
                Edge::Matched { call: 0, ret: 2 },
                Edge::Matched { call: 2, ret: 4 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NestedWordError::CallAndReturn { .. }));
    }

    #[test]
    fn out_of_range_rejected() {
        let err =
            MatchingRelation::from_edges(3, &[Edge::Matched { call: 1, ret: 5 }]).unwrap_err();
        assert!(matches!(err, NestedWordError::OutOfRange { .. }));
    }

    #[test]
    fn pending_edges_allowed_outside_matched_edges() {
        // a> a <a   : pending return at 0, pending call at 2
        let m = MatchingRelation::from_edges(
            3,
            &[
                Edge::PendingReturn { ret: 0 },
                Edge::PendingCall { call: 2 },
            ],
        )
        .unwrap();
        assert!(m.is_pending_return(0));
        assert_eq!(m.kind(1), Internal);
        assert!(m.is_pending_call(2));
        assert!(!m.is_well_matched());
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn pending_call_inside_matched_edge_crosses() {
        let err = MatchingRelation::from_edges(
            4,
            &[
                Edge::Matched { call: 0, ret: 3 },
                Edge::PendingCall { call: 1 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NestedWordError::CrossingEdges { .. }));
    }

    #[test]
    fn pending_return_inside_matched_edge_crosses() {
        let err = MatchingRelation::from_edges(
            4,
            &[
                Edge::Matched { call: 0, ret: 3 },
                Edge::PendingReturn { ret: 2 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, NestedWordError::CrossingEdges { .. }));
    }

    #[test]
    fn from_kinds_matches_like_parentheses() {
        // a> <a a <a a> a> <a  (paper's n2-like shape)
        let kinds = [Return, Call, Internal, Call, Return, Return, Call];
        let m = MatchingRelation::from_kinds(&kinds);
        assert!(m.is_pending_return(0));
        assert_eq!(m.return_successor(1), Some(5));
        assert_eq!(m.return_successor(3), Some(4));
        assert!(m.is_pending_call(6));
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn from_kinds_roundtrips_through_edges() {
        let kinds = [Call, Call, Return, Internal, Return, Call];
        let m = MatchingRelation::from_kinds(&kinds);
        let edges = m.edges();
        let m2 = MatchingRelation::from_edges(kinds.len(), &edges).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn depth_counts_only_matched_nesting() {
        // <a <a <a : three pending calls, depth 0 per the definition (depth
        // requires return-successors).
        let kinds = [Call, Call, Call];
        let m = MatchingRelation::from_kinds(&kinds);
        assert_eq!(m.depth(), 0);
    }
}
