//! Nested words (§2.1 of the paper).

use crate::alphabet::Symbol;
use crate::error::NestedWordError;
use crate::matching::{Edge, MatchingRelation};
use crate::tagged::{TaggedSymbol, TaggedWord};

/// The kind of a position in a nested word: call, internal, or return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PositionKind {
    /// A call position (start of a hierarchical edge).
    Call,
    /// An internal position (no hierarchical edge).
    Internal,
    /// A return position (end of a hierarchical edge).
    Return,
}

/// A nested word: a linear sequence of symbols together with a matching
/// relation adding non-crossing hierarchical edges (§2.1).
///
/// Positions are 0-based. A nested word with an empty matching relation is an
/// ordinary word; tree words (see [`crate::tree`]) encode ordered trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestedWord {
    symbols: Vec<Symbol>,
    matching: MatchingRelation,
}

impl NestedWord {
    /// The empty nested word.
    pub fn empty() -> Self {
        NestedWord {
            symbols: Vec::new(),
            matching: MatchingRelation::empty(0),
        }
    }

    /// Creates a nested word from a symbol sequence and a matching relation.
    ///
    /// Fails with [`NestedWordError::LengthMismatch`] if the lengths differ.
    pub fn new(symbols: Vec<Symbol>, matching: MatchingRelation) -> Result<Self, NestedWordError> {
        if symbols.len() != matching.len() {
            return Err(NestedWordError::LengthMismatch {
                symbols: symbols.len(),
                matching: matching.len(),
            });
        }
        Ok(NestedWord { symbols, matching })
    }

    /// Creates a nested word from a symbol sequence and an explicit edge set.
    pub fn from_edges(symbols: Vec<Symbol>, edges: &[Edge]) -> Result<Self, NestedWordError> {
        let matching = MatchingRelation::from_edges(symbols.len(), edges)?;
        Ok(NestedWord { symbols, matching })
    }

    /// Creates a flat nested word (empty matching relation) from a plain word
    /// over Σ. This is `w_nw(w)` for an untagged word (§2.2).
    pub fn flat(symbols: Vec<Symbol>) -> Self {
        let len = symbols.len();
        NestedWord {
            symbols,
            matching: MatchingRelation::empty(len),
        }
    }

    /// Creates a nested word from a tagged word (the `w_nw` bijection, §2.2).
    ///
    /// This is total: every tagged word corresponds to exactly one nested
    /// word, with unmatched calls and returns becoming pending edges.
    pub fn from_tagged(tagged: &[TaggedSymbol]) -> Self {
        let mut symbols = Vec::with_capacity(tagged.len());
        let mut kinds = Vec::with_capacity(tagged.len());
        for t in tagged {
            symbols.push(t.symbol());
            kinds.push(t.kind());
        }
        NestedWord {
            symbols,
            matching: MatchingRelation::from_kinds(&kinds),
        }
    }

    /// Converts the nested word to its tagged-word encoding (the `nw_w`
    /// bijection, §2.2).
    pub fn to_tagged(&self) -> TaggedWord {
        (0..self.len())
            .map(|i| TaggedSymbol::new(self.kind(i), self.symbol(i)))
            .collect()
    }

    /// Length of the nested word (number of linear positions).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` for the empty nested word.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol labelling position `i`.
    pub fn symbol(&self, i: usize) -> Symbol {
        self.symbols[i]
    }

    /// All symbols in linear order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The kind of position `i` (call, internal, return).
    pub fn kind(&self, i: usize) -> PositionKind {
        self.matching.kind(i)
    }

    /// The underlying matching relation.
    pub fn matching(&self) -> &MatchingRelation {
        &self.matching
    }

    /// For a matched call `i`, its return-successor.
    pub fn return_successor(&self, i: usize) -> Option<usize> {
        self.matching.return_successor(i)
    }

    /// For a matched return `i`, its call-predecessor.
    pub fn call_predecessor(&self, i: usize) -> Option<usize> {
        self.matching.call_predecessor(i)
    }

    /// Returns `true` if position `i` is a pending call (`i ; +∞`).
    pub fn is_pending_call(&self, i: usize) -> bool {
        self.matching.is_pending_call(i)
    }

    /// Returns `true` if position `i` is a pending return (`−∞ ; i`).
    pub fn is_pending_return(&self, i: usize) -> bool {
        self.matching.is_pending_return(i)
    }

    /// Returns `true` if the nested word is well-matched: no pending calls
    /// and no pending returns (§2.1).
    pub fn is_well_matched(&self) -> bool {
        self.matching.is_well_matched()
    }

    /// Returns `true` if the nested word is rooted: its first position is a
    /// call matched to its last position (`1 ; ℓ` in the paper's 1-based
    /// notation). Rooted words are always well-matched.
    pub fn is_rooted(&self) -> bool {
        !self.is_empty() && self.return_successor(0) == Some(self.len() - 1)
    }

    /// The nesting depth of the word (§2.1).
    pub fn depth(&self) -> usize {
        self.matching.depth()
    }

    /// The call-parent of position `i` (§2.1): `None` if `i` is at top
    /// level, otherwise the smallest call position whose return-successor is
    /// after `i`. (The paper assigns top-level positions the call-parent 0
    /// with 1-based positions; here top level is `None`.)
    pub fn call_parent(&self, i: usize) -> Option<usize> {
        // Walk the paper's inductive definition: the call-parent of position
        // 0 is top-level; moving right, a call pushes, a matched return pops
        // to the call-parent of its call-predecessor, a pending return resets
        // to top level.
        let mut parent: Option<usize> = None;
        for j in 0..=i {
            if j == 0 {
                parent = None;
                continue;
            }
            let prev = j - 1;
            match self.kind(prev) {
                PositionKind::Call => parent = Some(prev),
                PositionKind::Internal => {}
                PositionKind::Return => match self.call_predecessor(prev) {
                    None => parent = None,
                    Some(c) => parent = self.call_parent_fast(c),
                },
            }
        }
        parent
    }

    /// Computes call-parents for every position in a single left-to-right
    /// pass, returning a vector indexed by position.
    pub fn call_parents(&self) -> Vec<Option<usize>> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..self.len() {
            out.push(stack.last().copied());
            match self.kind(i) {
                PositionKind::Call => stack.push(i),
                PositionKind::Internal => {}
                PositionKind::Return => {
                    if self.call_predecessor(i).is_some() {
                        stack.pop();
                    } else {
                        stack.clear();
                    }
                }
            }
        }
        out
    }

    fn call_parent_fast(&self, i: usize) -> Option<usize> {
        self.call_parents().get(i).copied().flatten()
    }

    /// Iterates over positions as `(kind, symbol)` pairs.
    pub fn positions(&self) -> impl Iterator<Item = (PositionKind, Symbol)> + '_ {
        (0..self.len()).map(|i| (self.kind(i), self.symbol(i)))
    }

    /// Counts the occurrences of `s` among the labels of the word.
    pub fn count_symbol(&self, s: Symbol) -> usize {
        self.symbols.iter().filter(|&&x| x == s).count()
    }

    /// Returns the number of call, internal and return positions.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for i in 0..self.len() {
            match self.kind(i) {
                PositionKind::Call => c.0 += 1,
                PositionKind::Internal => c.1 += 1,
                PositionKind::Return => c.2 += 1,
            }
        }
        c
    }
}

impl Default for NestedWord {
    fn default() -> Self {
        NestedWord::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::tagged::parse_tagged;

    fn nw(text: &str) -> (NestedWord, Alphabet) {
        let mut ab = Alphabet::ab();
        let t = parse_tagged(text, &mut ab).unwrap();
        (NestedWord::from_tagged(&t), ab)
    }

    #[test]
    fn empty_word() {
        let w = NestedWord::empty();
        assert!(w.is_empty());
        assert!(w.is_well_matched());
        assert!(!w.is_rooted());
        assert_eq!(w.depth(), 0);
    }

    #[test]
    fn paper_figure1_n1() {
        // n1 = <a <b a a> <b a b> a> <a b a a>   (length 12, depth 2, well-matched)
        let (w, _) = nw("<a <b a a> <b a b> a> <a b a a>");
        assert_eq!(w.len(), 12);
        assert_eq!(w.depth(), 2);
        assert!(w.is_well_matched());
        assert!(!w.is_rooted());
    }

    #[test]
    fn paper_figure1_n2() {
        // n2 = a a> <b a a> <a <a : one unmatched return, two unmatched calls
        let (w, _) = nw("a a> <b a a> <a <a");
        assert!(!w.is_well_matched());
        assert!(w.is_pending_return(1));
        assert!(w.is_pending_call(5));
        assert!(w.is_pending_call(6));
        assert_eq!(w.return_successor(2), Some(4));
    }

    #[test]
    fn paper_figure1_n3_is_rooted() {
        // n3 = <a <a a> <b b> a>  — the tree a(a(), b())
        let (w, _) = nw("<a <a a> <b b> a>");
        assert!(w.is_rooted());
        assert!(w.is_well_matched());
        assert_eq!(w.depth(), 2);
    }

    #[test]
    fn rooted_implies_well_matched() {
        let (w, _) = nw("<a <b b> a>");
        assert!(w.is_rooted());
        assert!(w.is_well_matched());
    }

    #[test]
    fn flat_word_has_no_hierarchy() {
        let w = NestedWord::flat(vec![Symbol(0), Symbol(1), Symbol(0)]);
        assert_eq!(w.len(), 3);
        assert!(w.is_well_matched());
        assert_eq!(w.depth(), 0);
        assert_eq!(w.kind(1), PositionKind::Internal);
    }

    #[test]
    fn tagged_roundtrip() {
        let (w, _) = nw("<a a a> <b <a a> b> a");
        let t = w.to_tagged();
        let w2 = NestedWord::from_tagged(&t);
        assert_eq!(w, w2);
    }

    #[test]
    fn call_parents_single_pass_matches_definition() {
        let (w, _) = nw("<a <b a a> <b a b> a> <a b a a>");
        let parents = w.call_parents();
        for i in 0..w.len() {
            assert_eq!(parents[i], w.call_parent(i), "position {i}");
        }
        // position 2 ('a' inside <b ...) has call-parent 1
        assert_eq!(parents[2], Some(1));
        // position 0 is top level
        assert_eq!(parents[0], None);
        // position 9 (first position after a>) is top level... position 9 is
        // inside the second top-level block <a b a a>, whose call is at 8.
        assert_eq!(parents[9], Some(8));
    }

    #[test]
    fn call_parent_after_pending_return_is_top_level() {
        let (w, _) = nw("<a a> b> a");
        // position 2 is a pending return; position 3 is top level
        assert!(w.is_pending_return(2));
        assert_eq!(w.call_parent(3), None);
    }

    #[test]
    fn kind_counts_and_symbol_counts() {
        let (w, ab) = nw("<a b a> <b b>");
        let (c, i, r) = w.kind_counts();
        assert_eq!((c, i, r), (2, 1, 2));
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert_eq!(w.count_symbol(a), 2);
        assert_eq!(w.count_symbol(b), 3);
    }

    #[test]
    fn length_mismatch_rejected() {
        let m = MatchingRelation::empty(2);
        let err = NestedWord::new(vec![Symbol(0)], m).unwrap_err();
        assert!(matches!(err, NestedWordError::LengthMismatch { .. }));
    }

    #[test]
    fn number_of_matching_relations_is_three_per_position() {
        // §2.2: there are exactly 3^ℓ distinct matching relations of length ℓ.
        // Check exhaustively for ℓ = 3 by enumerating kind sequences.
        use PositionKind::*;
        let kinds = [Call, Internal, Return];
        let mut distinct = std::collections::HashSet::new();
        for a in kinds {
            for b in kinds {
                for c in kinds {
                    distinct.insert(MatchingRelation::from_kinds(&[a, b, c]));
                }
            }
        }
        assert_eq!(distinct.len(), 27);
    }
}
