//! Ordered trees and their encoding as tree words (§2.3 of the paper).
//!
//! An ordered tree over Σ is either empty or a root labelled `a ∈ Σ` with an
//! ordered sequence of non-empty subtrees. The transformation `t_w` encodes a
//! tree as a word over the tagged alphabet by emitting `⟨a`, the encodings of
//! the children in order, then `a⟩`; `t_nw = w_nw ∘ t_w` gives the nested
//! word. A nested word is a *tree word* when it is rooted, has no internal
//! positions and every matched call/return pair carries the same label;
//! `nw_t` inverts `t_nw` on tree words.

use crate::alphabet::{Alphabet, Symbol};
use crate::error::NestedWordError;
use crate::tagged::{TaggedSymbol, TaggedWord};
use crate::word::{NestedWord, PositionKind};

/// An ordered, unranked tree over Σ (§2.3). The `Empty` variant is the empty
/// tree ε; children of a `Node` are required (by construction functions) to
/// be non-empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OrderedTree {
    /// The empty tree ε.
    Empty,
    /// A node labelled with a symbol, carrying an ordered list of children.
    Node {
        /// Root label.
        label: Symbol,
        /// Ordered, non-empty children.
        children: Vec<OrderedTree>,
    },
}

impl OrderedTree {
    /// A leaf labelled `label` (a node with no children).
    pub fn leaf(label: Symbol) -> Self {
        OrderedTree::Node {
            label,
            children: Vec::new(),
        }
    }

    /// A node labelled `label` with the given children; empty children are
    /// silently dropped, matching the paper's requirement that every child of
    /// a node is a non-empty tree.
    pub fn node(label: Symbol, children: Vec<OrderedTree>) -> Self {
        OrderedTree::Node {
            label,
            children: children
                .into_iter()
                .filter(|c| !matches!(c, OrderedTree::Empty))
                .collect(),
        }
    }

    /// Returns `true` for the empty tree ε.
    pub fn is_empty(&self) -> bool {
        matches!(self, OrderedTree::Empty)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            OrderedTree::Empty => 0,
            OrderedTree::Node { children, .. } => {
                1 + children.iter().map(OrderedTree::node_count).sum::<usize>()
            }
        }
    }

    /// Height of the tree: 0 for the empty tree, 1 for a leaf.
    pub fn height(&self) -> usize {
        match self {
            OrderedTree::Empty => 0,
            OrderedTree::Node { children, .. } => {
                1 + children.iter().map(OrderedTree::height).max().unwrap_or(0)
            }
        }
    }

    /// Returns `true` if every node has at most two children.
    pub fn is_binary(&self) -> bool {
        match self {
            OrderedTree::Empty => true,
            OrderedTree::Node { children, .. } => {
                children.len() <= 2 && children.iter().all(OrderedTree::is_binary)
            }
        }
    }

    /// The `t_w` transformation (§2.3): encodes the tree as a tagged word by
    /// the combined top-down/bottom-up traversal (call on entry, return on
    /// exit).
    pub fn to_tagged(&self) -> TaggedWord {
        let mut out = Vec::with_capacity(2 * self.node_count());
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut TaggedWord) {
        match self {
            OrderedTree::Empty => {}
            OrderedTree::Node { label, children } => {
                out.push(TaggedSymbol::Call(*label));
                for c in children {
                    c.encode_into(out);
                }
                out.push(TaggedSymbol::Return(*label));
            }
        }
    }

    /// The `t_nw` transformation (§2.3): encodes the tree as a nested word.
    pub fn to_nested_word(&self) -> NestedWord {
        NestedWord::from_tagged(&self.to_tagged())
    }

    /// The `nw_t` transformation (§2.3): decodes a tree word back into the
    /// ordered tree it encodes. Fails if `n` is not a tree word.
    pub fn from_nested_word(n: &NestedWord) -> Result<OrderedTree, NestedWordError> {
        if n.is_empty() {
            return Ok(OrderedTree::Empty);
        }
        check_tree_word(n)?;
        Ok(decode_range(n, 0, n.len()))
    }

    /// Labels of the frontier (leaves) in left-to-right order.
    pub fn frontier(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.frontier_into(&mut out);
        out
    }

    fn frontier_into(&self, out: &mut Vec<Symbol>) {
        match self {
            OrderedTree::Empty => {}
            OrderedTree::Node { label, children } => {
                if children.is_empty() {
                    out.push(*label);
                } else {
                    for c in children {
                        c.frontier_into(out);
                    }
                }
            }
        }
    }

    /// Renders the tree in the paper's functional syntax `a(b(),c())`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        match self {
            OrderedTree::Empty => "ε".to_string(),
            OrderedTree::Node { label, children } => {
                let name = alphabet.name(*label).unwrap_or("?");
                let inner = children
                    .iter()
                    .map(|c| c.display(alphabet))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{name}({inner})")
            }
        }
    }
}

/// Checks whether a nested word is a *tree word* (§2.3): rooted, without
/// internal positions, and with matching call/return labels.
pub fn is_tree_word(n: &NestedWord) -> bool {
    check_tree_word(n).is_ok()
}

fn check_tree_word(n: &NestedWord) -> Result<(), NestedWordError> {
    if n.is_empty() {
        return Err(NestedWordError::NotATreeWord {
            reason: "empty word is not rooted".into(),
        });
    }
    if !n.is_rooted() {
        return Err(NestedWordError::NotATreeWord {
            reason: "word is not rooted".into(),
        });
    }
    for i in 0..n.len() {
        match n.kind(i) {
            PositionKind::Internal => {
                return Err(NestedWordError::NotATreeWord {
                    reason: format!("internal position at {i}"),
                })
            }
            PositionKind::Call => {
                let j = n.return_successor(i).ok_or(NestedWordError::NotATreeWord {
                    reason: format!("pending call at {i}"),
                })?;
                if n.symbol(i) != n.symbol(j) {
                    return Err(NestedWordError::NotATreeWord {
                        reason: format!("call at {i} and return at {j} carry different labels"),
                    });
                }
            }
            PositionKind::Return => {
                if n.call_predecessor(i).is_none() {
                    return Err(NestedWordError::NotATreeWord {
                        reason: format!("pending return at {i}"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Decodes the tree encoded by positions `start..end` of a tree word, where
/// `start` is a call whose return-successor is `end - 1`.
fn decode_range(n: &NestedWord, start: usize, end: usize) -> OrderedTree {
    debug_assert_eq!(n.return_successor(start), Some(end - 1));
    let label = n.symbol(start);
    let mut children = Vec::new();
    let mut i = start + 1;
    while i < end - 1 {
        let j = n.return_successor(i).expect("tree word call is matched");
        children.push(decode_range(n, i, j + 1));
        i = j + 1;
    }
    OrderedTree::Node { label, children }
}

/// Decodes a sequence of sibling trees (a forest) from a well-matched nested
/// word that contains no internals and has matching labels on every edge.
/// Unlike [`OrderedTree::from_nested_word`], the word need not be rooted.
pub fn forest_from_nested_word(n: &NestedWord) -> Result<Vec<OrderedTree>, NestedWordError> {
    if !n.is_well_matched() {
        return Err(NestedWordError::NotWellMatched);
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < n.len() {
        match n.kind(i) {
            PositionKind::Call => {
                let j = n.return_successor(i).expect("well-matched call");
                if n.symbol(i) != n.symbol(j) {
                    return Err(NestedWordError::NotATreeWord {
                        reason: format!("call at {i} and return at {j} carry different labels"),
                    });
                }
                // Validate the subtree recursively by decoding it.
                let sub_tagged: TaggedWord = (i..=j)
                    .map(|p| TaggedSymbol::new(n.kind(p), n.symbol(p)))
                    .collect();
                let sub = NestedWord::from_tagged(&sub_tagged);
                out.push(OrderedTree::from_nested_word(&sub)?);
                i = j + 1;
            }
            _ => {
                return Err(NestedWordError::NotATreeWord {
                    reason: format!(
                        "unexpected {:?} position at {i} at forest top level",
                        n.kind(i)
                    ),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::tagged::parse_nested_word;

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::ab();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        (ab, a, b)
    }

    #[test]
    fn figure1_tree_roundtrip() {
        // n3 = <a <a a> <b b> a>  is the tree a(a(), b())
        let (mut alphabet, a, b) = ab();
        let tree = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(b)]);
        let n = tree.to_nested_word();
        let expected = parse_nested_word("<a <a a> <b b> a>", &mut alphabet).unwrap();
        assert_eq!(n, expected);
        let back = OrderedTree::from_nested_word(&n).unwrap();
        assert_eq!(back, tree);
        assert_eq!(tree.display(&alphabet), "a(a(),b())");
    }

    #[test]
    fn empty_tree_encodes_to_empty_word() {
        let t = OrderedTree::Empty;
        assert!(t.to_nested_word().is_empty());
        assert_eq!(
            OrderedTree::from_nested_word(&NestedWord::empty()).unwrap(),
            OrderedTree::Empty
        );
    }

    #[test]
    fn node_count_and_height() {
        let (_, a, b) = ab();
        let t = OrderedTree::node(
            a,
            vec![
                OrderedTree::node(b, vec![OrderedTree::leaf(a)]),
                OrderedTree::leaf(b),
            ],
        );
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.height(), 3);
        assert!(t.is_binary());
        assert_eq!(t.to_nested_word().len(), 8); // every node visited twice
        assert_eq!(t.to_nested_word().depth(), t.height());
    }

    #[test]
    fn unranked_trees_supported() {
        let (_, a, b) = ab();
        let t = OrderedTree::node(a, (0..5).map(|_| OrderedTree::leaf(b)).collect());
        assert!(!t.is_binary());
        let n = t.to_nested_word();
        assert!(is_tree_word(&n));
        assert_eq!(OrderedTree::from_nested_word(&n).unwrap(), t);
    }

    #[test]
    fn tree_word_conditions_enforced() {
        let mut alphabet = Alphabet::ab();
        // not rooted
        let n = parse_nested_word("<a a> <b b>", &mut alphabet).unwrap();
        assert!(!is_tree_word(&n));
        // internal position
        let n = parse_nested_word("<a b a>", &mut alphabet).unwrap();
        assert!(!is_tree_word(&n));
        // mismatched labels
        let n = parse_nested_word("<a b>", &mut alphabet).unwrap();
        assert!(!is_tree_word(&n));
        // a genuine tree word
        let n = parse_nested_word("<a <b b> a>", &mut alphabet).unwrap();
        assert!(is_tree_word(&n));
    }

    #[test]
    fn from_nested_word_rejects_non_tree_words() {
        let mut alphabet = Alphabet::ab();
        let n = parse_nested_word("<a b a>", &mut alphabet).unwrap();
        let err = OrderedTree::from_nested_word(&n).unwrap_err();
        assert!(matches!(err, NestedWordError::NotATreeWord { .. }));
    }

    #[test]
    fn forest_decoding() {
        let mut alphabet = Alphabet::ab();
        let n = parse_nested_word("<a a> <b <a a> b>", &mut alphabet).unwrap();
        let forest = forest_from_nested_word(&n).unwrap();
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].node_count(), 1);
        assert_eq!(forest[1].node_count(), 2);
    }

    #[test]
    fn forest_rejects_pending_edges() {
        let mut alphabet = Alphabet::ab();
        let n = parse_nested_word("<a a> <b", &mut alphabet).unwrap();
        assert!(forest_from_nested_word(&n).is_err());
    }

    #[test]
    fn frontier_in_left_to_right_order() {
        let (_, a, b) = ab();
        let t = OrderedTree::node(
            a,
            vec![
                OrderedTree::leaf(a),
                OrderedTree::node(b, vec![OrderedTree::leaf(b), OrderedTree::leaf(a)]),
            ],
        );
        assert_eq!(t.frontier(), vec![a, b, a]);
    }

    #[test]
    fn empty_children_are_dropped() {
        let (_, a, _) = ab();
        let t = OrderedTree::node(a, vec![OrderedTree::Empty, OrderedTree::leaf(a)]);
        assert_eq!(t.node_count(), 2);
    }
}
