//! Error types for the nested-words data model.

use std::fmt;

/// Errors raised while constructing or parsing nested words, matching
/// relations, trees and tagged words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestedWordError {
    /// A matching edge `i ; j` violates `i < j`.
    EdgeNotForward {
        /// Call endpoint of the offending edge.
        call: usize,
        /// Return endpoint of the offending edge.
        ret: usize,
    },
    /// A position participates in more than one edge in the same role.
    DuplicateEndpoint {
        /// The position that appears twice.
        position: usize,
    },
    /// Two edges cross: `i < i' ≤ j < j'`.
    CrossingEdges {
        /// First edge.
        first: (usize, usize),
        /// Second edge.
        second: (usize, usize),
    },
    /// An edge endpoint lies outside the word `1..=len`.
    OutOfRange {
        /// The offending position.
        position: usize,
        /// Length of the word.
        len: usize,
    },
    /// A position would be both a call and a return.
    CallAndReturn {
        /// The offending position.
        position: usize,
    },
    /// The symbol sequence and the matching relation have different lengths.
    LengthMismatch {
        /// Number of symbols supplied.
        symbols: usize,
        /// Length of the matching relation.
        matching: usize,
    },
    /// A parse error in the textual tagged-word syntax.
    Parse {
        /// Byte offset at which parsing failed.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The nested word is not a tree word (required by `nw_t`).
    NotATreeWord {
        /// Explanation of which tree-word condition failed.
        reason: String,
    },
    /// An operation required a well-matched nested word.
    NotWellMatched,
    /// A symbol does not belong to the expected alphabet.
    UnknownSymbol {
        /// The offending symbol name.
        name: String,
    },
    /// Interning one more symbol would exceed the dense `u16` symbol space.
    AlphabetFull {
        /// The maximum number of symbols an alphabet can hold.
        capacity: usize,
    },
}

impl fmt::Display for NestedWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestedWordError::EdgeNotForward { call, ret } => {
                write!(
                    f,
                    "matching edge {call} ; {ret} is not forward (needs call < return)"
                )
            }
            NestedWordError::DuplicateEndpoint { position } => {
                write!(
                    f,
                    "position {position} participates in two matching edges in the same role"
                )
            }
            NestedWordError::CrossingEdges { first, second } => write!(
                f,
                "matching edges {} ; {} and {} ; {} cross",
                first.0, first.1, second.0, second.1
            ),
            NestedWordError::OutOfRange { position, len } => {
                write!(f, "position {position} is outside the word of length {len}")
            }
            NestedWordError::CallAndReturn { position } => {
                write!(f, "position {position} would be both a call and a return")
            }
            NestedWordError::LengthMismatch { symbols, matching } => write!(
                f,
                "symbol sequence has length {symbols} but matching relation has length {matching}"
            ),
            NestedWordError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            NestedWordError::NotATreeWord { reason } => {
                write!(f, "nested word is not a tree word: {reason}")
            }
            NestedWordError::NotWellMatched => {
                write!(f, "operation requires a well-matched nested word")
            }
            NestedWordError::UnknownSymbol { name } => {
                write!(f, "symbol `{name}` does not belong to the alphabet")
            }
            NestedWordError::AlphabetFull { capacity } => {
                write!(
                    f,
                    "alphabet is full: at most {capacity} symbols fit the dense u16 space"
                )
            }
        }
    }
}

impl std::error::Error for NestedWordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NestedWordError::EdgeNotForward { call: 5, ret: 3 };
        assert!(e.to_string().contains("5 ; 3"));
        let e = NestedWordError::CrossingEdges {
            first: (1, 3),
            second: (2, 4),
        };
        assert!(e.to_string().contains("cross"));
        let e = NestedWordError::Parse {
            offset: 7,
            message: "unexpected '>'".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<NestedWordError>();
    }
}
