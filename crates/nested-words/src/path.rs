//! Path words: encoding a linear word as a unary tree (§2.2 and §3.6).
//!
//! `path(a₁…a_ℓ) = w_nw(⟨a₁ … ⟨a_ℓ a_ℓ⟩ … a₁⟩)` is a rooted nested word of
//! depth ℓ. Path languages `path(L)` are the lens through which the paper
//! compares top-down and bottom-up tree automata with nested word automata
//! (Theorem 8, Lemma 3).

use crate::alphabet::Symbol;
use crate::tagged::TaggedSymbol;
use crate::word::{NestedWord, PositionKind};

/// The `path` transformation: encodes a plain word as a unary tree word.
///
/// `path(ε)` is the empty nested word; otherwise the result is rooted and has
/// depth equal to the length of `word`.
pub fn path(word: &[Symbol]) -> NestedWord {
    let mut tagged = Vec::with_capacity(2 * word.len());
    for &s in word {
        tagged.push(TaggedSymbol::Call(s));
    }
    for &s in word.iter().rev() {
        tagged.push(TaggedSymbol::Return(s));
    }
    NestedWord::from_tagged(&tagged)
}

/// Returns `Some(w)` if `n = path(w)` for some word `w`, i.e. `n` is a path
/// word: a tree word in which every node has at most one child.
pub fn unpath(n: &NestedWord) -> Option<Vec<Symbol>> {
    if n.is_empty() {
        return Some(Vec::new());
    }
    let len = n.len();
    if !len.is_multiple_of(2) {
        return None;
    }
    let half = len / 2;
    let mut word = Vec::with_capacity(half);
    for i in 0..half {
        if n.kind(i) != PositionKind::Call {
            return None;
        }
        // the call at depth i must match the return at the mirrored position
        if n.return_successor(i) != Some(len - 1 - i) {
            return None;
        }
        if n.symbol(i) != n.symbol(len - 1 - i) {
            return None;
        }
        word.push(n.symbol(i));
    }
    Some(word)
}

/// Returns `true` if `n` is a path word (`n = path(w)` for some `w`).
pub fn is_path_word(n: &NestedWord) -> bool {
    unpath(n).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::tagged::{display_nested_word, parse_nested_word};
    use crate::tree::is_tree_word;

    #[test]
    fn path_of_empty_word() {
        let n = path(&[]);
        assert!(n.is_empty());
        assert_eq!(unpath(&n), Some(vec![]));
    }

    #[test]
    fn path_structure_matches_paper() {
        let ab = Alphabet::ab();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let n = path(&[a, b, a]);
        assert_eq!(display_nested_word(&n, &ab), "<a <b <a a> b> a>");
        assert!(n.is_rooted());
        assert!(is_tree_word(&n));
        assert_eq!(n.depth(), 3);
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn unpath_inverts_path() {
        let ab = Alphabet::with_size(4);
        let word: Vec<_> = ab.symbols().collect();
        assert_eq!(unpath(&path(&word)), Some(word));
    }

    #[test]
    fn non_path_words_rejected() {
        let mut ab = Alphabet::ab();
        // a tree word but not unary
        let n = parse_nested_word("<a <a a> <b b> a>", &mut ab).unwrap();
        assert!(!is_path_word(&n));
        // odd length
        let n = parse_nested_word("<a a a>", &mut ab).unwrap();
        assert!(!is_path_word(&n));
        // mismatched labels in the mirror
        let n = parse_nested_word("<a <b a> b>", &mut ab).unwrap();
        assert!(!is_path_word(&n));
        // flat word
        let n = parse_nested_word("a a", &mut ab).unwrap();
        assert!(!is_path_word(&n));
    }

    #[test]
    fn path_depth_equals_word_length() {
        let ab = Alphabet::ab();
        let a = ab.lookup("a").unwrap();
        for len in 0..20 {
            let w = vec![a; len];
            assert_eq!(path(&w).depth(), len);
        }
    }
}
