//! Random generators for nested words, trees and documents.
//!
//! The generators produce the synthetic workloads used by the test suite and
//! the benchmark harness (experiments E1–E15 in `DESIGN.md`): random nested
//! words with controlled length/depth, random ordered trees, random plain
//! words, and structured "program trace" words with call/return discipline.

use crate::alphabet::{Alphabet, Symbol};
use crate::rng::Prng;
use crate::tagged::TaggedSymbol;
use crate::tree::OrderedTree;
use crate::word::NestedWord;

/// Configuration for [`random_nested_word`].
#[derive(Debug, Clone, Copy)]
pub struct NestedWordConfig {
    /// Target length (exact).
    pub len: usize,
    /// Probability of opening a call at any position (subject to remaining
    /// budget).
    pub call_prob: f64,
    /// Probability of emitting a return when at least one call is open.
    pub return_prob: f64,
    /// Whether pending calls/returns are allowed; if `false` the generated
    /// word is always well-matched.
    pub allow_pending: bool,
    /// Maximum nesting depth (`usize::MAX` for unbounded).
    pub max_depth: usize,
}

impl Default for NestedWordConfig {
    fn default() -> Self {
        NestedWordConfig {
            len: 64,
            call_prob: 0.3,
            return_prob: 0.3,
            allow_pending: false,
            max_depth: usize::MAX,
        }
    }
}

/// Generates a random nested word over `alphabet` with the given shape
/// configuration, deterministically from `seed`.
pub fn random_nested_word(alphabet: &Alphabet, config: NestedWordConfig, seed: u64) -> NestedWord {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = Prng::new(seed);
    let sigma = alphabet.len();
    let mut tagged = Vec::with_capacity(config.len);
    let mut open = 0usize; // currently open (to-be-matched) calls
    for i in 0..config.len {
        let remaining = config.len - i;
        let sym = Symbol(rng.below(sigma) as u16);
        // If we must close all open calls to stay well-matched, do so.
        let must_close = !config.allow_pending && open >= remaining;
        let can_open = open < config.max_depth && (config.allow_pending || remaining > open + 1);
        let t = if must_close && open > 0 {
            open -= 1;
            TaggedSymbol::Return(sym)
        } else if can_open && rng.bool(config.call_prob) {
            open += 1;
            TaggedSymbol::Call(sym)
        } else if open > 0 && rng.bool(config.return_prob) {
            open -= 1;
            TaggedSymbol::Return(sym)
        } else if config.allow_pending && rng.bool(0.05) {
            TaggedSymbol::Return(sym) // pending return
        } else {
            TaggedSymbol::Internal(sym)
        };
        tagged.push(t);
    }
    NestedWord::from_tagged(&tagged)
}

/// Generates a random *well-matched* nested word of exactly `len` positions.
pub fn random_well_matched(alphabet: &Alphabet, len: usize, seed: u64) -> NestedWord {
    random_nested_word(
        alphabet,
        NestedWordConfig {
            len,
            allow_pending: false,
            ..NestedWordConfig::default()
        },
        seed,
    )
}

/// Generates a random plain (flat) word of length `len` over `alphabet`.
pub fn random_flat_word(alphabet: &Alphabet, len: usize, seed: u64) -> Vec<Symbol> {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = Prng::new(seed);
    let sigma = alphabet.len();
    (0..len).map(|_| Symbol(rng.below(sigma) as u16)).collect()
}

/// Generates a random ordered tree with approximately `nodes` nodes and
/// branching factor at most `max_children`.
pub fn random_tree(
    alphabet: &Alphabet,
    nodes: usize,
    max_children: usize,
    seed: u64,
) -> OrderedTree {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = Prng::new(seed);
    let mut budget = nodes.max(1);
    random_tree_inner(alphabet, &mut budget, max_children.max(1), &mut rng)
}

fn random_tree_inner(
    alphabet: &Alphabet,
    budget: &mut usize,
    max_children: usize,
    rng: &mut Prng,
) -> OrderedTree {
    if *budget == 0 {
        return OrderedTree::Empty;
    }
    *budget -= 1;
    let label = Symbol(rng.below(alphabet.len()) as u16);
    let n_children = rng.below(max_children + 1).min(*budget);
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        if *budget == 0 {
            break;
        }
        let c = random_tree_inner(alphabet, budget, max_children, rng);
        if !c.is_empty() {
            children.push(c);
        }
    }
    OrderedTree::Node { label, children }
}

/// Generates a deep, narrow nested word: `depth` nested call/return pairs
/// with `width` internal positions inside each level. Used to exercise the
/// space ∝ depth claims of §3.2 (experiment E12).
pub fn deep_word(alphabet: &Alphabet, depth: usize, width: usize, seed: u64) -> NestedWord {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = Prng::new(seed);
    let sigma = alphabet.len();
    let mut tagged = Vec::with_capacity(depth * (width + 2));
    let mut stack = Vec::with_capacity(depth);
    for _ in 0..depth {
        let s = Symbol(rng.below(sigma) as u16);
        tagged.push(TaggedSymbol::Call(s));
        stack.push(s);
        for _ in 0..width {
            tagged.push(TaggedSymbol::Internal(Symbol(rng.below(sigma) as u16)));
        }
    }
    while let Some(s) = stack.pop() {
        tagged.push(TaggedSymbol::Return(s));
    }
    NestedWord::from_tagged(&tagged)
}

/// Generates a wide, shallow nested word: `blocks` consecutive rooted blocks,
/// each of depth 1 and containing `width` internals.
pub fn wide_word(alphabet: &Alphabet, blocks: usize, width: usize, seed: u64) -> NestedWord {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    let mut rng = Prng::new(seed);
    let sigma = alphabet.len();
    let mut tagged = Vec::with_capacity(blocks * (width + 2));
    for _ in 0..blocks {
        let s = Symbol(rng.below(sigma) as u16);
        tagged.push(TaggedSymbol::Call(s));
        for _ in 0..width {
            tagged.push(TaggedSymbol::Internal(Symbol(rng.below(sigma) as u16)));
        }
        tagged.push(TaggedSymbol::Return(s));
    }
    NestedWord::from_tagged(&tagged)
}

/// Generates a "program trace" nested word over an alphabet whose first
/// `procs` symbols are procedure names and remaining symbols are statements:
/// calls and returns are labelled by procedures, internals by statements.
/// Models the executions-of-structured-programs workload from §1.
pub fn program_trace(
    procs: usize,
    statements: usize,
    len: usize,
    max_depth: usize,
    seed: u64,
) -> (Alphabet, NestedWord) {
    let mut names: Vec<String> = (0..procs).map(|i| format!("p{i}")).collect();
    names.extend((0..statements).map(|i| format!("s{i}")));
    let alphabet = Alphabet::from_names(names);
    let mut rng = Prng::new(seed);
    let mut tagged = Vec::with_capacity(len);
    let mut stack: Vec<Symbol> = Vec::new();
    for i in 0..len {
        let remaining = len - i;
        if stack.len() >= remaining {
            // must unwind to finish well-matched
            let s = stack.pop().expect("non-empty stack");
            tagged.push(TaggedSymbol::Return(s));
            continue;
        }
        let roll: f64 = rng.f64();
        if roll < 0.25 && stack.len() < max_depth && remaining > stack.len() + 1 {
            let p = Symbol(rng.below(procs) as u16);
            stack.push(p);
            tagged.push(TaggedSymbol::Call(p));
        } else if roll < 0.45 && !stack.is_empty() {
            let s = stack.pop().expect("non-empty stack");
            tagged.push(TaggedSymbol::Return(s));
        } else {
            let s = Symbol((procs + rng.below(statements)) as u16);
            tagged.push(TaggedSymbol::Internal(s));
        }
    }
    while let Some(s) = stack.pop() {
        tagged.push(TaggedSymbol::Return(s));
    }
    (alphabet, NestedWord::from_tagged(&tagged))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_well_matched_is_well_matched() {
        let ab = Alphabet::with_size(3);
        for seed in 0..20 {
            let w = random_well_matched(&ab, 100, seed);
            assert_eq!(w.len(), 100);
            assert!(w.is_well_matched(), "seed {seed}");
        }
    }

    #[test]
    fn random_nested_word_is_deterministic_in_seed() {
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 50,
            allow_pending: true,
            ..Default::default()
        };
        assert_eq!(
            random_nested_word(&ab, cfg, 7),
            random_nested_word(&ab, cfg, 7)
        );
    }

    #[test]
    fn max_depth_is_respected() {
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 200,
            call_prob: 0.9,
            return_prob: 0.05,
            allow_pending: false,
            max_depth: 3,
        };
        for seed in 0..5 {
            let w = random_nested_word(&ab, cfg, seed);
            assert!(w.depth() <= 3, "seed {seed} depth {}", w.depth());
        }
    }

    #[test]
    fn random_tree_has_requested_size() {
        let ab = Alphabet::with_size(4);
        let t = random_tree(&ab, 50, 4, 3);
        assert!(t.node_count() >= 1 && t.node_count() <= 50);
        let n = t.to_nested_word();
        assert!(crate::tree::is_tree_word(&n));
    }

    #[test]
    fn deep_word_depth_and_length() {
        let ab = Alphabet::ab();
        let w = deep_word(&ab, 10, 3, 0);
        assert_eq!(w.depth(), 10);
        assert_eq!(w.len(), 10 * 4 + 10);
        assert!(w.is_well_matched());
    }

    #[test]
    fn wide_word_depth_is_one() {
        let ab = Alphabet::ab();
        let w = wide_word(&ab, 25, 2, 0);
        assert_eq!(w.depth(), 1);
        assert_eq!(w.len(), 25 * 4);
        assert!(w.is_well_matched());
    }

    #[test]
    fn program_trace_is_well_matched_and_calls_are_procs() {
        let (ab, w) = program_trace(3, 5, 200, 10, 11);
        assert!(w.is_well_matched());
        assert_eq!(ab.len(), 8);
        for i in 0..w.len() {
            if w.kind(i) != crate::word::PositionKind::Internal {
                assert!(
                    w.symbol(i).index() < 3,
                    "calls/returns labelled by procedures"
                );
            }
        }
    }

    #[test]
    fn random_flat_word_length() {
        let ab = Alphabet::with_size(5);
        let w = random_flat_word(&ab, 33, 1);
        assert_eq!(w.len(), 33);
        assert!(w.iter().all(|s| s.index() < 5));
    }
}
