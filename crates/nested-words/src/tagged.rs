//! Tagged words and the `nw_w` / `w_nw` bijection (§2.2 of the paper).
//!
//! A nested word over Σ is encoded as a word over the tagged alphabet
//! Σ̂ = { ⟨a, a, a⟩ : a ∈ Σ }: calls become `⟨a`, internals stay `a`, returns
//! become `a⟩`. The encoding is a bijection between nested words and tagged
//! words, because unmatched tags simply become pending edges.
//!
//! The crate also provides a human-readable text syntax used by tests,
//! examples and documentation: tokens separated by whitespace, where `<a`
//! denotes a call, `a` an internal and `a>` a return.

use crate::alphabet::{Alphabet, Symbol};
use crate::error::NestedWordError;
use crate::word::{NestedWord, PositionKind};

/// One letter of the tagged alphabet Σ̂: a symbol of Σ together with its
/// position type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaggedSymbol {
    /// `⟨a` — a call labelled `a`.
    Call(Symbol),
    /// `a` — an internal labelled `a`.
    Internal(Symbol),
    /// `a⟩` — a return labelled `a`.
    Return(Symbol),
}

impl TaggedSymbol {
    /// Builds a tagged symbol from a kind and a symbol.
    pub fn new(kind: PositionKind, symbol: Symbol) -> Self {
        match kind {
            PositionKind::Call => TaggedSymbol::Call(symbol),
            PositionKind::Internal => TaggedSymbol::Internal(symbol),
            PositionKind::Return => TaggedSymbol::Return(symbol),
        }
    }

    /// The position kind carried by the tag.
    pub fn kind(self) -> PositionKind {
        match self {
            TaggedSymbol::Call(_) => PositionKind::Call,
            TaggedSymbol::Internal(_) => PositionKind::Internal,
            TaggedSymbol::Return(_) => PositionKind::Return,
        }
    }

    /// The underlying Σ-symbol.
    pub fn symbol(self) -> Symbol {
        match self {
            TaggedSymbol::Call(s) | TaggedSymbol::Internal(s) | TaggedSymbol::Return(s) => s,
        }
    }

    /// Renders the tag in the text syntax (`<a`, `a`, `a>`).
    pub fn display(self, alphabet: &Alphabet) -> String {
        let name = alphabet.name(self.symbol()).unwrap_or("?").to_string();
        match self {
            TaggedSymbol::Call(_) => format!("<{name}"),
            TaggedSymbol::Internal(_) => name,
            TaggedSymbol::Return(_) => format!("{name}>"),
        }
    }

    /// The dense index of this tagged symbol in the tagged alphabet Σ̂ of an
    /// alphabet with `sigma` symbols: calls occupy `0..sigma`, internals
    /// `sigma..2·sigma`, returns `2·sigma..3·sigma`.
    ///
    /// Word automata over Σ̂ (Theorem 2 and the succinctness experiments) use
    /// this indexing.
    pub fn tagged_index(self, sigma: usize) -> usize {
        match self {
            TaggedSymbol::Call(s) => s.index(),
            TaggedSymbol::Internal(s) => sigma + s.index(),
            TaggedSymbol::Return(s) => 2 * sigma + s.index(),
        }
    }

    /// Inverse of [`TaggedSymbol::tagged_index`].
    pub fn from_tagged_index(idx: usize, sigma: usize) -> Self {
        assert!(idx < 3 * sigma, "tagged index out of range");
        if idx < sigma {
            TaggedSymbol::Call(Symbol(idx as u16))
        } else if idx < 2 * sigma {
            TaggedSymbol::Internal(Symbol((idx - sigma) as u16))
        } else {
            TaggedSymbol::Return(Symbol((idx - 2 * sigma) as u16))
        }
    }
}

/// A word over the tagged alphabet Σ̂.
pub type TaggedWord = Vec<TaggedSymbol>;

/// The `nw_w` transformation (§2.2): encodes a nested word as a tagged word.
pub fn nw_w(n: &NestedWord) -> TaggedWord {
    n.to_tagged()
}

/// The `w_nw` transformation (§2.2): decodes a tagged word into the unique
/// nested word it represents. Total on all tagged words.
pub fn w_nw(tagged: &[TaggedSymbol]) -> NestedWord {
    NestedWord::from_tagged(tagged)
}

/// Parses the text syntax for tagged words: whitespace-separated tokens,
/// each `"<name"` (call), `"name"` (internal) or `"name>"` (return).
/// Symbol names are interned into `alphabet`.
pub fn parse_tagged(text: &str, alphabet: &mut Alphabet) -> Result<TaggedWord, NestedWordError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for token in text.split_whitespace() {
        offset = text[offset..]
            .find(token)
            .map(|p| offset + p)
            .unwrap_or(offset);
        let tagged = parse_token(token, offset, alphabet)?;
        out.push(tagged);
        offset += token.len();
    }
    Ok(out)
}

fn parse_token(
    token: &str,
    offset: usize,
    alphabet: &mut Alphabet,
) -> Result<TaggedSymbol, NestedWordError> {
    let (kind, name) = if let Some(rest) = token.strip_prefix('<') {
        (PositionKind::Call, rest)
    } else if let Some(rest) = token.strip_suffix('>') {
        (PositionKind::Return, rest)
    } else {
        (PositionKind::Internal, token)
    };
    if name.is_empty() || name.contains('<') || name.contains('>') {
        return Err(NestedWordError::Parse {
            offset,
            message: format!("malformed token `{token}`"),
        });
    }
    // The fallible variant: parsing already returns `Result`, so a full
    // alphabet surfaces as a typed `AlphabetFull` error instead of a panic
    // (families sweeps and tests parse untrusted word texts through here).
    let s = alphabet.try_intern(name)?;
    Ok(TaggedSymbol::new(kind, s))
}

/// Parses the text syntax directly into a [`NestedWord`].
pub fn parse_nested_word(
    text: &str,
    alphabet: &mut Alphabet,
) -> Result<NestedWord, NestedWordError> {
    Ok(w_nw(&parse_tagged(text, alphabet)?))
}

/// Renders a nested word in the text syntax using `alphabet` for names.
pub fn display_nested_word(n: &NestedWord, alphabet: &Alphabet) -> String {
    n.to_tagged()
        .iter()
        .map(|t| t.display(alphabet))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let mut ab = Alphabet::new();
        let text = "<a <b a a> <b a b> a> <a b a a>";
        let w = parse_nested_word(text, &mut ab).unwrap();
        assert_eq!(display_nested_word(&w, &ab), text);
    }

    #[test]
    fn w_nw_and_nw_w_are_mutually_inverse() {
        let mut ab = Alphabet::new();
        let t = parse_tagged("a a> <b a a> <a <a", &mut ab).unwrap();
        let n = w_nw(&t);
        assert_eq!(nw_w(&n), t);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        let mut ab = Alphabet::new();
        assert!(parse_tagged("<a> b", &mut ab).is_err());
        assert!(parse_tagged("<", &mut ab).is_err());
        assert!(parse_tagged("a<b", &mut ab).is_err());
    }

    #[test]
    fn tagged_index_bijection() {
        let sigma = 5;
        for idx in 0..3 * sigma {
            let t = TaggedSymbol::from_tagged_index(idx, sigma);
            assert_eq!(t.tagged_index(sigma), idx);
        }
    }

    #[test]
    fn tagged_index_partitions_by_kind() {
        let sigma = 3;
        assert_eq!(TaggedSymbol::Call(Symbol(2)).tagged_index(sigma), 2);
        assert_eq!(TaggedSymbol::Internal(Symbol(0)).tagged_index(sigma), 3);
        assert_eq!(TaggedSymbol::Return(Symbol(2)).tagged_index(sigma), 8);
    }

    #[test]
    fn display_uses_alphabet_names() {
        let mut ab = Alphabet::new();
        let open = parse_tagged("<open close> inner", &mut ab).unwrap();
        assert_eq!(open[0].display(&ab), "<open");
        assert_eq!(open[1].display(&ab), "close>");
        assert_eq!(open[2].display(&ab), "inner");
    }

    #[test]
    fn parse_surfaces_full_alphabet_as_typed_error() {
        use crate::error::NestedWordError;
        let mut ab = Alphabet::new();
        for i in 0..Alphabet::MAX_SYMBOLS {
            ab.try_intern(&format!("s{i}")).unwrap();
        }
        // A fresh name no longer fits: a typed error, not a panic.
        let err = parse_tagged("<overflow", &mut ab).unwrap_err();
        assert!(matches!(err, NestedWordError::AlphabetFull { .. }));
        // Already-interned names still parse on the full alphabet.
        assert!(parse_tagged("<s0 s1 s2>", &mut ab).is_ok());
    }

    #[test]
    fn empty_text_parses_to_empty_word() {
        let mut ab = Alphabet::new();
        let w = parse_nested_word("   ", &mut ab).unwrap();
        assert!(w.is_empty());
    }
}
