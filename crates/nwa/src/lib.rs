//! # nwa — nested word automata
//!
//! The primary contribution of *"Marrying Words and Trees"* (Rajeev Alur,
//! PODS 2007): finite-state acceptors over nested words that process both the
//! linear and the hierarchical structure of the input.
//!
//! A (deterministic) nested word automaton has three transition functions: a
//! call transition `δc : Q × Σ → Q × Q` that propagates one state along the
//! linear edge and one along the hierarchical edge, an internal transition
//! `δi : Q × Σ → Q`, and a return transition `δr : Q × Q × Σ → Q` that joins
//! the states arriving on the linear and hierarchical edges (§3.1).
//!
//! The crate provides:
//!
//! * [`Nwa`] — deterministic automata, linear-time membership and a
//!   streaming runner whose memory is proportional to the nesting depth;
//! * [`Nnwa`] — nondeterministic automata, polynomial membership via
//!   on-the-fly summaries and determinization with the `2^{s²}` summary-set
//!   construction (§3.2);
//! * streaming runs for all three acceptor models ([`StreamingRun`],
//!   [`NnwaStreamingRun`], [`JoinlessStreamingRun`]) behind the
//!   `automata-core` [`StreamAcceptor`](automata_core::StreamAcceptor)
//!   trait: one event at a time, memory proportional to the nesting depth;
//! * compiled execution engines ([`compile`]) behind the `automata-core`
//!   [`Compile`](automata_core::Compile) trait: [`CompiledNwa`] lowers a
//!   deterministic NWA into premultiplied dense `u32` tables, and
//!   [`CompiledSummary`] runs the nondeterministic models through a
//!   memoized summary-set subset engine;
//! * boolean operations, emptiness, inclusion and equivalence ([`boolean`],
//!   [`decision`]);
//! * compiled multi-query sets ([`multi`]) behind the `automata-core`
//!   [`MultiCompile`](automata_core::MultiCompile) trait: [`QuerySet`]
//!   decides M queries per event in one pass — a shared product table with
//!   per-state accept masks for small sets, M engines in lockstep past the
//!   table-size cap — and round-trips through `Persist` like any compiled
//!   artifact;
//! * the restricted classes of §3.3–§3.6 and the constructions of
//!   Theorems 1, 4 and 7: [`weak`], [`flat`], [`bottom_up`], [`joinless`];
//! * state reduction by congruence refinement ([`minimize`]), behind the
//!   `automata-core` [`Minimize`](automata_core::Minimize) trait — exact on
//!   flat automata, a sound quotient in general;
//! * emptiness witness extraction ([`witness`]), behind the `automata-core`
//!   [`Witness`](automata_core::Witness) trait: shortest derivations over
//!   the call/return summary relation reconstruct a concrete accepted
//!   nested word for [`Nwa`], [`Nnwa`] and [`JoinlessNwa`] (the latter via
//!   its exact [`JoinlessNwa::to_nnwa`] return-relation expansion);
//! * the language families used in the succinctness theorems ([`families`]);
//! * the unified suite API: fluent construction via [`NwaBuilder`] /
//!   [`NnwaBuilder`] ([`builder`]) and the `automata-core` trait
//!   implementations ([`api`]) behind `query::{contains, is_empty,
//!   subset_eq, equals}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod automaton;
pub mod boolean;
pub mod bottom_up;
pub mod builder;
pub mod compile;
pub mod decision;
pub mod families;
pub mod flat;
pub mod joinless;
pub mod minimize;
pub mod multi;
pub mod nondet;
pub mod persist;
pub mod summary;
pub mod weak;
pub mod witness;

pub use automaton::{Nwa, StreamingRun};
pub use builder::{NnwaBuilder, NwaBuilder};
pub use compile::{CompiledNwa, CompiledSummary};
pub use joinless::{JoinlessNwa, JoinlessStreamingRun};
pub use multi::{QuerySet, QuerySetBackend, QuerySetLane, QuerySetRunState};
pub use nondet::{Nnwa, NnwaStreamingRun};
