//! Boolean and word/tree closure operations on regular languages of nested
//! words (§3.2 of the paper).
//!
//! * complement — flip acceptance of a deterministic NWA (determinize first
//!   for nondeterministic input);
//! * intersection / union — product constructions, both deterministic and
//!   nondeterministic;
//! * reversal — transition reversal, valid over well-matched nested words
//!   (pending edges flip direction under reversal; the general construction
//!   needs extra bookkeeping and is documented as out of scope).

use crate::automaton::Nwa;
use crate::nondet::Nnwa;
use nested_words::Symbol;

/// Complement of a deterministic NWA: the same automaton with acceptance
/// flipped (deterministic NWAs have exactly one run per word, §3.1).
pub fn complement(nwa: &Nwa) -> Nwa {
    let mut out = nwa.clone();
    for q in 0..out.num_states() {
        let acc = out.is_accepting(q);
        out.set_accepting(q, !acc);
    }
    out
}

/// Product of two deterministic NWAs; `combine` decides acceptance of a pair
/// of states.
pub fn product(a: &Nwa, b: &Nwa, combine: impl Fn(bool, bool) -> bool) -> Nwa {
    assert_eq!(a.sigma(), b.sigma(), "product requires equal alphabets");
    let nb = b.num_states();
    let pair = |qa: usize, qb: usize| qa * nb + qb;
    let mut out = Nwa::new(
        a.num_states() * nb,
        a.sigma(),
        pair(a.initial(), b.initial()),
    );
    for qa in 0..a.num_states() {
        for qb in 0..nb {
            let q = pair(qa, qb);
            out.set_accepting(q, combine(a.is_accepting(qa), b.is_accepting(qb)));
            for s in 0..a.sigma() {
                let s = Symbol(s as u16);
                out.set_internal(q, s, pair(a.internal(qa, s), b.internal(qb, s)));
                out.set_call(
                    q,
                    s,
                    pair(a.call_linear(qa, s), b.call_linear(qb, s)),
                    pair(a.call_hier(qa, s), b.call_hier(qb, s)),
                );
            }
        }
    }
    for la in 0..a.num_states() {
        for lb in 0..nb {
            for ha in 0..a.num_states() {
                for hb in 0..nb {
                    for s in 0..a.sigma() {
                        let s = Symbol(s as u16);
                        out.set_return(
                            pair(la, lb),
                            pair(ha, hb),
                            s,
                            pair(a.ret(la, ha, s), b.ret(lb, hb, s)),
                        );
                    }
                }
            }
        }
    }
    out
}

/// Intersection of two deterministic NWAs.
pub fn intersect(a: &Nwa, b: &Nwa) -> Nwa {
    product(a, b, |x, y| x && y)
}

/// Union of two deterministic NWAs.
pub fn union(a: &Nwa, b: &Nwa) -> Nwa {
    product(a, b, |x, y| x || y)
}

/// Union of two nondeterministic NWAs by disjoint union of their state
/// spaces.
pub fn union_nondet(a: &Nnwa, b: &Nnwa) -> Nnwa {
    assert_eq!(a.sigma(), b.sigma(), "union requires equal alphabets");
    let offset = a.num_states();
    let mut out = Nnwa::new(a.num_states() + b.num_states(), a.sigma());
    for q in a.initial_states() {
        out.add_initial(q);
    }
    for q in b.initial_states() {
        out.add_initial(q + offset);
    }
    for q in 0..a.num_states() {
        if a.is_accepting(q) {
            out.add_accepting(q);
        }
    }
    for q in 0..b.num_states() {
        if b.is_accepting(q) {
            out.add_accepting(q + offset);
        }
    }
    for &(q, s, l, h) in a.calls() {
        out.add_call(q, s, l, h);
    }
    for &(q, s, t) in a.internals() {
        out.add_internal(q, s, t);
    }
    for &(l, h, s, t) in a.returns() {
        out.add_return(l, h, s, t);
    }
    for &(q, s, l, h) in b.calls() {
        out.add_call(q + offset, s, l + offset, h + offset);
    }
    for &(q, s, t) in b.internals() {
        out.add_internal(q + offset, s, t + offset);
    }
    for &(l, h, s, t) in b.returns() {
        out.add_return(l + offset, h + offset, s, t + offset);
    }
    out
}

/// Intersection of two nondeterministic NWAs by the pairing construction.
pub fn intersect_nondet(a: &Nnwa, b: &Nnwa) -> Nnwa {
    assert_eq!(
        a.sigma(),
        b.sigma(),
        "intersection requires equal alphabets"
    );
    let nb = b.num_states();
    let pair = |qa: usize, qb: usize| qa * nb + qb;
    let mut out = Nnwa::new(a.num_states() * nb, a.sigma());
    for qa in a.initial_states() {
        for qb in b.initial_states() {
            out.add_initial(pair(qa, qb));
        }
    }
    for qa in 0..a.num_states() {
        for qb in 0..nb {
            if a.is_accepting(qa) && b.is_accepting(qb) {
                out.add_accepting(pair(qa, qb));
            }
        }
    }
    for &(qa, s, la, ha) in a.calls() {
        for &(qb, s2, lb, hb) in b.calls() {
            if s == s2 {
                out.add_call(pair(qa, qb), s, pair(la, lb), pair(ha, hb));
            }
        }
    }
    for &(qa, s, ta) in a.internals() {
        for &(qb, s2, tb) in b.internals() {
            if s == s2 {
                out.add_internal(pair(qa, qb), s, pair(ta, tb));
            }
        }
    }
    for &(la, ha, s, ta) in a.returns() {
        for &(lb, hb, s2, tb) in b.returns() {
            if s == s2 {
                out.add_return(pair(la, lb), pair(ha, hb), s, pair(ta, tb));
            }
        }
    }
    out
}

/// Reversal of a nondeterministic NWA.
///
/// Over **well-matched** nested words this accepts exactly the reverses of
/// the words accepted by `a` (calls and returns swap roles, initial and
/// accepting states swap). Words with pending edges are outside the contract
/// of this construction; the general closure (stated in §3.2 / \[4\]) needs
/// additional tracking of the pending boundary.
pub fn reverse_nondet(a: &Nnwa) -> Nnwa {
    let mut out = Nnwa::new(a.num_states(), a.sigma());
    for q in 0..a.num_states() {
        if a.is_accepting(q) {
            out.add_initial(q);
        }
    }
    for q in a.initial_states() {
        out.add_accepting(q);
    }
    // old internal (q, a, q') → new internal (q', a, q)
    for &(q, s, t) in a.internals() {
        out.add_internal(t, s, q);
    }
    // old call (q, a, ql, qh) → new return (ql, qh, a, q)
    for &(q, s, ql, qh) in a.calls() {
        out.add_return(ql, qh, s, q);
    }
    // old return (ql, qh, a, q') → new call (q', a, ql, qh)
    for &(ql, qh, s, t) in a.returns() {
        out.add_call(t, s, ql, qh);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::ops::reverse as reverse_word;
    use nested_words::tagged::parse_nested_word;
    use nested_words::{Alphabet, NestedWord};

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// Deterministic NWA accepting words whose depth never exceeds 1
    /// (and that contain no pending returns beneath an open call — depth
    /// tracking only).
    fn depth_at_most_one() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        // states: 0 = depth 0, 1 = depth 1, 2 = dead
        let mut m = Nwa::new(3, 2, 0);
        m.set_accepting(0, true);
        m.set_accepting(1, true);
        m.set_all_transitions_to(2, 2);
        for s in [a, b] {
            m.set_internal(0, s, 0);
            m.set_internal(1, s, 1);
            m.set_call(0, s, 1, 0);
            m.set_call(1, s, 2, 0);
            for h in 0..3 {
                m.set_return(1, h, s, 0);
                m.set_return(0, h, s, 0); // pending return at top level: fine
            }
        }
        m
    }

    /// Deterministic NWA accepting words with an even number of b-labelled
    /// positions (a purely linear property).
    fn even_bs() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(2, 2, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, q);
            m.set_internal(q, b, 1 - q);
            m.set_call(q, a, q, 0);
            m.set_call(q, b, 1 - q, 0);
            for h in 0..2 {
                m.set_return(q, h, a, q);
                m.set_return(q, h, b, 1 - q);
            }
        }
        m
    }

    #[test]
    fn complement_flips_membership() {
        let mut ab = Alphabet::ab();
        let m = depth_at_most_one();
        let c = complement(&m);
        for s in ["", "a b", "<a a>", "<a <b b> a>", "<a <a <a a> a> a>"] {
            let w = parse(&mut ab, s);
            assert_ne!(m.accepts(&w), c.accepts(&w), "word `{s}`");
        }
    }

    #[test]
    fn intersection_and_union_of_deterministic() {
        let mut ab = Alphabet::ab();
        let d1 = depth_at_most_one();
        let d2 = even_bs();
        let both = intersect(&d1, &d2);
        let either = union(&d1, &d2);
        for s in ["", "b", "b b", "<a b a>", "<a <b b> a>", "<b b> b"] {
            let w = parse(&mut ab, s);
            assert_eq!(
                both.accepts(&w),
                d1.accepts(&w) && d2.accepts(&w),
                "∩ `{s}`"
            );
            assert_eq!(
                either.accepts(&w),
                d1.accepts(&w) || d2.accepts(&w),
                "∪ `{s}`"
            );
        }
    }

    #[test]
    fn nondet_union_and_intersection() {
        let mut ab = Alphabet::ab();
        let n1 = Nnwa::from_deterministic(&depth_at_most_one());
        let n2 = Nnwa::from_deterministic(&even_bs());
        let u = union_nondet(&n1, &n2);
        let i = intersect_nondet(&n1, &n2);
        for s in ["", "b", "b b", "<a b a>", "<a <b b> a>", "<b b> b"] {
            let w = parse(&mut ab, s);
            assert_eq!(u.accepts(&w), n1.accepts(&w) || n2.accepts(&w), "∪ `{s}`");
            assert_eq!(i.accepts(&w), n1.accepts(&w) && n2.accepts(&w), "∩ `{s}`");
        }
    }

    #[test]
    fn reversal_on_well_matched_words() {
        let mut ab = Alphabet::ab();
        // language: well-matched words where the *first* position is a
        // b-labelled call (so the reverse has a b-labelled return last).
        let a = Symbol(0);
        let b = Symbol(1);
        let mut n = Nnwa::new(3, 2);
        n.add_initial(0);
        n.add_accepting(2);
        // first symbol must be a b-call
        n.add_call(0, b, 2, 1);
        // afterwards anything goes (state 2 loops)
        for s in [a, b] {
            n.add_internal(2, s, 2);
            n.add_call(2, s, 2, 0);
            for h in 0..3 {
                n.add_return(2, h, s, 2);
            }
        }
        let r = reverse_nondet(&n);
        for s in ["<b b>", "<b a b>", "<b <a a> b>", "<a b a>", "a <b b>"] {
            let w = parse(&mut ab, s);
            if !w.is_well_matched() {
                continue;
            }
            let rw = reverse_word(&w);
            assert_eq!(n.accepts(&w), r.accepts(&rw), "word `{s}`");
        }
    }

    #[test]
    fn de_morgan_on_deterministic_nwas() {
        let mut ab = Alphabet::ab();
        let d1 = depth_at_most_one();
        let d2 = even_bs();
        let lhs = complement(&intersect(&d1, &d2));
        let rhs = union(&complement(&d1), &complement(&d2));
        for s in ["", "b", "<a b a>", "<a <a a> a>", "b b b"] {
            let w = parse(&mut ab, s);
            assert_eq!(lhs.accepts(&w), rhs.accepts(&w), "word `{s}`");
        }
    }
}
