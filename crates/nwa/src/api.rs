//! Implementations of the [`automata_core`] trait vocabulary for the nested
//! word automaton models: membership, boolean operations and the WALi-style
//! decision verbs, uniform with every other model in the suite.

use crate::automaton::{Nwa, StreamingRun};
use crate::joinless::{JoinlessNwa, JoinlessStreamingRun};
use crate::nondet::{Nnwa, NnwaStreamingRun};
use crate::{boolean, decision};
use automata_core::{Acceptor, BooleanOps, Decide, Emptiness, Minimize, StreamAcceptor, Witness};
use nested_words::NestedWord;

// --- deterministic NWAs ---------------------------------------------------

impl Acceptor<NestedWord> for Nwa {
    fn accepts(&self, input: &NestedWord) -> bool {
        Nwa::accepts(self, input)
    }
}

impl StreamAcceptor for Nwa {
    type Run<'a> = StreamingRun<'a>;

    fn start(&self) -> StreamingRun<'_> {
        StreamingRun::new(self)
    }
}

impl BooleanOps for Nwa {
    fn intersect(&self, other: &Self) -> Self {
        boolean::intersect(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        boolean::union(self, other)
    }

    fn complement(&self) -> Self {
        boolean::complement(self)
    }
}

impl Emptiness for Nwa {
    fn is_empty(&self) -> bool {
        decision::is_empty_det(self)
    }
}

impl Decide for Nwa {
    fn subset_eq(&self, other: &Self) -> bool {
        decision::included_in(self, other)
    }

    fn equals(&self, other: &Self) -> bool {
        decision::equivalent(self, other)
    }
}

impl Minimize for Nwa {
    /// The quotient by the coarsest state congruence (see
    /// [`crate::minimize::reduce`]): language-preserving and idempotent,
    /// exactly minimal on flat automata (where it coincides with DFA
    /// minimization over Σ̂), a sound reduction in general — deterministic
    /// NWAs have no unique minimum.
    fn minimize(&self) -> Self {
        crate::minimize::reduce(self)
    }

    fn num_states(&self) -> usize {
        Nwa::num_states(self)
    }
}

impl Witness for Nwa {
    type Input = NestedWord;

    /// A shortest accepted nested word (see
    /// [`crate::witness::shortest_accepted_det`]): the emptiness saturation
    /// instrumented with backpointers through the summary relation.
    fn witness(&self) -> Option<NestedWord> {
        crate::witness::shortest_accepted_det(self)
    }
}

// --- nondeterministic NWAs ------------------------------------------------

impl Acceptor<NestedWord> for Nnwa {
    fn accepts(&self, input: &NestedWord) -> bool {
        Nnwa::accepts(self, input)
    }
}

impl StreamAcceptor for Nnwa {
    type Run<'a> = NnwaStreamingRun<'a>;

    fn start(&self) -> NnwaStreamingRun<'_> {
        Nnwa::start_run(self)
    }
}

impl BooleanOps for Nnwa {
    fn intersect(&self, other: &Self) -> Self {
        boolean::intersect_nondet(self, other)
    }

    fn union(&self, other: &Self) -> Self {
        boolean::union_nondet(self, other)
    }

    /// Determinizes first (the `2^{s²}` summary-set construction of §3.2),
    /// so this is worst-case exponential.
    fn complement(&self) -> Self {
        Nnwa::from_deterministic(&boolean::complement(&self.determinize()))
    }
}

impl Emptiness for Nnwa {
    fn is_empty(&self) -> bool {
        decision::is_empty(self)
    }
}

impl Decide for Nnwa {
    /// Overrides the default to determinize only the right-hand side
    /// (EXPTIME in the worst case, as stated in §3.2).
    fn subset_eq(&self, other: &Self) -> bool {
        decision::included_in_nondet(self, other)
    }

    fn equals(&self, other: &Self) -> bool {
        decision::equivalent_nondet(self, other)
    }
}

impl Minimize for Nnwa {
    /// Determinize-then-reduce: the `2^{s²}` summary-set construction of
    /// §3.2 followed by the quotient by the coarsest state congruence
    /// ([`crate::minimize::reduce`]), wrapped back into the
    /// nondeterministic representation. Worst-case exponential (the
    /// determinization), and — like every NWA minimization — a sound
    /// language-preserving reduction of the *deterministic* form rather
    /// than a unique minimum; in particular the result can be larger than
    /// the nondeterministic source, which is exactly the succinctness gap
    /// the Theorem 3/5 families measure.
    fn minimize(&self) -> Self {
        Nnwa::from_deterministic(&crate::minimize::reduce(&self.determinize()))
    }

    fn num_states(&self) -> usize {
        Nnwa::num_states(self)
    }
}

impl Witness for Nnwa {
    type Input = NestedWord;

    /// A shortest accepted nested word (see
    /// [`crate::witness::shortest_accepted`]), directly on the
    /// nondeterministic transition relations — no determinization.
    fn witness(&self) -> Option<NestedWord> {
        crate::witness::shortest_accepted(self)
    }
}

// --- joinless NWAs --------------------------------------------------------

impl Acceptor<NestedWord> for JoinlessNwa {
    fn accepts(&self, input: &NestedWord) -> bool {
        JoinlessNwa::accepts(self, input)
    }
}

impl StreamAcceptor for JoinlessNwa {
    type Run<'a> = JoinlessStreamingRun<'a>;

    fn start(&self) -> JoinlessStreamingRun<'_> {
        JoinlessNwa::start_run(self)
    }
}

impl Emptiness for JoinlessNwa {
    /// Decided on the exact [`JoinlessNwa::to_nnwa`] expansion of the
    /// mode-split return relation (polynomial, no determinization).
    fn is_empty(&self) -> bool {
        decision::is_empty(&self.to_nnwa())
    }
}

impl Witness for JoinlessNwa {
    type Input = NestedWord;

    /// A shortest accepted nested word, extracted from the exact
    /// [`JoinlessNwa::to_nnwa`] expansion through the summary-relation
    /// engine ([`crate::witness::shortest_accepted`]).
    fn witness(&self) -> Option<NestedWord> {
        crate::witness::shortest_accepted(&self.to_nnwa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;
    use nested_words::tagged::parse_nested_word;
    use nested_words::{Alphabet, Symbol};

    /// Deterministic NWA over {a,b} accepting words with an even number of
    /// b-labelled positions.
    fn even_bs() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(2, 2, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, q);
            m.set_internal(q, b, 1 - q);
            m.set_call(q, a, q, 0);
            m.set_call(q, b, 1 - q, 0);
            for h in 0..2 {
                m.set_return(q, h, a, q);
                m.set_return(q, h, b, 1 - q);
            }
        }
        m
    }

    #[test]
    fn trait_accepts_agrees_with_inherent() {
        let mut ab = Alphabet::ab();
        let m = even_bs();
        let n = Nnwa::from_deterministic(&m);
        for s in ["", "b", "b b", "<a b a>", "<b b>"] {
            let w = parse_nested_word(s, &mut ab).unwrap();
            assert_eq!(query::contains(&m, &w), m.accepts(&w), "det `{s}`");
            assert_eq!(query::contains(&n, &w), n.accepts(&w), "nondet `{s}`");
        }
    }

    #[test]
    fn decide_laws_for_deterministic_nwas() {
        let m = even_bs();
        assert!(query::equals(&m, &m.complement().complement()));
        assert!(!query::equals(&m, &m.complement()));
        let inter = m.intersect(&m.complement());
        assert!(query::is_empty(&inter));
        assert!(query::subset_eq(&inter, &m));
    }

    #[test]
    fn decide_laws_for_nondeterministic_nwas() {
        // One symbol keeps the determinizations inside `complement` small.
        let a = Symbol(0);
        let mut m = Nwa::new(2, 1, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, 1 - q);
            m.set_call(q, a, 1 - q, 0);
            for h in 0..2 {
                m.set_return(q, h, a, 1 - q);
            }
        }
        let n = Nnwa::from_deterministic(&m);
        assert!(query::equals(&n, &n.complement().complement()));
        assert!(!query::is_empty(&n));
        assert!(query::subset_eq(&n.intersect(&n.complement()), &n));
        assert!(query::is_empty(&n.intersect(&n.complement())));
    }
}
