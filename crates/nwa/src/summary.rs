//! The shared summary-set streaming engine behind the nondeterministic
//! streaming runs (§3.2).
//!
//! [`Nnwa`](crate::Nnwa) and [`JoinlessNwa`](crate::JoinlessNwa) both decide
//! membership on the fly by tracking a *summary*: the set of pairs
//! `(anchor, current)` such that some nondeterministic run entered the
//! innermost currently-open call at `anchor` and sits at `current` now. The
//! two models differ only in the step relations (the joinless return
//! relation splits by linear/hierarchical mode); the run bookkeeping — one
//! `(summary, call symbol)` stack frame per open call, peak tracking, event
//! counting — is identical and lives here once, in
//! [`SummaryStreamingRun`].

use nested_words::{PositionKind, Symbol, TaggedSymbol};
use std::collections::BTreeSet;

/// A summary: the set of `(anchor, current)` state pairs reachable by some
/// nondeterministic run, where `anchor` is the state right after the
/// innermost currently-open call (or the run's initial state at top level).
pub type Summary = BTreeSet<(usize, usize)>;

/// The per-model step relations of the summary-set subset construction.
///
/// Implementors supply the four transition steps and the acceptance test;
/// [`SummaryStreamingRun`] supplies the (summary, stack) execution. The
/// construction is exact: it simulates all nondeterministic runs at once
/// with a stack whose height equals the number of open calls.
pub trait SummarySemantics {
    /// The summary before any event: `{(q, q) : q initial}`.
    fn initial_summary(&self) -> Summary;

    /// Advances every pair across an internal position labelled `a`.
    fn summary_internal(&self, s: &Summary, a: Symbol) -> Summary;

    /// The summary entering the body of a call labelled `a`:
    /// `{(q', q') : q' a linear call successor of some current state}`.
    fn summary_call(&self, s: &Summary, a: Symbol) -> Summary;

    /// Joins the summary saved at the matching call (`outer`, which read
    /// `call_symbol`) with the body summary (`inner`) across a return
    /// labelled `a`.
    fn summary_matched_return(
        &self,
        outer: &Summary,
        call_symbol: Symbol,
        inner: &Summary,
        a: Symbol,
    ) -> Summary;

    /// Advances every pair across a pending return labelled `a` (the
    /// hierarchical edge carries an initial state, §3.1).
    fn summary_pending_return(&self, s: &Summary, a: Symbol) -> Summary;

    /// Returns `true` if the summary contains an accepting current state.
    fn summary_accepting(&self, s: &Summary) -> bool;
}

/// A streaming run of a summary-based nondeterministic model over
/// tagged-symbol events: the subset construction of §3.2 executed on the
/// fly over (summary-set, stack) configurations. Memory is proportional to
/// the nesting depth of the stream, not its length.
#[derive(Debug, Clone)]
pub struct SummaryStreamingRun<'a, A: SummarySemantics> {
    automaton: &'a A,
    current: Summary,
    stack: Vec<(Summary, Symbol)>,
    max_stack: usize,
    steps: usize,
}

impl<'a, A: SummarySemantics> SummaryStreamingRun<'a, A> {
    /// Starts a run in the initial summary with an empty stack.
    pub fn new(automaton: &'a A) -> Self {
        SummaryStreamingRun {
            automaton,
            current: automaton.initial_summary(),
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }

    /// Consumes one tagged-symbol event.
    pub fn step(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        let a = event.symbol();
        match event.kind() {
            PositionKind::Internal => {
                self.current = self.automaton.summary_internal(&self.current, a);
            }
            PositionKind::Call => {
                let linear = self.automaton.summary_call(&self.current, a);
                let outer = std::mem::replace(&mut self.current, linear);
                self.stack.push((outer, a));
                self.max_stack = self.max_stack.max(self.stack.len());
            }
            PositionKind::Return => match self.stack.pop() {
                Some((outer, call_symbol)) => {
                    self.current = self.automaton.summary_matched_return(
                        &outer,
                        call_symbol,
                        &self.current,
                        a,
                    );
                }
                None => {
                    self.current = self.automaton.summary_pending_return(&self.current, a);
                }
            },
        }
    }

    /// Returns `true` if stopping now would accept the stream read so far.
    pub fn is_accepting(&self) -> bool {
        self.automaton.summary_accepting(&self.current)
    }

    /// Current stack height (number of currently open calls).
    pub fn stack_height(&self) -> usize {
        self.stack.len()
    }

    /// Maximum stack height observed so far.
    pub fn max_stack_height(&self) -> usize {
        self.max_stack
    }

    /// Number of events consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl<A: SummarySemantics> automata_core::StreamRun for SummaryStreamingRun<'_, A> {
    fn step(&mut self, event: TaggedSymbol) {
        SummaryStreamingRun::step(self, event);
    }

    fn is_accepting(&self) -> bool {
        SummaryStreamingRun::is_accepting(self)
    }

    fn stack_height(&self) -> usize {
        SummaryStreamingRun::stack_height(self)
    }

    fn peak_memory(&self) -> usize {
        SummaryStreamingRun::max_stack_height(self)
    }

    fn steps(&self) -> usize {
        SummaryStreamingRun::steps(self)
    }
}
