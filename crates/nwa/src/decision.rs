//! Decision problems for nested word automata (§3.2 of the paper):
//! emptiness, language inclusion and language equivalence.
//!
//! Emptiness runs in polynomial time via saturation of *well-matched
//! summaries* — the same technique used for pushdown word automata and tree
//! automata, as the paper notes. Inclusion and equivalence reduce to
//! complementation (determinization for nondeterministic input),
//! intersection and emptiness, and are therefore EXPTIME in the
//! nondeterministic case.

use crate::automaton::Nwa;
use crate::boolean::{complement, intersect};
use crate::nondet::Nnwa;
use std::collections::BTreeSet;

/// The relation `WM(q, q')`: there exists a **well-matched** nested word that
/// takes the automaton from `q` to `q'`. Computed by saturation:
///
/// * `WM(q, q)`;
/// * internal steps extend summaries;
/// * a call transition, a summary for the body and a matching return
///   transition compose into a summary (`call–body–return` rule);
/// * summaries concatenate.
pub fn well_matched_summaries(a: &Nnwa) -> BTreeSet<(usize, usize)> {
    let mut wm: BTreeSet<(usize, usize)> = (0..a.num_states()).map(|q| (q, q)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        // internal extension
        let snapshot: Vec<(usize, usize)> = wm.iter().copied().collect();
        for &(q, q1) in &snapshot {
            for &(p, _sym, t) in a.internals() {
                if p == q1 && wm.insert((q, t)) {
                    changed = true;
                }
            }
        }
        // call–body–return
        for &(qc, csym, ql, qh) in a.calls() {
            let _ = csym;
            let bodies: Vec<usize> = wm
                .iter()
                .filter(|&&(s, _)| s == ql)
                .map(|&(_, e)| e)
                .collect();
            for body_end in bodies {
                for &(rl, rh, _rsym, t) in a.returns() {
                    if rl == body_end && rh == qh && wm.insert((qc, t)) {
                        changed = true;
                    }
                }
            }
        }
        // concatenation
        let snapshot: Vec<(usize, usize)> = wm.iter().copied().collect();
        for &(q, q1) in &snapshot {
            for &(q2, q3) in &snapshot {
                if q1 == q2 && wm.insert((q, q3)) {
                    changed = true;
                }
            }
        }
    }
    wm
}

/// The set of states reachable from the initial states by *some* nested word
/// (possibly with pending calls and pending returns). Returns
/// `(no_pending_call, with_pending_call)`: states reachable without having
/// taken any pending call yet, and states reachable after at least one
/// pending call (pending returns are only legal in the first mode, since a
/// pending return cannot follow a pending call without crossing).
pub fn reachable_sets(a: &Nnwa) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let wm = well_matched_summaries(a);
    let mut r0: BTreeSet<usize> = a.initial_states().collect();
    let mut r1: BTreeSet<usize> = BTreeSet::new();
    let initials: BTreeSet<usize> = a.initial_states().collect();
    let mut changed = true;
    while changed {
        changed = false;
        // close both sets under well-matched summaries
        for &(q, q1) in &wm {
            if r0.contains(&q) && r0.insert(q1) {
                changed = true;
            }
            if r1.contains(&q) && r1.insert(q1) {
                changed = true;
            }
        }
        // pending returns: only in mode 0, hierarchical state is initial
        for &(rl, rh, _sym, t) in a.returns() {
            if r0.contains(&rl) && initials.contains(&rh) && r0.insert(t) {
                changed = true;
            }
        }
        // pending calls: move to mode 1
        for &(q, _sym, ql, _qh) in a.calls() {
            if (r0.contains(&q) || r1.contains(&q)) && r1.insert(ql) {
                changed = true;
            }
        }
    }
    (r0, r1)
}

/// Emptiness for nondeterministic NWAs: `true` iff the automaton accepts no
/// nested word. Polynomial time (the paper quotes cubic).
pub fn is_empty(a: &Nnwa) -> bool {
    let (r0, r1) = reachable_sets(a);
    !r0.iter().chain(r1.iter()).any(|&q| a.is_accepting(q))
}

/// Emptiness for deterministic NWAs.
pub fn is_empty_det(a: &Nwa) -> bool {
    is_empty(&Nnwa::from_deterministic(a))
}

/// Language inclusion `L(a) ⊆ L(b)` for deterministic NWAs, via
/// `L(a) ∩ L(b)ᶜ = ∅`.
pub fn included_in(a: &Nwa, b: &Nwa) -> bool {
    is_empty_det(&intersect(a, &complement(b)))
}

/// Language equivalence of two deterministic NWAs.
pub fn equivalent(a: &Nwa, b: &Nwa) -> bool {
    included_in(a, b) && included_in(b, a)
}

/// Language inclusion for nondeterministic NWAs (determinizes `b` first, so
/// EXPTIME in the worst case, as stated in §3.2).
pub fn included_in_nondet(a: &Nnwa, b: &Nnwa) -> bool {
    let b_det = b.determinize();
    let b_comp = Nnwa::from_deterministic(&complement(&b_det));
    is_empty(&crate::boolean::intersect_nondet(a, &b_comp))
}

/// Language equivalence for nondeterministic NWAs.
pub fn equivalent_nondet(a: &Nnwa, b: &Nnwa) -> bool {
    included_in_nondet(a, b) && included_in_nondet(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::Symbol;

    /// Nondeterministic NWA accepting rooted words over {a} of even depth ≥ 2
    /// of the shape <a <a ... a> a> (pure nesting, no internals).
    fn even_depth_nest() -> Nnwa {
        let a = Symbol(0);
        // states: 0 initial, 1 = odd open, 2 = even open, 3 = closing, 4 = done-odd
        // Simpler: accept <a^k a>^k with k even by tracking parity.
        // going down: parity states 0 (even so far) / 1 (odd); hier carries parity;
        // coming up: state 2; accept state 3 reached when stack exhausted at even parity.
        let mut n = Nnwa::new(4, 1);
        n.add_initial(0);
        n.add_accepting(3);
        // descend: from parity p, call: push p, go to 1-p
        n.add_call(0, a, 1, 0);
        n.add_call(1, a, 0, 1);
        // at the deepest point we must be at even parity (0) to have even depth?
        // Actually depth parity: after k calls parity = k mod 2. Start ascent from
        // parity 0 (k even): first return joins linear 0 with hier of deepest call.
        // ascend: return from linear 0 or 2 with hier p goes to 2, and when the
        // popped hier is the bottom (p = 0 pushed by the first call from state 0)
        // we may also go to 3.
        for lin in [0usize, 2] {
            n.add_return(lin, 0, a, 2);
            n.add_return(lin, 1, a, 2);
            n.add_return(lin, 0, a, 3);
        }
        n
    }

    #[test]
    fn summaries_contain_identity() {
        let n = even_depth_nest();
        let wm = well_matched_summaries(&n);
        for q in 0..n.num_states() {
            assert!(wm.contains(&(q, q)));
        }
    }

    #[test]
    fn emptiness_of_nontrivial_automaton() {
        let n = even_depth_nest();
        assert!(!is_empty(&n));
        // sanity: it really accepts the depth-2 word
        let mut ab = nested_words::Alphabet::from_names(["a"]);
        let w = nested_words::tagged::parse_nested_word("<a <a a> a>", &mut ab).unwrap();
        assert!(n.accepts(&w));
        let w1 = nested_words::tagged::parse_nested_word("<a a>", &mut ab).unwrap();
        assert!(!n.accepts(&w1));
    }

    #[test]
    fn emptiness_detects_unreachable_acceptance() {
        let a = Symbol(0);
        let mut n = Nnwa::new(3, 1);
        n.add_initial(0);
        n.add_accepting(2);
        n.add_internal(0, a, 1);
        n.add_internal(1, a, 0);
        // state 2 never reachable
        assert!(is_empty(&n));
        n.add_internal(1, a, 2);
        assert!(!is_empty(&n));
    }

    #[test]
    fn emptiness_requires_matching_return_for_call_bodies() {
        let a = Symbol(0);
        // Accepting state only reachable through a matched return whose
        // hierarchical state can never be produced.
        let mut n = Nnwa::new(4, 1);
        n.add_initial(0);
        n.add_accepting(3);
        n.add_call(0, a, 1, 2); // pushes 2
        n.add_internal(1, a, 1);
        n.add_return(1, 0, a, 3); // but requires hierarchical state 0
        assert!(is_empty(&n));
        // Now allow the matching hierarchical state.
        n.add_return(1, 2, a, 3);
        assert!(!is_empty(&n));
    }

    #[test]
    fn pending_call_reachability_counts_for_emptiness() {
        let a = Symbol(0);
        // Accepting state reachable only via the linear successor of a call
        // that is never matched.
        let mut n = Nnwa::new(2, 1);
        n.add_initial(0);
        n.add_accepting(1);
        n.add_call(0, a, 1, 0);
        assert!(!is_empty(&n));
        let mut ab = nested_words::Alphabet::from_names(["a"]);
        let w = nested_words::tagged::parse_nested_word("<a", &mut ab).unwrap();
        assert!(n.accepts(&w));
    }

    #[test]
    fn pending_return_only_with_initial_hierarchical_state() {
        let a = Symbol(0);
        let mut n = Nnwa::new(3, 1);
        n.add_initial(0);
        n.add_accepting(2);
        // return requiring hierarchical state 1 (not initial): a pending
        // return cannot supply it, and there is no call pushing 1 either.
        n.add_return(0, 1, a, 2);
        assert!(is_empty(&n));
        // returning on the initial hierarchical state is a pending return
        n.add_return(0, 0, a, 2);
        assert!(!is_empty(&n));
    }

    #[test]
    fn det_inclusion_and_equivalence() {
        use crate::automaton::Nwa;
        let a_sym = Symbol(0);
        let b_sym = Symbol(1);
        // d1: words with no b at all (calls, internals, returns all a)
        let mut d1 = Nwa::new(2, 2, 0);
        d1.set_accepting(0, true);
        d1.set_all_transitions_to(1, 1);
        d1.set_internal(0, a_sym, 0);
        d1.set_internal(0, b_sym, 1);
        d1.set_call(0, a_sym, 0, 0);
        d1.set_call(0, b_sym, 1, 0);
        for h in 0..2 {
            d1.set_return(0, h, a_sym, 0);
            d1.set_return(0, h, b_sym, 1);
        }
        // d2: words with an even number of b positions
        let mut d2 = Nwa::new(2, 2, 0);
        d2.set_accepting(0, true);
        for q in 0..2usize {
            d2.set_internal(q, a_sym, q);
            d2.set_internal(q, b_sym, 1 - q);
            d2.set_call(q, a_sym, q, 0);
            d2.set_call(q, b_sym, 1 - q, 0);
            for h in 0..2 {
                d2.set_return(q, h, a_sym, q);
                d2.set_return(q, h, b_sym, 1 - q);
            }
        }
        // zero b's is an even number of b's
        assert!(included_in(&d1, &d2));
        assert!(!included_in(&d2, &d1));
        assert!(!equivalent(&d1, &d2));
        assert!(equivalent(&d1, &d1));
    }

    #[test]
    fn nondet_equivalence_via_determinization() {
        let n = even_depth_nest();
        let d = n.determinize();
        let n2 = Nnwa::from_deterministic(&d);
        assert!(equivalent_nondet(&n, &n2));
        // and not equivalent to the empty automaton
        let empty = Nnwa::new(1, 1);
        assert!(!equivalent_nondet(&n, &empty));
        assert!(included_in_nondet(&empty, &n));
    }
}
