//! Joinless nested word automata (§3.5 of the paper).
//!
//! A joinless automaton never joins the information flowing along the linear
//! and the hierarchical edge at a return: it operates in a *linear* mode
//! (like a word automaton, hierarchical edges carry only the dummy initial
//! state) and a *hierarchical* mode (like a top-down tree automaton, the
//! suffix after a return is processed from the state pushed at the call,
//! while the body must end in an accepting state). Top-down automata are the
//! special case with no linear states (Lemma 2); flat automata the special
//! case with no hierarchical states.
//!
//! [`joinless_from_nwa`] implements the construction behind Theorem 7
//! (nondeterministic joinless automata accept all regular languages of
//! nested words, with an `O(s²·|Σ|)` blow-up). As implemented it is exact on
//! nested words **without pending calls** (well-matched words and words with
//! pending returns); see the function documentation for the caveat on
//! pending calls.

use crate::nondet::Nnwa;
use crate::summary::{Summary, SummarySemantics, SummaryStreamingRun};
use nested_words::{NestedWord, PositionKind, Symbol};
use std::collections::{BTreeSet, HashMap};

/// A nondeterministic joinless nested word automaton.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinlessNwa {
    num_states: usize,
    sigma: usize,
    /// `true` for linear states (Ql), `false` for hierarchical states (Qh).
    linear: Vec<bool>,
    initial: BTreeSet<usize>,
    accepting: BTreeSet<usize>,
    /// Call transitions `(q, a, q_linear_successor, q_hierarchical)`.
    calls: Vec<(usize, Symbol, usize, usize)>,
    /// Internal transitions `(q, a, q')`.
    internals: Vec<(usize, Symbol, usize)>,
    /// Return transitions `(q, a, q')`: in linear mode `q` is the state
    /// before the return; in hierarchical mode `q` is the state on the
    /// hierarchical edge.
    returns: Vec<(usize, Symbol, usize)>,
}

impl JoinlessNwa {
    /// Creates a joinless NWA with `num_states` states (all initially
    /// linear) over an alphabet of `sigma` symbols.
    pub fn new(num_states: usize, sigma: usize) -> Self {
        JoinlessNwa {
            num_states,
            sigma,
            linear: vec![true; num_states],
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Adds a fresh state; `linear` selects the mode partition.
    pub fn add_state(&mut self, linear: bool) -> usize {
        self.num_states += 1;
        self.linear.push(linear);
        self.num_states - 1
    }

    /// Declares whether `q` is a linear (`true`) or hierarchical (`false`)
    /// state.
    pub fn set_linear(&mut self, q: usize, linear: bool) {
        self.linear[q] = linear;
    }

    /// Returns `true` if `q` is a linear-mode state.
    pub fn is_linear(&self, q: usize) -> bool {
        self.linear[q]
    }

    /// Marks a state as initial.
    pub fn add_initial(&mut self, q: usize) {
        self.initial.insert(q);
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, q: usize) {
        self.accepting.insert(q);
    }

    /// Returns `true` if `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting.contains(&q)
    }

    /// Adds a call transition.
    pub fn add_call(&mut self, q: usize, a: Symbol, linear_succ: usize, hier: usize) {
        self.calls.push((q, a, linear_succ, hier));
    }

    /// Adds an internal transition.
    pub fn add_internal(&mut self, q: usize, a: Symbol, target: usize) {
        self.internals.push((q, a, target));
    }

    /// Adds a return transition.
    pub fn add_return(&mut self, q: usize, a: Symbol, target: usize) {
        self.returns.push((q, a, target));
    }

    /// Iterates over the initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.initial.iter().copied()
    }

    /// The call transitions `(q, a, q_linear_successor, q_hierarchical)`.
    pub fn calls(&self) -> &[(usize, Symbol, usize, usize)] {
        &self.calls
    }

    /// The internal transitions `(q, a, q')`.
    pub fn internals(&self) -> &[(usize, Symbol, usize)] {
        &self.internals
    }

    /// The return transitions `(q, a, q')` (mode-split; see the field
    /// documentation).
    pub fn returns(&self) -> &[(usize, Symbol, usize)] {
        &self.returns
    }

    /// Returns `true` if all states are hierarchical — the automaton is a
    /// *top-down* automaton (Lemma 2).
    pub fn is_top_down(&self) -> bool {
        self.linear.iter().all(|&l| !l)
    }

    /// Returns `true` if all states are linear — the automaton is *flat*.
    pub fn is_flat(&self) -> bool {
        self.linear.iter().all(|&l| l)
    }

    /// Returns `true` if the automaton is deterministic: one initial state
    /// and at most one transition per (state, symbol) in each relation.
    pub fn is_deterministic(&self) -> bool {
        if self.initial.len() > 1 {
            return false;
        }
        let mut seen = BTreeSet::new();
        for &(q, a, _, _) in &self.calls {
            if !seen.insert((0u8, q, a)) {
                return false;
            }
        }
        for &(q, a, _) in &self.internals {
            if !seen.insert((1u8, q, a)) {
                return false;
            }
        }
        for &(q, a, _) in &self.returns {
            if !seen.insert((2u8, q, a)) {
                return false;
            }
        }
        true
    }

    /// The set of states reachable at the end of the word, starting each run
    /// from an initial state (nondeterministic evaluation).
    pub fn final_states(&self, word: &NestedWord) -> BTreeSet<usize> {
        let mut cache: HashMap<(usize, usize), BTreeSet<usize>> = HashMap::new();
        self.eval(word, 0, word.len(), &self.initial.clone(), &mut cache)
    }

    /// Returns `true` if the automaton accepts the nested word.
    pub fn accepts(&self, word: &NestedWord) -> bool {
        self.final_states(word)
            .iter()
            .any(|q| self.accepting.contains(q))
    }

    /// Evaluates the segment `[lo, hi)` from the given set of start states.
    fn eval(
        &self,
        word: &NestedWord,
        lo: usize,
        hi: usize,
        start: &BTreeSet<usize>,
        cache: &mut HashMap<(usize, usize), BTreeSet<usize>>,
    ) -> BTreeSet<usize> {
        let mut states = start.clone();
        let mut i = lo;
        while i < hi {
            let a = word.symbol(i);
            match word.kind(i) {
                PositionKind::Internal => {
                    let mut next = BTreeSet::new();
                    for &q in &states {
                        for &(p, sym, t) in &self.internals {
                            if p == q && sym == a {
                                next.insert(t);
                            }
                        }
                    }
                    states = next;
                    i += 1;
                }
                PositionKind::Call => {
                    match word.return_successor(i) {
                        Some(r) if r < hi => {
                            let ret_sym = word.symbol(r);
                            let mut next = BTreeSet::new();
                            for &q in &states {
                                for &(p, sym, ql, qh) in &self.calls {
                                    if p != q || sym != a {
                                        continue;
                                    }
                                    let body_end = self.eval_single(word, i + 1, r, ql, cache);
                                    for &e in &body_end {
                                        if self.linear[e] && self.initial.contains(&qh) {
                                            // linear-mode return: state follows the
                                            // linear edge; hierarchical edge must
                                            // carry an initial state
                                            for &(rq, rsym, t) in &self.returns {
                                                if rq == e && rsym == ret_sym {
                                                    next.insert(t);
                                                }
                                            }
                                        }
                                        if !self.linear[e] && self.accepting.contains(&e) {
                                            // hierarchical-mode return: state follows
                                            // the hierarchical edge; the body run
                                            // must end accepting
                                            for &(rq, rsym, t) in &self.returns {
                                                if rq == qh && rsym == ret_sym {
                                                    next.insert(t);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            states = next;
                            i = r + 1;
                        }
                        _ => {
                            // pending call (or a call whose return lies outside
                            // the segment, which cannot happen when evaluating
                            // whole words): only the linear successor continues
                            let mut next = BTreeSet::new();
                            for &q in &states {
                                for &(p, sym, ql, _qh) in &self.calls {
                                    if p == q && sym == a {
                                        next.insert(ql);
                                    }
                                }
                            }
                            states = next;
                            i += 1;
                        }
                    }
                }
                PositionKind::Return => {
                    // pending return: hierarchical edge carries an initial state
                    let mut next = BTreeSet::new();
                    for &q in &states {
                        if self.linear[q] {
                            for &(rq, rsym, t) in &self.returns {
                                if rq == q && rsym == a {
                                    next.insert(t);
                                }
                            }
                        } else if self.accepting.contains(&q) {
                            for &q0 in &self.initial {
                                for &(rq, rsym, t) in &self.returns {
                                    if rq == q0 && rsym == a {
                                        next.insert(t);
                                    }
                                }
                            }
                        }
                    }
                    states = next;
                    i += 1;
                }
            }
            if states.is_empty() {
                return states;
            }
        }
        states
    }

    fn eval_single(
        &self,
        word: &NestedWord,
        lo: usize,
        hi: usize,
        start: usize,
        cache: &mut HashMap<(usize, usize), BTreeSet<usize>>,
    ) -> BTreeSet<usize> {
        if let Some(hit) = cache.get(&(lo, start)) {
            return hit.clone();
        }
        let mut s = BTreeSet::new();
        s.insert(start);
        let out = self.eval(word, lo, hi, &s, cache);
        cache.insert((lo, start), out.clone());
        out
    }

    /// Starts a streaming run: an on-the-fly subset construction over
    /// (summary-set, stack) configurations, consumable one tagged-symbol
    /// event at a time. Agrees with [`JoinlessNwa::accepts`] on every nested
    /// word (the recursive evaluator is the reference semantics).
    pub fn start_run(&self) -> JoinlessStreamingRun<'_> {
        JoinlessStreamingRun::new(self)
    }

    /// Expands the mode-split return relation into an ordinary
    /// nondeterministic NWA accepting the same language.
    ///
    /// A joinless automaton *is* an NWA whose return relation factors
    /// through the generalized joinless return relation (the
    /// `return_targets` step of the streaming engine): a linear body-end
    /// state `q`
    /// follows its own return transitions provided the hierarchical edge
    /// carries an initial state, and a hierarchical body-end state that ends
    /// accepting follows the return transitions of the state pushed at the
    /// call. Materializing exactly those `(linear, hierarchical, symbol,
    /// target)` tuples — `(q, q₀, a, t)` for linear `q` and initial `q₀`,
    /// and `(f, h, a, t)` for hierarchical accepting `f` and any pushed `h`
    /// with `(h, a, t)` in the relation — yields an [`Nnwa`] with identical
    /// runs, which gives the joinless model the summary-based decision and
    /// witness procedures ([`crate::decision`], [`crate::witness`]) without
    /// a dedicated engine.
    pub fn to_nnwa(&self) -> Nnwa {
        let mut out = Nnwa::new(self.num_states, self.sigma);
        for &q in &self.initial {
            out.add_initial(q);
        }
        for &q in &self.accepting {
            out.add_accepting(q);
        }
        for &(q, a, l, h) in &self.calls {
            out.add_call(q, a, l, h);
        }
        for &(q, a, t) in &self.internals {
            out.add_internal(q, a, t);
        }
        let hier_accepting: Vec<usize> = (0..self.num_states)
            .filter(|&q| !self.linear[q] && self.accepting.contains(&q))
            .collect();
        for &(src, a, t) in &self.returns {
            if self.linear[src] {
                for &q0 in &self.initial {
                    out.add_return(src, q0, a, t);
                }
            }
            for &f in &hier_accepting {
                out.add_return(f, src, a, t);
            }
        }
        out
    }

    // --- streaming summary steps -------------------------------------------
    //
    // A joinless automaton is a nondeterministic NWA whose return relation
    // splits by mode: a linear-mode state follows the linear edge provided
    // the hierarchical edge carries an initial state, and a
    // hierarchical-mode state follows the hierarchical edge provided the
    // body run ended accepting. Substituting that relation into the
    // summary-set simulation of §3.2 gives a one-pass membership test with
    // memory proportional to the nesting depth.

    fn stream_internal(&self, s: &BTreeSet<(usize, usize)>, a: Symbol) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, cur) in s {
            for &(q, sym, t) in &self.internals {
                if q == cur && sym == a {
                    out.insert((anchor, t));
                }
            }
        }
        out
    }

    fn stream_call_linear(
        &self,
        s: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(_, cur) in s {
            for &(q, sym, ql, _qh) in &self.calls {
                if q == cur && sym == a {
                    out.insert((ql, ql));
                }
            }
        }
        out
    }

    /// Return targets from body-end state `cur` when the matching call
    /// pushed `qh`: the generalized joinless return relation.
    fn return_targets(&self, cur: usize, qh: usize, a: Symbol, out: &mut BTreeSet<usize>) {
        if self.linear[cur] && self.initial.contains(&qh) {
            for &(rq, rsym, t) in &self.returns {
                if rq == cur && rsym == a {
                    out.insert(t);
                }
            }
        }
        if !self.linear[cur] && self.accepting.contains(&cur) {
            for &(rq, rsym, t) in &self.returns {
                if rq == qh && rsym == a {
                    out.insert(t);
                }
            }
        }
    }

    fn stream_matched_return(
        &self,
        outer: &BTreeSet<(usize, usize)>,
        call_symbol: Symbol,
        inner: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, before_call) in outer {
            for &(q, sym, ql, qh) in &self.calls {
                if q != before_call || sym != call_symbol {
                    continue;
                }
                let mut targets = BTreeSet::new();
                for &(start, cur) in inner {
                    if start == ql {
                        self.return_targets(cur, qh, a, &mut targets);
                    }
                }
                out.extend(targets.iter().map(|&t| (anchor, t)));
            }
        }
        out
    }

    fn stream_pending_return(
        &self,
        s: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, cur) in s {
            let mut targets = BTreeSet::new();
            for &q0 in &self.initial {
                self.return_targets(cur, q0, a, &mut targets);
            }
            out.extend(targets.iter().map(|&t| (anchor, t)));
        }
        out
    }
}

/// A streaming run of a joinless NWA over tagged-symbol events: the
/// summary-set subset construction of §3.2 instantiated with the joinless
/// return relation, shared with [`Nnwa`] through [`SummaryStreamingRun`].
pub type JoinlessStreamingRun<'a> = SummaryStreamingRun<'a, JoinlessNwa>;

impl SummarySemantics for JoinlessNwa {
    fn initial_summary(&self) -> Summary {
        self.initial.iter().map(|&q| (q, q)).collect()
    }

    fn summary_internal(&self, s: &Summary, a: Symbol) -> Summary {
        self.stream_internal(s, a)
    }

    fn summary_call(&self, s: &Summary, a: Symbol) -> Summary {
        self.stream_call_linear(s, a)
    }

    fn summary_matched_return(
        &self,
        outer: &Summary,
        call_symbol: Symbol,
        inner: &Summary,
        a: Symbol,
    ) -> Summary {
        self.stream_matched_return(outer, call_symbol, inner, a)
    }

    fn summary_pending_return(&self, s: &Summary, a: Symbol) -> Summary {
        self.stream_pending_return(s, a)
    }

    fn summary_accepting(&self, s: &Summary) -> bool {
        s.iter().any(|&(_, q)| self.accepting.contains(&q))
    }
}

/// Theorem 7: converts a nondeterministic NWA into a nondeterministic
/// joinless NWA with `O(s²·|Σ|)` states.
///
/// States of the result:
/// * linear states `lin(q)` tracking the original state directly,
/// * hierarchical states `hier(q, q')` ("currently in `q`, obliged to reach
///   `q'` at the end of the enclosing matched segment"),
/// * auxiliary hierarchical states `aux(q, q', b)` labelling hierarchical
///   edges ("after the matching `b`-labelled return, continue in `hier(q,
///   q')`"),
/// * resume states `res(q, b)` labelling hierarchical edges of matched calls
///   taken from linear mode ("after the matching `b`-labelled return, resume
///   linear mode in `q`"),
/// * a junk state pushed at calls guessed to be pending.
///
/// The construction is exact on nested words without pending calls
/// (well-matched words and words with pending returns). For words with
/// pending calls it may over-approximate — a run can enter a matched-call
/// gadget whose return never arrives and still end in an accepting
/// obligation state; the paper's proof sketch has the same gap and the
/// general case needs an additional mode, which we document rather than
/// implement.
pub fn joinless_from_nwa(a: &Nnwa) -> JoinlessNwa {
    let s = a.num_states();
    let sigma = a.sigma();
    // state layout
    let lin = |q: usize| q;
    let res = |q: usize, b: usize| s + q * sigma + b;
    let junk = s + s * sigma;
    let hier = |q: usize, t: usize| junk + 1 + q * s + t;
    let aux = |q: usize, t: usize, b: usize| junk + 1 + s * s + (q * s + t) * sigma + b;
    let total = junk + 1 + s * s + s * s * sigma;

    let mut out = JoinlessNwa::new(total, sigma);
    for q in 0..s {
        out.set_linear(lin(q), true);
        for b in 0..sigma {
            out.set_linear(res(q, b), true);
        }
        for t in 0..s {
            out.set_linear(hier(q, t), false);
            for b in 0..sigma {
                out.set_linear(aux(q, t, b), false);
            }
        }
    }
    out.set_linear(junk, true);

    for q in a.initial_states() {
        out.add_initial(lin(q));
    }
    for q in 0..s {
        if a.is_accepting(q) {
            out.add_accepting(lin(q));
        }
        out.add_accepting(hier(q, q));
    }

    // internal transitions
    for &(q, sym, t) in a.internals() {
        out.add_internal(lin(q), sym, lin(t));
        for obligation in 0..s {
            out.add_internal(hier(q, obligation), sym, hier(t, obligation));
        }
    }

    // pending returns in linear mode use the original return transitions
    // whose hierarchical state is initial
    for &(q, h, sym, t) in a.returns() {
        if a.initial_states().any(|i| i == h) {
            out.add_return(lin(q), sym, lin(t));
        }
    }

    // resume and auxiliary return transitions
    for q in 0..s {
        for b in 0..sigma {
            out.add_return(res(q, b), Symbol(b as u16), lin(q));
            for t in 0..s {
                out.add_return(aux(q, t, b), Symbol(b as u16), hier(q, t));
            }
        }
    }

    // calls
    for &(q, sym, ql, qh) in a.calls() {
        // guess "pending": stay linear, push junk (which blocks any return)
        out.add_call(lin(q), sym, lin(ql), junk);
        // guess "matched": pick the return transition that will close this
        // call and process the body hierarchically
        for &(r1, rh, rsym, r2) in a.returns() {
            if rh != qh {
                continue;
            }
            // from linear mode, resume linear mode after the return
            out.add_call(lin(q), sym, hier(ql, r1), res(r2, rsym.index()));
            // from hierarchical mode, keep the outer obligation
            for obligation in 0..s {
                out.add_call(
                    hier(q, obligation),
                    sym,
                    hier(ql, r1),
                    aux(r2, obligation, rsym.index()),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// Hand-written joinless automaton (hierarchical mode) accepting tree
    /// words over {a,b} whose root is labelled a: a top-down style check.
    fn root_is_a() -> JoinlessNwa {
        let a = Symbol(0);
        let b = Symbol(1);
        // hierarchical states: 0 = at root (must see a-call), 1 = inside (anything)
        // accepting: 1 ("obligation met" for every body), and the run after the
        // root return continues in state 2 (linear, accepting at end of word).
        let mut j = JoinlessNwa::new(3, 2);
        j.set_linear(0, false);
        j.set_linear(1, false);
        j.set_linear(2, true);
        j.add_initial(0);
        j.add_accepting(1);
        j.add_accepting(2);
        // at the root call (label a): body processed in state 1, after the
        // return continue in state 2
        j.add_call(0, a, 1, 2);
        // inside: calls fork to (1, 1) — both body and continuation inside
        for sym in [a, b] {
            j.add_call(1, sym, 1, 1);
            j.add_return(1, sym, 1);
        }
        // the continuation state 2 is reached via the return transition from
        // the pushed state 2
        for sym in [a, b] {
            j.add_return(2, sym, 2);
        }
        j
    }

    #[test]
    fn hand_written_joinless_membership() {
        let mut ab = Alphabet::ab();
        let j = root_is_a();
        assert!(!j.is_top_down());
        assert!(!j.is_flat());
        assert!(j.accepts(&parse(&mut ab, "<a a>")));
        assert!(j.accepts(&parse(&mut ab, "<a <b b> <a a> a>")));
        assert!(!j.accepts(&parse(&mut ab, "<b <a a> b>")));
        assert!(!j.accepts(&parse(&mut ab, "<a a> <a a>"))); // not rooted: second call unreachable from state 2? actually state 2 has no call transitions
    }

    /// The nondeterministic NWA with a genuine join: matched call/return
    /// pairs both labelled b somewhere in the word.
    fn some_b_block() -> Nnwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut n = Nnwa::new(3, 2);
        n.add_initial(0);
        n.add_accepting(2);
        for sym in [a, b] {
            n.add_internal(0, sym, 0);
            n.add_internal(2, sym, 2);
            n.add_call(0, sym, 0, 0);
            n.add_call(2, sym, 2, 0);
            for h in [0usize, 1] {
                n.add_return(0, h, sym, 0);
                n.add_return(2, h, sym, 2);
            }
        }
        n.add_call(0, b, 0, 1);
        n.add_return(0, 1, b, 2);
        n
    }

    #[test]
    fn theorem7_state_count_is_quadratic_times_sigma() {
        let n = some_b_block();
        let j = joinless_from_nwa(&n);
        let s = n.num_states();
        let sigma = n.sigma();
        assert_eq!(j.num_states(), s + s * sigma + 1 + s * s + s * s * sigma);
    }

    #[test]
    fn theorem7_preserves_language_on_samples_without_pending_calls() {
        let mut ab = Alphabet::ab();
        let n = some_b_block();
        let j = joinless_from_nwa(&n);
        for s in [
            "",
            "a b",
            "<b b>",
            "<b a>",
            "<a b a>",
            "<a <b b> a>",
            "<b <a a> b>",
            "a <a a> <b b> a",
            "b> <b b>",
            "a> a>",
            "<a <a <b b> a> a>",
        ] {
            let w = parse(&mut ab, s);
            assert_eq!(n.accepts(&w), j.accepts(&w), "word `{s}`");
        }
    }

    #[test]
    fn theorem7_preserves_language_on_random_well_matched_words() {
        let n = some_b_block();
        let j = joinless_from_nwa(&n);
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 30,
            allow_pending: false,
            ..Default::default()
        };
        for seed in 0..40 {
            let w = random_nested_word(&ab, cfg, seed);
            assert_eq!(n.accepts(&w), j.accepts(&w), "seed {seed}");
        }
    }

    #[test]
    fn to_nnwa_preserves_language() {
        let mut ab = Alphabet::ab();
        // Both a genuinely hierarchical automaton and a Theorem 7 conversion.
        for (name, j) in [
            ("root_is_a", root_is_a()),
            ("theorem7", joinless_from_nwa(&some_b_block())),
        ] {
            let n = j.to_nnwa();
            for s in [
                "",
                "a b",
                "<a a>",
                "<b b>",
                "<a <b b> a>",
                "<b <a a> b>",
                "<a <b b> <a a> a>",
                "<a a> <a a>",
                "a> <b b>",
                "<a <a <b b> a> a>",
            ] {
                let w = parse(&mut ab, s);
                assert_eq!(j.accepts(&w), n.accepts(&w), "{name}: word `{s}`");
            }
            // The conversion must agree with the joinless reference
            // semantics on *all* words, pending edges included (unlike the
            // Theorem 7 construction itself, which is only exact without
            // pending calls — the comparison here is j against its own
            // expansion, not against the original NWA).
            let cfg = NestedWordConfig {
                len: 25,
                allow_pending: true,
                ..Default::default()
            };
            let ab2 = Alphabet::ab();
            for seed in 0..30 {
                let w = random_nested_word(&ab2, cfg, seed);
                assert_eq!(j.accepts(&w), n.accepts(&w), "{name}: seed {seed}");
            }
        }
    }

    #[test]
    fn deterministic_check() {
        let j = root_is_a();
        // one transition per (state, symbol) and a single initial state
        assert!(j.is_deterministic());
        let mut det = JoinlessNwa::new(2, 1);
        det.add_initial(0);
        det.add_call(0, Symbol(0), 1, 0);
        det.add_return(1, Symbol(0), 0);
        assert!(det.is_deterministic());
        det.add_call(0, Symbol(0), 0, 0);
        assert!(!det.is_deterministic());
    }
}
