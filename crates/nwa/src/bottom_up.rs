//! Bottom-up nested word automata and the construction of Theorem 4.
//!
//! An NWA is *bottom-up* when the linear component of its call transition
//! does not depend on the current state: the automaton processes every rooted
//! subword without knowledge of its left context, exactly like a bottom-up
//! tree automaton (§3.4). Theorem 4: every NWA with `s` states has an
//! equivalent (on well-matched words) weak bottom-up NWA with `s^s·|Σ|`
//! states, whose states are *functions* `f : Q → Q` recording, for the
//! current rooted segment, which end state each possible start state leads
//! to. Lemma 1 embeds stepwise bottom-up tree automata into bottom-up NWAs.

use crate::automaton::Nwa;
use nested_words::Symbol;
use std::collections::HashMap;
use tree_automata::DetStepwiseTA;

/// Applies the Theorem 4 construction to a **weak** NWA `a`: returns a weak
/// bottom-up NWA whose language agrees with `L(a)` on well-matched nested
/// words.
///
/// States of the result are functions `f : Q → Q`; only functions reachable
/// from the identity are materialized, so the size is bounded by `s^s` but is
/// usually far smaller. Combine with [`crate::weak::to_weak`] to start from
/// an arbitrary NWA (adding the `|Σ|` factor of the theorem statement).
pub fn to_bottom_up(a: &Nwa) -> Nwa {
    assert!(
        a.is_weak(),
        "Theorem 4 construction expects a weak NWA (apply to_weak first)"
    );
    let s = a.num_states();
    let sigma = a.sigma();

    // Function states, interned as vectors `f[q] = a-state`.
    let mut index: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut funcs: Vec<Vec<usize>> = Vec::new();
    let intern = |f: Vec<usize>,
                  funcs: &mut Vec<Vec<usize>>,
                  index: &mut HashMap<Vec<usize>, usize>|
     -> usize {
        if let Some(&i) = index.get(&f) {
            return i;
        }
        let i = funcs.len();
        index.insert(f.clone(), i);
        funcs.push(f);
        i
    };

    let identity: Vec<usize> = (0..s).collect();
    let init_idx = intern(identity, &mut funcs, &mut index);

    // After reading an a-labelled call, the new segment's function is
    // q ↦ δc^l(q, a) (independent of q for a bottom-up automaton; here we use
    // the weak automaton's linear component, which may depend on q — that
    // dependence is precisely what the function state absorbs).
    // Internal: f'(q) = δi(f(q), a).
    // Return with hierarchical function g: f'(q) = δr(f(g(q)), g(q), a).
    // (g(q) is also the state the weak automaton pushed, because it is weak.)

    // Explore reachable function states. Call transitions restart segments,
    // so the set of "call entry" functions is one per symbol; internals and
    // returns compose from there.
    let mut internal_tab: HashMap<(usize, usize), usize> = HashMap::new();
    let mut call_tab: HashMap<(usize, usize), usize> = HashMap::new();
    let mut return_tab: HashMap<(usize, usize, usize), usize> = HashMap::new();

    let mut changed = true;
    while changed {
        changed = false;
        let count = funcs.len();
        for fi in 0..count {
            for asym in 0..sigma {
                let sym = Symbol(asym as u16);
                if let std::collections::hash_map::Entry::Vacant(e) = call_tab.entry((fi, asym)) {
                    let f: Vec<usize> = (0..s).map(|q| a.call_linear(q, sym)).collect();
                    let t = intern(f, &mut funcs, &mut index);
                    e.insert(t);
                    changed = true;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = internal_tab.entry((fi, asym))
                {
                    let f: Vec<usize> = (0..s).map(|q| a.internal(funcs[fi][q], sym)).collect();
                    let t = intern(f, &mut funcs, &mut index);
                    e.insert(t);
                    changed = true;
                }
            }
        }
        let count = funcs.len();
        for fi in 0..count {
            for gi in 0..count {
                for asym in 0..sigma {
                    if return_tab.contains_key(&(fi, gi, asym)) {
                        continue;
                    }
                    let sym = Symbol(asym as u16);
                    let f: Vec<usize> = (0..s)
                        .map(|q| {
                            let gq = funcs[gi][q];
                            a.ret(funcs[fi][gq], gq, sym)
                        })
                        .collect();
                    let t = intern(f, &mut funcs, &mut index);
                    return_tab.insert((fi, gi, asym), t);
                    changed = true;
                }
            }
        }
    }

    let mut out = Nwa::new(funcs.len(), sigma, init_idx);
    for (i, f) in funcs.iter().enumerate() {
        out.set_accepting(i, a.is_accepting(f[a.initial()]));
    }
    for (&(fi, asym), &t) in &call_tab {
        // weak: hierarchical component propagates the current state
        out.set_call(fi, Symbol(asym as u16), t, fi);
    }
    for (&(fi, asym), &t) in &internal_tab {
        out.set_internal(fi, Symbol(asym as u16), t);
    }
    for (&(fi, gi, asym), &t) in &return_tab {
        out.set_return(fi, gi, Symbol(asym as u16), t);
    }
    out
}

/// Lemma 1: embeds a deterministic stepwise bottom-up tree automaton into a
/// bottom-up NWA over tree words: `nw_t(L(result)) = L(ta)` when the input is
/// restricted to tree words.
///
/// The stepwise automaton's state after a node's children is the NWA's state
/// before the node's return; the NWA's return transition ignores its symbol,
/// exactly as the paper describes.
pub fn from_stepwise(ta: &DetStepwiseTA) -> Nwa {
    let s = ta.num_states();
    let sigma = ta.sigma();
    // NWA states: 0..s mirror the stepwise states; state s is the fresh
    // "top-level" state used before the root and as the accepting carrier.
    // At an a-labelled call the linear state (independent of the current
    // state: bottom-up) becomes init(a); at a return the hierarchical state
    // (the state of the parent before this child) is combined with the
    // finished child's state.
    let top = s;
    let dead = s + 1;
    let accept = s + 2;
    let mut out = Nwa::new(s + 3, sigma, top);
    out.set_accepting(accept, true);
    out.set_all_transitions_to(dead, dead);
    for a in 0..sigma {
        let sym = Symbol(a as u16);
        // calls: from any state, linear goes to init(a); hierarchical carries
        // the current state (weak).
        for q in 0..s + 3 {
            let hier = q;
            out.set_call(q, sym, ta.init(sym), hier);
        }
        // internals never occur in tree words
        for q in 0..s + 3 {
            out.set_internal(q, sym, dead);
        }
        // returns: combine hierarchical (parent-so-far) with linear (child),
        // ignoring the return symbol (stepwise restriction).
        for child in 0..s {
            for parent in 0..s {
                out.set_return(child, parent, sym, ta.combine(parent, child));
            }
            // returning to top level: the root has just been completed
            out.set_return(
                child,
                top,
                sym,
                if ta.is_accepting(child) { accept } else { dead },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak::to_weak;
    use nested_words::generate::{random_tree, random_well_matched};
    use nested_words::tagged::parse_nested_word;
    use nested_words::{Alphabet, NestedWord, OrderedTree};

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// Weak NWA over {a,b}: accepts well-matched words with an even number of
    /// b-labelled positions (linear property, stated weakly).
    fn weak_even_bs() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(2, 2, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, q);
            m.set_internal(q, b, 1 - q);
            m.set_call(q, a, q, q);
            m.set_call(q, b, 1 - q, q);
            for h in 0..2 {
                m.set_return(q, h, a, q);
                m.set_return(q, h, b, 1 - q);
            }
        }
        m
    }

    #[test]
    fn theorem4_construction_is_bottom_up_and_weak() {
        let m = weak_even_bs();
        let bu = to_bottom_up(&m);
        assert!(bu.is_bottom_up());
        assert!(bu.is_weak());
        // bounded by s^s with s = 2, plus nothing else
        assert!(bu.num_states() <= 4);
    }

    #[test]
    fn theorem4_preserves_language_on_well_matched_words() {
        let m = weak_even_bs();
        let bu = to_bottom_up(&m);
        let ab = Alphabet::ab();
        for seed in 0..50 {
            let w = random_well_matched(&ab, 40, seed);
            assert_eq!(m.accepts(&w), bu.accepts(&w), "seed {seed}");
        }
    }

    #[test]
    fn theorem4_from_arbitrary_nwa_via_weak() {
        // matching-labels automaton (not weak) → weak → bottom-up
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(4, 2, 0);
        m.set_accepting(0, true);
        m.set_all_transitions_to(3, 3);
        m.set_internal(0, a, 0);
        m.set_internal(0, b, 0);
        m.set_call(0, a, 0, 1);
        m.set_call(0, b, 0, 2);
        for q in [1usize, 2] {
            m.set_all_transitions_to(q, 3);
        }
        for h in 0..4usize {
            for (sym, want) in [(a, 1usize), (b, 2usize)] {
                m.set_return(0, h, sym, if h == want { 0 } else { 3 });
            }
        }
        let bu = to_bottom_up(&to_weak(&m));
        assert!(bu.is_bottom_up());
        let mut ab = Alphabet::ab();
        for s in ["", "<a a>", "<a b>", "<a <b b> a>", "<a <b a> b>", "a b"] {
            let w = parse(&mut ab, s);
            assert!(w.is_well_matched());
            assert_eq!(m.accepts(&w), bu.accepts(&w), "word `{s}`");
        }
        let alphabet = Alphabet::ab();
        for seed in 0..30 {
            let w = random_well_matched(&alphabet, 30, seed);
            assert_eq!(m.accepts(&w), bu.accepts(&w), "seed {seed}");
        }
    }

    #[test]
    fn stepwise_embedding_agrees_with_tree_automaton() {
        // stepwise automaton: "the tree contains a b-labelled node"
        let a = Symbol(0);
        let b = Symbol(1);
        let mut ta = DetStepwiseTA::new(2, 2);
        ta.set_init(a, 0);
        ta.set_init(b, 1);
        for q in 0..2 {
            for r in 0..2 {
                ta.set_combine(q, r, usize::from(q == 1 || r == 1));
            }
        }
        ta.set_accepting(1, true);
        let nwa = from_stepwise(&ta);
        assert!(nwa.is_bottom_up());
        let alphabet = Alphabet::ab();
        for seed in 0..40 {
            let tree = random_tree(&alphabet, 12, 3, seed);
            let word = tree.to_nested_word();
            assert_eq!(ta.accepts(&tree), nwa.accepts(&word), "seed {seed}");
        }
        // hand-picked cases
        let t1 = OrderedTree::leaf(b);
        let t2 = OrderedTree::node(a, vec![OrderedTree::leaf(a), OrderedTree::leaf(a)]);
        assert!(nwa.accepts(&t1.to_nested_word()));
        assert!(!nwa.accepts(&t2.to_nested_word()));
    }
}
