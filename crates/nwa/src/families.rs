//! The language families used in the paper's succinctness theorems, together
//! with the automata and baselines the experiments compare.
//!
//! * Theorem 3: `L_s = { path(w) : w ∈ Σ^s }` — an NWA with `O(s)` states,
//!   while every word automaton over Σ̂ needs `2^s` states.
//! * Theorem 5: the tree-word family `〈a 〈b〉^m 〈a L^{i−1} 〈a〉 L^{s−i} a〉 a〉`
//!   with `i = (m mod s) + 1` — a flat NWA with `O(s²)` states, while every
//!   bottom-up NWA needs `2^s` states.
//! * Theorem 8: the path language `path(Σ^s a Σ^* a Σ^s)` — an NWA with
//!   `O(s)` states, while deterministic top-down and bottom-up automata need
//!   `2^s` states.
//!
//! Everything is over the two-letter alphabet Σ = {a, b} used in the paper.

use crate::automaton::Nwa;
use automata_core::{query, Minimize};
use nested_words::{NestedWord, PositionKind, Symbol, TaggedSymbol};
use word_automata::{Dfa, Regex};

const A: Symbol = Symbol(0);
const B: Symbol = Symbol(1);

// --------------------------------------------------------------------------
// Generic succinctness sweeps over the `Minimize` trait
// --------------------------------------------------------------------------

/// Minimal state count of any automaton model, obtained through the unified
/// [`Minimize`] trait — the one entry point the succinctness sweeps use, so
/// the comparisons range over models generically instead of calling each
/// model's bespoke minimizer.
pub fn minimal_states<M: Minimize>(m: &M) -> usize {
    query::minimize(m).num_states()
}

/// One row of a succinctness sweep: the family parameter `s`, the state
/// count of the succinct model (the upper-bound construction) and the
/// minimal state count of the baseline model, the latter computed through
/// [`minimal_states`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccinctnessRow {
    /// Family parameter.
    pub s: usize,
    /// States of the succinct construction (an NWA, or a flat NWA for
    /// Theorem 5).
    pub succinct_states: usize,
    /// Minimal states of the baseline model ([`minimal_states`]), except in
    /// the Theorem 5 sweep where the baseline is the count of
    /// distinguishable blocks (a lower bound on bottom-up NWA sizes).
    pub baseline_states: usize,
}

/// Theorem 3 sweep for `s ∈ 1..=max_s`: the `O(s)`-state NWA against the
/// minimal DFA over the tagged alphabet Σ̂ (which needs `> 2^s` states),
/// minimized through the trait.
pub fn theorem3_sweep(max_s: usize) -> Vec<SuccinctnessRow> {
    (1..=max_s)
        .map(|s| SuccinctnessRow {
            s,
            succinct_states: path_family_nwa(s).num_states(),
            baseline_states: minimal_states(&path_family_tagged_dfa(s)),
        })
        .collect()
}

/// Theorem 5 sweep for `s ∈ 1..=max_s`: the minimal *flat* NWA — computed on
/// the flat automaton itself via the congruence reduction behind
/// [`Minimize`] (exact there, Theorem 2) — against the number of pairwise
/// distinguishable inner blocks, a lower bound on the size of any bottom-up
/// NWA ([`theorem5_distinguishable_blocks`]).
pub fn theorem5_sweep(max_s: usize) -> Vec<SuccinctnessRow> {
    (1..=max_s)
        .map(|s| SuccinctnessRow {
            s,
            succinct_states: minimal_states(&crate::flat::from_tagged_dfa(
                &theorem5_tagged_dfa(s),
                2,
            )),
            baseline_states: theorem5_distinguishable_blocks(s),
        })
        .collect()
}

/// Theorem 8 sweep for `s ∈ 1..=max_s`: the `O(s)`-state NWA against the
/// minimal word DFA for `Σ^s a Σ^* a Σ^s` (which needs `≥ 2^s` states and
/// equals the deterministic top-down/bottom-up sizes), minimized through the
/// trait.
pub fn theorem8_sweep(max_s: usize) -> Vec<SuccinctnessRow> {
    (1..=max_s)
        .map(|s| SuccinctnessRow {
            s,
            succinct_states: theorem8_nwa(s).num_states(),
            baseline_states: minimal_states(&theorem8_regex(s).to_nfa(2).determinize()),
        })
        .collect()
}

// --------------------------------------------------------------------------
// Theorem 3: L_s = { path(w) : w ∈ Σ^s }
// --------------------------------------------------------------------------

/// Membership predicate for the Theorem 3 family: `n ∈ L_s` iff
/// `n = path(w)` for some `w ∈ {a,b}^s`.
pub fn path_family_contains(n: &NestedWord, s: usize) -> bool {
    match nested_words::path::unpath(n) {
        Some(w) => w.len() == s,
        None => false,
    }
}

/// A deterministic NWA with `O(s)` states accepting `L_s` (Theorem 3): a
/// depth counter for the descent, the call symbol passed along the
/// hierarchical edge, and a check at every return that the symbol matches.
pub fn path_family_nwa(s: usize) -> Nwa {
    // state layout
    let d = |i: usize| i; // descent counters 0..=s
    let up = s + 1;
    let done = s + 2;
    let sym_a = s + 3;
    let sym_b = s + 4;
    let root_a = s + 5;
    let root_b = s + 6;
    let dead = s + 7;
    let total = s + 8;
    let mut m = Nwa::new(total, 2, d(0));
    for q in 0..total {
        m.set_all_transitions_to(q, dead);
    }
    if s == 0 {
        m.set_accepting(d(0), true);
        return m;
    }
    m.set_accepting(done, true);
    for (sym, marker, root) in [(A, sym_a, root_a), (B, sym_b, root_b)] {
        // descent
        for i in 0..s {
            let hier = if i == 0 { root } else { marker };
            m.set_call(d(i), sym, d(i + 1), hier);
        }
        // first return happens at depth exactly s
        m.set_return(d(s), marker, sym, up);
        if s == 1 {
            // with depth 1 the first return is also the root return
        }
        m.set_return(d(s), root, sym, if s == 1 { done } else { dead });
        // subsequent returns on the way up
        m.set_return(up, marker, sym, up);
        m.set_return(up, root, sym, done);
    }
    m
}

/// A (not necessarily minimal) complete DFA over the tagged alphabet Σ̂
/// accepting `nw_w(L_s)`; minimize it to measure the `2^s` lower bound of
/// Theorem 3. States are the descent/ascent stacks of call symbols.
pub fn path_family_tagged_dfa(s: usize) -> Dfa {
    let sigma = 2usize;
    // state encoding: phase ∈ {descent, ascent}, stack = word over {a,b} of
    // length ≤ s. descent stacks have length = number of calls read; ascent
    // stacks are the symbols still to be matched.
    // index(stack) over all words of length ≤ s: standard binary-tree index.
    let num_stacks: usize = (0..=s).map(|l| 1usize << l).sum();
    let stack_index = |st: &[usize]| -> usize {
        // offset of length block + binary value
        let mut idx = 0usize;
        for l in 0..st.len() {
            idx += 1usize << l;
        }
        let mut v = 0usize;
        for &b in st {
            v = v * 2 + b;
        }
        idx + v
    };
    let dead = 2 * num_stacks;
    let total = 2 * num_stacks + 1;
    let mut dfa = Dfa::new(total, 3 * sigma, stack_index(&[]));
    for sy in 0..3 * sigma {
        dfa.set_transition(dead, sy, dead);
    }
    // enumerate all stacks of length ≤ s
    let mut all_stacks: Vec<Vec<usize>> = vec![vec![]];
    let mut frontier: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..s {
        let mut next = Vec::new();
        for st in &frontier {
            for b in 0..2usize {
                let mut st2 = st.clone();
                st2.push(b);
                next.push(st2);
            }
        }
        all_stacks.extend(next.iter().cloned());
        frontier = next;
    }

    let descent = |st: &[usize]| stack_index(st);
    let ascent = |st: &[usize]| num_stacks + stack_index(st);

    // the accepting state: ascent with empty stack
    dfa.set_accepting(ascent(&[]), true);
    for st in &all_stacks {
        let d_state = descent(st);
        let a_state = ascent(st);
        // default everything to dead, then overwrite the legal moves
        for sy in 0..3 * sigma {
            dfa.set_transition(d_state, sy, dead);
            dfa.set_transition(a_state, sy, dead);
        }
        for (b, sym) in [(0usize, A), (1usize, B)] {
            // descent: calls push while below depth s
            if st.len() < s {
                let mut st2 = st.to_vec();
                st2.push(b);
                dfa.set_transition(
                    d_state,
                    TaggedSymbol::Call(sym).tagged_index(sigma),
                    descent(&st2),
                );
            }
            // at depth s, the matching return of the deepest call flips to ascent
            if st.len() == s && !st.is_empty() && st[st.len() - 1] == b {
                let st2 = &st[..st.len() - 1];
                dfa.set_transition(
                    d_state,
                    TaggedSymbol::Return(sym).tagged_index(sigma),
                    ascent(st2),
                );
            }
            // ascent: returns must match the top of the remaining stack
            if !st.is_empty() && st[st.len() - 1] == b {
                let st2 = &st[..st.len() - 1];
                dfa.set_transition(
                    a_state,
                    TaggedSymbol::Return(sym).tagged_index(sigma),
                    ascent(st2),
                );
            }
        }
    }
    if s == 0 {
        // path(ε) is the empty word: the initial descent state accepts
        let mut d0 = dfa;
        d0.set_accepting(descent(&[]), true);
        return d0;
    }
    dfa
}

// --------------------------------------------------------------------------
// Theorem 8: path(Σ^s a Σ^* a Σ^s)
// --------------------------------------------------------------------------

/// The word-language regex `Σ^s a Σ^* a Σ^s` over symbol indices {0 = a,
/// 1 = b}; its minimal DFA (and that of its reverse) needs `2^s` states.
pub fn theorem8_regex(s: usize) -> Regex {
    let any = Regex::Symbol(0).union(Regex::Symbol(1));
    let mut r = Regex::Epsilon;
    for _ in 0..s {
        r = r.concat(any.clone());
    }
    r = r
        .concat(Regex::Symbol(0))
        .concat(any.clone().star())
        .concat(Regex::Symbol(0));
    for _ in 0..s {
        r = r.concat(any.clone());
    }
    r
}

/// Membership predicate for the Theorem 8 path-language family:
/// `n = path(w)` with `w ∈ Σ^s a Σ^* a Σ^s`.
pub fn theorem8_contains(n: &NestedWord, s: usize) -> bool {
    match nested_words::path::unpath(n) {
        Some(w) => w.len() >= 2 * s + 2 && w[s] == A && w[w.len() - 1 - s] == A,
        None => false,
    }
}

/// A deterministic NWA with `O(s)` states accepting the Theorem 8 path
/// language: count `s` calls going down and check the `(s+1)`-th symbol is
/// `a`; count `s` returns coming up and check the `(s+1)`-th return is `a`;
/// verify the path shape by passing the call symbol along the hierarchical
/// edge.
pub fn theorem8_nwa(s: usize) -> Nwa {
    // states
    let c = |i: usize| i; // 0..=s descent counter
    let mid = s + 1;
    let u = |i: usize| s + 2 + i; // 1..=s ascent counter (u(0) unused)
    let up_rest = 2 * s + 3;
    let done = 2 * s + 4;
    let sym_a = 2 * s + 5;
    let sym_b = 2 * s + 6;
    let root_a = 2 * s + 7;
    let root_b = 2 * s + 8;
    // distinguished marker pushed by the (s+1)-th call: popping it before the
    // ascent check means the word is shorter than 2s+2 and must be rejected
    let chk = 2 * s + 9;
    let dead = 2 * s + 10;
    let total = 2 * s + 11;
    let mut m = Nwa::new(total, 2, c(0));
    for q in 0..total {
        m.set_all_transitions_to(q, dead);
    }
    m.set_accepting(done, true);
    for (sym, marker, root) in [(A, sym_a, root_a), (B, sym_b, root_b)] {
        // descent: the first s symbols are unconstrained
        for i in 0..s {
            let hier = if i == 0 { root } else { marker };
            m.set_call(c(i), sym, c(i + 1), hier);
        }
        // the (s+1)-th symbol must be a
        if sym == A {
            let hier = if s == 0 { root } else { chk };
            m.set_call(c(s), sym, mid, hier);
        }
        // the rest of the descent is unconstrained
        m.set_call(mid, sym, mid, marker);
        // ascent: the first s returns are unconstrained, then the (s+1)-th
        // return (counted from the end of the word) must be a
        if s >= 1 {
            m.set_return(mid, marker, sym, u(1));
            for i in 1..s {
                m.set_return(u(i), marker, sym, u(i + 1));
            }
            if sym == A {
                m.set_return(u(s), marker, sym, up_rest);
            }
        } else if sym == A {
            m.set_return(mid, marker, sym, up_rest);
        }
        // the rest of the ascent is unconstrained; the root return finishes
        m.set_return(up_rest, marker, sym, up_rest);
        if sym == A {
            m.set_return(up_rest, chk, sym, up_rest);
        }
        m.set_return(up_rest, root, sym, done);
    }
    m
}

// --------------------------------------------------------------------------
// Theorem 5: 〈a 〈b〉^m 〈a L^{i−1} 〈a〉 L^{s−i} a〉 a〉 with i = (m mod s) + 1
// --------------------------------------------------------------------------

/// Builds the inner block of the Theorem 5 family: a rooted `<a … a>` word
/// whose children are `s` leaves, the `j`-th leaf labelled `a` when
/// `j ∈ a_positions` (1-based) and `b` otherwise.
pub fn theorem5_inner_block(s: usize, a_positions: &[usize]) -> NestedWord {
    let mut tagged = vec![TaggedSymbol::Call(A)];
    for j in 1..=s {
        let sym = if a_positions.contains(&j) { A } else { B };
        tagged.push(TaggedSymbol::Call(sym));
        tagged.push(TaggedSymbol::Return(sym));
    }
    tagged.push(TaggedSymbol::Return(A));
    NestedWord::from_tagged(&tagged)
}

/// Builds a full word of the Theorem 5 family shape with `m` `〈b〉` leaves
/// followed by the given inner block: `〈a 〈b〉^m  inner  a〉`.
pub fn theorem5_full_word(m: usize, inner: &NestedWord) -> NestedWord {
    let mut tagged = vec![TaggedSymbol::Call(A)];
    for _ in 0..m {
        tagged.push(TaggedSymbol::Call(B));
        tagged.push(TaggedSymbol::Return(B));
    }
    tagged.extend(inner.to_tagged());
    tagged.push(TaggedSymbol::Return(A));
    NestedWord::from_tagged(&tagged)
}

/// Membership predicate for the Theorem 5 family `L_s`.
pub fn theorem5_member(n: &NestedWord, s: usize) -> bool {
    if s == 0 || !n.is_rooted() || n.symbol(0) != A {
        return false;
    }
    // children of the root: a sequence of 〈b〉 leaves, then one inner block
    let mut i = 1;
    let end = n.len() - 1;
    let mut m = 0usize;
    while i + 1 < end
        && n.kind(i) == PositionKind::Call
        && n.symbol(i) == B
        && n.return_successor(i) == Some(i + 1)
    {
        m += 1;
        i += 2;
    }
    // the inner block
    if i >= end || n.kind(i) != PositionKind::Call || n.symbol(i) != A {
        return false;
    }
    let close = match n.return_successor(i) {
        Some(c) if c == end - 1 && n.symbol(c) == A => c,
        _ => return false,
    };
    // children of the inner block: exactly s leaves
    let mut j = i + 1;
    let mut leaves: Vec<Symbol> = Vec::new();
    while j < close {
        if n.kind(j) != PositionKind::Call
            || n.return_successor(j) != Some(j + 1)
            || n.symbol(j) != n.symbol(j + 1)
        {
            return false;
        }
        leaves.push(n.symbol(j));
        j += 2;
    }
    if leaves.len() != s {
        return false;
    }
    let i_req = (m % s) + 1;
    leaves[i_req - 1] == A
}

/// A complete DFA over Σ̂ accepting `nw_w(L_s)` of the Theorem 5 family with
/// `O(s²)` states (the flat-NWA upper bound of Theorem 5); minimize to get
/// the exact flat size.
pub fn theorem5_tagged_dfa(s: usize) -> Dfa {
    assert!(s >= 1);
    let sigma = 2usize;
    // phases:
    //  0: expect root <a
    //  1 + r (r in 0..s): reading 〈b〉 leaves, m ≡ r (mod s); expect <b or <a
    //  after <b in phase r: expect b>  → state group "bopen"
    //  inner block for residue r: expecting child j (1..=s+1); within a child
    //  expecting the closing leaf tag; then closing a>, then root a>, then end
    // state encoding below; everything else goes to `dead`.
    let p_root = 0usize;
    let p_count = |r: usize| 1 + r; // expect <b or <a
    let p_bopen = |r: usize| 1 + s + r; // expect b>
                                        // inner(r, j, open): j in 1..=s ; open: 0 = expecting child j's call,
                                        //                    1 = expecting a-leaf close, 2 = expecting b-leaf close
    let p_inner =
        |r: usize, j: usize, open: usize| 1 + 2 * s + ((r * (s + 1) + (j - 1)) * 3 + open);
    let p_close_inner = |r: usize| 1 + 2 * s + (s * (s + 1) * 3) + r; // expect inner a> ... folded below
    let p_root_close = 1 + 2 * s + s * (s + 1) * 3 + s;
    let p_accept = p_root_close + 1;
    let dead = p_accept + 1;
    let total = dead + 1;

    let call = |sym: Symbol| TaggedSymbol::Call(sym).tagged_index(sigma);
    let ret = |sym: Symbol| TaggedSymbol::Return(sym).tagged_index(sigma);

    let mut dfa = Dfa::new(total, 3 * sigma, p_root);
    for q in 0..total {
        for sy in 0..3 * sigma {
            dfa.set_transition(q, sy, dead);
        }
    }
    dfa.set_accepting(p_accept, true);
    // root call
    dfa.set_transition(p_root, call(A), p_count(0));
    for r in 0..s {
        // 〈b〉 leaves
        dfa.set_transition(p_count(r), call(B), p_bopen(r));
        dfa.set_transition(p_bopen(r), ret(B), p_count((r + 1) % s));
        // start of the inner block
        dfa.set_transition(p_count(r), call(A), p_inner(r, 1, 0));
        let i_req = r + 1;
        for j in 1..=s {
            // child j: an a-leaf always allowed; a b-leaf only if j ≠ i_req
            dfa.set_transition(p_inner(r, j, 0), call(A), p_inner(r, j, 1));
            if j != i_req {
                dfa.set_transition(p_inner(r, j, 0), call(B), p_inner(r, j, 2));
            }
            let next = if j == s {
                p_close_inner(r)
            } else {
                p_inner(r, j + 1, 0)
            };
            dfa.set_transition(p_inner(r, j, 1), ret(A), next);
            dfa.set_transition(p_inner(r, j, 2), ret(B), next);
        }
        // close the inner block, then the root
        dfa.set_transition(p_close_inner(r), ret(A), p_root_close);
    }
    dfa.set_transition(p_root_close, ret(A), p_accept);
    dfa
}

/// All `2^s` inner blocks that contain the required `a` at position `i` are
/// pairwise distinguishable by outer contexts (the heart of the Theorem 5
/// lower-bound argument). Returns the number of equivalence classes found by
/// testing every pair with every context `m ∈ 0..s`, using
/// [`theorem5_member`] as the oracle. The result should equal `2^s`.
pub fn theorem5_distinguishable_blocks(s: usize) -> usize {
    let subsets: Vec<Vec<usize>> = (0..(1usize << s))
        .map(|mask| (1..=s).filter(|j| mask & (1 << (j - 1)) != 0).collect())
        .collect();
    let blocks: Vec<NestedWord> = subsets.iter().map(|t| theorem5_inner_block(s, t)).collect();
    // signature of a block = acceptance vector over all contexts m ∈ 0..s
    let mut signatures: Vec<Vec<bool>> = Vec::new();
    for block in &blocks {
        let sig: Vec<bool> = (0..s)
            .map(|m| theorem5_member(&theorem5_full_word(m, block), s))
            .collect();
        signatures.push(sig);
    }
    signatures.sort();
    signatures.dedup();
    signatures.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::path::path;
    use nested_words::Alphabet;

    #[test]
    fn path_family_nwa_accepts_exactly_ls() {
        for s in 0..6usize {
            let nwa = path_family_nwa(s);
            // all words w of length ≤ s+1 over {a,b}
            for len in 0..=s + 1 {
                for bits in 0..(1u32 << len) {
                    let w: Vec<Symbol> = (0..len)
                        .map(|i| if (bits >> i) & 1 == 0 { A } else { B })
                        .collect();
                    let p = path(&w);
                    let expected = len == s;
                    assert_eq!(nwa.accepts(&p), expected, "s={s} w={w:?}");
                    assert_eq!(path_family_contains(&p, s), expected);
                }
            }
        }
    }

    #[test]
    fn path_family_nwa_rejects_non_path_words() {
        let mut ab = Alphabet::ab();
        let nwa = path_family_nwa(2);
        for text in [
            "<a <b a> b>",
            "<a <a a> <b b> a>",
            "a a",
            "<a <a a>",
            "<a a> b>",
        ] {
            let w = nested_words::tagged::parse_nested_word(text, &mut ab).unwrap();
            assert!(!nwa.accepts(&w), "word `{text}`");
        }
    }

    #[test]
    fn path_family_dfa_matches_nwa_and_needs_exponentially_many_states() {
        for s in 1..6usize {
            let nwa = path_family_nwa(s);
            let dfa = path_family_tagged_dfa(s);
            // agreement on all path(w) with |w| ≤ s+1
            for len in 0..=s + 1 {
                for bits in 0..(1u32 << len) {
                    let w: Vec<Symbol> = (0..len)
                        .map(|i| if (bits >> i) & 1 == 0 { A } else { B })
                        .collect();
                    let p = path(&w);
                    let tagged: Vec<usize> =
                        p.to_tagged().iter().map(|t| t.tagged_index(2)).collect();
                    assert_eq!(nwa.accepts(&p), dfa.accepts(&tagged), "s={s} w={w:?}");
                }
            }
            let minimal = minimal_states(&dfa);
            assert!(
                minimal >= (1 << s),
                "s={s}: minimal DFA has {minimal} states, expected ≥ {}",
                1 << s
            );
            assert!(nwa.num_states() <= s + 8);
        }
    }

    #[test]
    fn theorem8_nwa_and_predicate_agree() {
        for s in 0..4usize {
            let nwa = theorem8_nwa(s);
            for len in 0..=2 * s + 4 {
                // sample a few words of each length rather than all 2^len
                for bits in [
                    0u32,
                    1,
                    (1 << len.min(31)) - 1,
                    0b1010_1010 & ((1 << len.min(31)) - 1),
                ] {
                    let w: Vec<Symbol> = (0..len)
                        .map(|i| if (bits >> (i % 31)) & 1 == 0 { A } else { B })
                        .collect();
                    let p = path(&w);
                    assert_eq!(
                        nwa.accepts(&p),
                        theorem8_contains(&p, s),
                        "s={s} len={len} bits={bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem8_dfa_is_exponential_and_nwa_is_linear() {
        for row in theorem8_sweep(6) {
            let s = row.s;
            assert!(
                row.baseline_states >= (1 << s),
                "s={s}: {}",
                row.baseline_states
            );
            assert!(row.succinct_states <= 2 * s + 11);
        }
    }

    #[test]
    fn theorem5_membership_and_builders() {
        let s = 3;
        // m = 1 → i = 2: the second leaf of the inner block must be a
        let good = theorem5_full_word(1, &theorem5_inner_block(s, &[2]));
        let bad = theorem5_full_word(1, &theorem5_inner_block(s, &[1, 3]));
        assert!(theorem5_member(&good, s));
        assert!(!theorem5_member(&bad, s));
        // wrong number of children
        let short = theorem5_full_word(1, &theorem5_inner_block(2, &[2]));
        assert!(!theorem5_member(&short, s));
        // the inner block alone (without the outer context) is not a member
        assert!(!theorem5_member(&theorem5_inner_block(s, &[1]), s));
    }

    #[test]
    fn theorem5_dfa_agrees_with_predicate() {
        let s = 3;
        let dfa = theorem5_tagged_dfa(s);
        for m in 0..2 * s {
            for mask in 0..(1usize << s) {
                let subset: Vec<usize> = (1..=s).filter(|j| mask & (1 << (j - 1)) != 0).collect();
                let w = theorem5_full_word(m, &theorem5_inner_block(s, &subset));
                let tagged: Vec<usize> = w.to_tagged().iter().map(|t| t.tagged_index(2)).collect();
                assert_eq!(
                    dfa.accepts(&tagged),
                    theorem5_member(&w, s),
                    "m={m} mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn theorem5_flat_size_is_quadratic_and_blocks_are_exponential() {
        for row in theorem5_sweep(5) {
            let s = row.s;
            assert!(
                row.succinct_states <= 4 * s * s + 8 * s + 10,
                "s={s}: flat size {}",
                row.succinct_states
            );
            assert_eq!(row.baseline_states, 1 << s, "s={s}");
        }
    }

    /// The Theorem 5 sweep computes the minimal flat size on the flat NWA
    /// itself (the new congruence reduction); it must agree with minimizing
    /// the tagged DFA directly (Theorem 2: the conversions are size-exact).
    #[test]
    fn theorem5_sweep_agrees_with_tagged_dfa_minimization() {
        for row in theorem5_sweep(4) {
            assert_eq!(
                row.succinct_states,
                minimal_states(&theorem5_tagged_dfa(row.s)),
                "s={}",
                row.s
            );
        }
    }
}
