//! Compiled query sets: M deterministic NWAs decided in one pass over one
//! stream.
//!
//! [`QuerySet`] is the reference implementation of the
//! `automata_core::{MultiCompile, MultiAcceptor, QuerySetRun}` capability.
//! It compiles a set of M queries over a common alphabet into one artifact
//! with two interchangeable backends:
//!
//! * **Product** — the member automata are folded into one product NWA
//!   (componentwise `δc`/`δi`/`δr`, the [`crate::boolean::product`]
//!   construction) and compiled into a single dense table, plus a per-state
//!   **accept mask**: `masks[q]` has bit `i` set iff query `i`'s component
//!   of product state `q` is accepting. One table lookup per event answers
//!   all M queries; the trade is table size, which multiplies across
//!   members (`∏ nᵢ` states, and the compiled fused table is quadratic in
//!   that).
//! * **Lockstep** — the members compile individually and their M runs
//!   advance back to back per event slice. Linear space, M dependent table
//!   lookups per event; the per-event cost still amortizes the dominant
//!   tokenization pass, which is shared either way.
//!
//! [`QuerySet::compile`] picks by a size heuristic: the product backend is
//! taken exactly when its fused table would stay within
//! [`PRODUCT_TABLE_BYTE_CAP`] (so the hot table stays cache-resident and
//! construction stays trivial); anything bigger — or overflowing — runs
//! lockstep. [`QuerySet::with_backend`] forces a backend, which is how the
//! backend-equivalence properties in `tests/multiquery.rs` pin that both
//! answer identically on the same seeds.
//!
//! The set also implements the single-verdict traits
//! (`StreamAcceptor`/`BatchAcceptor`) as the **conjunction view**: the set
//! accepts iff every member accepts — the intersection language — so one
//! `QuerySet` can sit behind every existing single-verdict layer
//! (`DecisionService`, `query::run_batch`) while
//! [`DecisionService::submit_multi`](../nwa_service/struct.DecisionService.html)
//! and `query::run_multi` read the per-query verdicts.

use crate::automaton::Nwa;
use crate::boolean;
use crate::compile::{CompiledNwa, CompiledNwaLane, CompiledNwaRun};
use automata_core::multi::MAX_QUERIES;
use automata_core::persist::{
    checksum_bytes, expect_alphabet, fingerprint_alphabet, fingerprint_payload, kind, Reader,
    Writer,
};
use automata_core::{
    BatchAcceptor, Compile, MultiAcceptor, MultiCompile, Persist, PersistError, QuerySetRun,
    StreamAcceptor, StreamOutcome, StreamRun,
};
use nested_words::TaggedSymbol;

/// Ceiling on the product backend's fused-table footprint, in bytes.
///
/// The compiled product table holds `(n + n²)·3σ` `u32` entries for
/// `n = ∏ nᵢ` product states; past ~1 MiB it stops fitting alongside the
/// scanner's working set in L2 and the single-lookup advantage erodes, so
/// [`QuerySet::compile`] switches to the lockstep backend there.
pub const PRODUCT_TABLE_BYTE_CAP: u64 = 1 << 20;

/// Which representation a [`QuerySet`] runs on. [`QuerySet::compile`]
/// chooses automatically; [`QuerySet::with_backend`] forces one (used by
/// the backend-equivalence property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySetBackend {
    /// One product automaton with per-state accept masks: a single table
    /// lookup per event decides all member queries.
    Product,
    /// M individually compiled engines advanced back to back per event.
    Lockstep,
}

/// The backing representation plus its compiled data.
#[derive(Debug, PartialEq)]
enum Backend {
    Product {
        engine: CompiledNwa,
        /// Per product state: bit `i` set iff query `i`'s component accepts.
        masks: Vec<u64>,
    },
    Lockstep {
        engines: Vec<CompiledNwa>,
    },
}

/// A compiled set of M deterministic NWA queries over one common alphabet,
/// stepped once per event for all M verdicts.
///
/// Build with [`QuerySet::compile`] (or `query::compile_set`), drive with
/// `query::run_multi` / `nwa_xml::queries::run_multi_streaming_reader`, or
/// through [`MultiAcceptor::start_set`] directly. Round-trips through
/// `Persist` like every compiled engine (`load(save(set)) == set`).
#[derive(Debug, PartialEq)]
pub struct QuerySet {
    num_queries: usize,
    sigma: u32,
    backend: Backend,
}

/// The conjunction bitmask of an M-query set: the low `m` bits.
fn full_mask(m: usize) -> u64 {
    debug_assert!((1..=MAX_QUERIES).contains(&m));
    if m == MAX_QUERIES {
        u64::MAX
    } else {
        (1u64 << m) - 1
    }
}

/// The product backend's fused-table footprint in bytes, or `None` on
/// overflow: `(n + n²)·3σ·4` for `n = ∏ nᵢ`.
fn product_table_bytes(queries: &[Nwa]) -> Option<u64> {
    let mut n: u64 = 1;
    for q in queries {
        n = n.checked_mul(q.num_states() as u64)?;
    }
    let stride = (3 * queries[0].sigma() as u64).max(1);
    n.checked_mul(n)?
        .checked_add(n)?
        .checked_mul(stride)?
        .checked_mul(4)
}

impl QuerySet {
    /// Compiles `queries` into one multi-query artifact, selecting the
    /// backend by size: the shared product table (one lookup per event) when
    /// its footprint stays within [`PRODUCT_TABLE_BYTE_CAP`], otherwise M
    /// engines in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, holds more than
    /// [`MAX_QUERIES`] members, or mixes
    /// alphabet sizes.
    pub fn compile(queries: &[Nwa]) -> QuerySet {
        assert!(!queries.is_empty(), "a query set needs at least one query");
        let backend =
            if product_table_bytes(queries).is_some_and(|bytes| bytes <= PRODUCT_TABLE_BYTE_CAP) {
                QuerySetBackend::Product
            } else {
                QuerySetBackend::Lockstep
            };
        QuerySet::with_backend(queries, backend)
    }

    /// Compiles `queries` on a forced backend, bypassing the size heuristic.
    /// Same panics as [`QuerySet::compile`]; additionally, forcing
    /// [`QuerySetBackend::Product`] on a set whose product table overflows
    /// the dense engine's `u32` offset space panics in the table builder.
    pub fn with_backend(queries: &[Nwa], backend: QuerySetBackend) -> QuerySet {
        assert!(!queries.is_empty(), "a query set needs at least one query");
        assert!(
            queries.len() <= MAX_QUERIES,
            "a query set holds at most {MAX_QUERIES} queries (got {}); split larger \
             workloads into multiple sets",
            queries.len()
        );
        let sigma = queries[0].sigma();
        for q in queries {
            assert_eq!(q.sigma(), sigma, "query sets require a common alphabet");
        }
        let num_queries = queries.len();
        let backend = match backend {
            QuerySetBackend::Product => {
                // Left-fold of the pairwise product: state encoding
                // `((q₁·n₂ + q₂)·n₃ + q₃)…`, acceptance folded with ∧ so the
                // product automaton itself is the conjunction view.
                let mut product = queries[0].clone();
                for q in &queries[1..] {
                    product = boolean::intersect(&product, q);
                }
                // Per-state accept masks, by decoding each product state
                // back into its member components (rightmost query is the
                // fastest-varying digit of the mixed-radix encoding).
                let masks = (0..product.num_states())
                    .map(|mut s| {
                        let mut mask = 0u64;
                        for (i, q) in queries.iter().enumerate().rev() {
                            if q.is_accepting(s % q.num_states()) {
                                mask |= 1 << i;
                            }
                            s /= q.num_states();
                        }
                        mask
                    })
                    .collect();
                Backend::Product {
                    engine: product.compile(),
                    masks,
                }
            }
            QuerySetBackend::Lockstep => Backend::Lockstep {
                engines: queries.iter().map(Compile::compile).collect(),
            },
        };
        QuerySet {
            num_queries,
            sigma: sigma as u32,
            backend,
        }
    }

    /// Which backend the set compiled to.
    pub fn backend(&self) -> QuerySetBackend {
        match self.backend {
            Backend::Product { .. } => QuerySetBackend::Product,
            Backend::Lockstep { .. } => QuerySetBackend::Lockstep,
        }
    }

    /// Number of member queries.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Alphabet size every member was compiled against.
    pub fn sigma(&self) -> usize {
        self.sigma as usize
    }

    /// Total dense-table footprint in bytes: the product table, or the sum
    /// of the member engines' tables.
    pub fn table_bytes(&self) -> usize {
        match &self.backend {
            Backend::Product { engine, .. } => engine.table_bytes(),
            Backend::Lockstep { engines } => engines.iter().map(CompiledNwa::table_bytes).sum(),
        }
    }
}

// --------------------------------------------------------------------------
// Runs
// --------------------------------------------------------------------------

/// The per-backend run state of a [`QuerySetRunState`].
#[derive(Debug)]
enum RunInner<'a> {
    Product(CompiledNwaRun<'a>),
    Lockstep(Vec<CompiledNwaRun<'a>>),
}

/// One in-progress run of a [`QuerySet`] over a stream: all M member
/// queries advanced per event, per-query verdicts readable at every prefix
/// through the `QuerySetRun` trait.
#[derive(Debug)]
pub struct QuerySetRunState<'a> {
    set: &'a QuerySet,
    inner: RunInner<'a>,
}

impl StreamRun for QuerySetRunState<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        match &mut self.inner {
            RunInner::Product(run) => run.step(event),
            RunInner::Lockstep(runs) => {
                for run in runs {
                    run.step(event);
                }
            }
        }
    }

    fn step_slice(&mut self, events: &[TaggedSymbol]) {
        match &mut self.inner {
            RunInner::Product(run) => run.step_slice(events),
            // Engines outer, events inner: each member gets the compiled
            // register-resident slice loop over the whole buffered run.
            RunInner::Lockstep(runs) => {
                for run in runs {
                    run.step_slice(events);
                }
            }
        }
    }

    /// The conjunction view: `true` iff **every** member query accepts the
    /// prefix read so far (the product automaton folds acceptance with ∧,
    /// so both backends answer identically).
    fn is_accepting(&self) -> bool {
        match &self.inner {
            RunInner::Product(run) => run.is_accepting(),
            RunInner::Lockstep(runs) => runs.iter().all(StreamRun::is_accepting),
        }
    }

    fn stack_height(&self) -> usize {
        // Stack height is a function of the event stream alone (one frame
        // per currently open call, whatever the states), so any member run
        // reports it for the whole set.
        match &self.inner {
            RunInner::Product(run) => run.stack_height(),
            RunInner::Lockstep(runs) => runs[0].stack_height(),
        }
    }

    fn peak_memory(&self) -> usize {
        match &self.inner {
            RunInner::Product(run) => run.peak_memory(),
            RunInner::Lockstep(runs) => runs[0].peak_memory(),
        }
    }

    fn steps(&self) -> usize {
        match &self.inner {
            RunInner::Product(run) => run.steps(),
            RunInner::Lockstep(runs) => runs[0].steps(),
        }
    }
}

impl QuerySetRun for QuerySetRunState<'_> {
    fn num_queries(&self) -> usize {
        self.set.num_queries
    }

    fn verdicts(&self) -> u64 {
        match &self.inner {
            RunInner::Product(run) => {
                let Backend::Product { masks, .. } = &self.set.backend else {
                    unreachable!("product run on a lockstep set");
                };
                masks[(run.state / run.tables.stride) as usize]
            }
            RunInner::Lockstep(runs) => runs.iter().enumerate().fold(0u64, |acc, (i, run)| {
                acc | (u64::from(run.is_accepting()) << i)
            }),
        }
    }

    fn outcomes(&self) -> Vec<StreamOutcome> {
        let verdicts = self.verdicts();
        let events = self.steps();
        let peak_memory = self.peak_memory();
        (0..self.set.num_queries)
            .map(|i| StreamOutcome {
                accepted: verdicts & (1 << i) != 0,
                events,
                peak_memory,
            })
            .collect()
    }
}

impl MultiAcceptor for QuerySet {
    type SetRun<'a> = QuerySetRunState<'a>;

    fn start_set(&self) -> QuerySetRunState<'_> {
        let inner = match &self.backend {
            Backend::Product { engine, .. } => RunInner::Product(engine.start()),
            Backend::Lockstep { engines } => {
                RunInner::Lockstep(engines.iter().map(StreamAcceptor::start).collect())
            }
        };
        QuerySetRunState { set: self, inner }
    }

    fn num_queries(&self) -> usize {
        self.num_queries
    }

    fn member_alphabet_fingerprints(&self) -> Vec<u64> {
        // Every member shares the set's alphabet by construction, so the
        // fingerprints coincide — but serving layers validate each entry,
        // so the contract stays per-query.
        vec![fingerprint_alphabet(self.sigma as usize); self.num_queries]
    }
}

impl MultiCompile for Nwa {
    type CompiledSet = QuerySet;

    fn compile_set(queries: &[Nwa]) -> QuerySet {
        QuerySet::compile(queries)
    }
}

// --------------------------------------------------------------------------
// The single-verdict (conjunction) view
// --------------------------------------------------------------------------

impl StreamAcceptor for QuerySet {
    type Run<'a> = QuerySetRunState<'a>;

    /// Starts the conjunction view: the run accepts iff every member
    /// accepts (the intersection language). The same run doubles as the
    /// multi-verdict [`MultiAcceptor::start_set`] run.
    fn start(&self) -> QuerySetRunState<'_> {
        self.start_set()
    }
}

/// The per-backend lane of a [`QuerySet`] batch: owned, `Send`, borrows
/// nothing.
#[derive(Debug)]
enum LaneInner {
    Product(CompiledNwaLane),
    Lockstep(Vec<CompiledNwaLane>),
}

/// One owned per-stream lane of a [`QuerySet`] under `BatchAcceptor`: the
/// conjunction view's batch state (every member advanced per event).
#[derive(Debug)]
pub struct QuerySetLane {
    inner: LaneInner,
}

impl BatchAcceptor for QuerySet {
    type Lane = QuerySetLane;

    fn lane_start(&self) -> QuerySetLane {
        let inner = match &self.backend {
            Backend::Product { engine, .. } => LaneInner::Product(engine.lane_start()),
            Backend::Lockstep { engines } => {
                LaneInner::Lockstep(engines.iter().map(BatchAcceptor::lane_start).collect())
            }
        };
        QuerySetLane { inner }
    }

    fn lane_step(&self, lane: &mut QuerySetLane, event: TaggedSymbol) {
        match (&self.backend, &mut lane.inner) {
            (Backend::Product { engine, .. }, LaneInner::Product(lane)) => {
                engine.lane_step(lane, event);
            }
            (Backend::Lockstep { engines }, LaneInner::Lockstep(lanes)) => {
                for (engine, lane) in engines.iter().zip(lanes) {
                    engine.lane_step(lane, event);
                }
            }
            _ => unreachable!("lane backend does not match its query set"),
        }
    }

    fn lane_accepting(&self, lane: &QuerySetLane) -> bool {
        match (&self.backend, &lane.inner) {
            (Backend::Product { engine, .. }, LaneInner::Product(lane)) => {
                engine.lane_accepting(lane)
            }
            (Backend::Lockstep { engines }, LaneInner::Lockstep(lanes)) => engines
                .iter()
                .zip(lanes)
                .all(|(engine, lane)| engine.lane_accepting(lane)),
            _ => unreachable!("lane backend does not match its query set"),
        }
    }

    fn lane_outcome(&self, lane: &QuerySetLane) -> StreamOutcome {
        match (&self.backend, &lane.inner) {
            (Backend::Product { engine, .. }, LaneInner::Product(lane)) => {
                engine.lane_outcome(lane)
            }
            (Backend::Lockstep { engines }, LaneInner::Lockstep(lanes)) => {
                let first = engines[0].lane_outcome(&lanes[0]);
                StreamOutcome {
                    accepted: engines
                        .iter()
                        .zip(lanes)
                        .all(|(engine, lane)| engine.lane_accepting(lane)),
                    ..first
                }
            }
            _ => unreachable!("lane backend does not match its query set"),
        }
    }

    /// Lanes drain sequentially, one stream at a time: the fused NWA step
    /// is issue-width-bound and interleaved lanes spill (the PR6
    /// measurement behind `CompiledNwa`'s identical override), and a
    /// lockstep set already advances M engines per event.
    fn run_batch(&self, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
        streams
            .iter()
            .map(|stream| {
                let mut lane = self.lane_start();
                for &event in *stream {
                    self.lane_step(&mut lane, event);
                }
                self.lane_outcome(&lane)
            })
            .collect()
    }
}

// --------------------------------------------------------------------------
// Persist
// --------------------------------------------------------------------------

/// Backend tags on the wire.
const TAG_PRODUCT: u32 = 0;
const TAG_LOCKSTEP: u32 = 1;

impl QuerySet {
    /// Serializes the set: backend tag, member count, σ, then the backend's
    /// compiled data — the member/product engines ride as complete framed
    /// [`CompiledNwa`] images (header, checksum and all), so their loader
    /// revalidates every table entry on decode.
    fn write_payload(&self, w: &mut Writer) {
        w.put_u32(match self.backend {
            Backend::Product { .. } => TAG_PRODUCT,
            Backend::Lockstep { .. } => TAG_LOCKSTEP,
        });
        w.put_u32(self.num_queries as u32);
        w.put_u32(self.sigma);
        match &self.backend {
            Backend::Product { engine, masks } => {
                w.put_bytes(&engine.save());
                w.put_u64(masks.len() as u64);
                for &mask in masks {
                    w.put_u64(mask);
                }
            }
            Backend::Lockstep { engines } => {
                for engine in engines {
                    w.put_bytes(&engine.save());
                }
            }
        }
    }
}

impl Persist for QuerySet {
    const KIND: u16 = kind::QUERY_SET;

    fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.seal(Self::KIND, self.alphabet_fingerprint())
    }

    fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, Self::KIND)?;
        let tag = r.get_u32()?;
        let num_queries = r.get_u32()? as usize;
        let sigma = r.get_u32()?;
        expect_alphabet(alphabet, sigma as usize)?;
        if num_queries == 0 || num_queries > MAX_QUERIES {
            return Err(PersistError::Malformed {
                context: "query count outside 1..=64",
            });
        }
        let load_engine = |r: &mut Reader<'_>| -> Result<CompiledNwa, PersistError> {
            let engine = CompiledNwa::load(&r.get_bytes()?)?;
            if engine.sigma() != sigma as usize {
                return Err(PersistError::Malformed {
                    context: "member engine alphabet disagrees with the set's",
                });
            }
            Ok(engine)
        };
        let backend = match tag {
            TAG_PRODUCT => {
                let engine = load_engine(&mut r)?;
                let count = r.get_u64()?;
                if count != engine.num_states() as u64 {
                    return Err(PersistError::Malformed {
                        context: "accept mask count disagrees with the product state count",
                    });
                }
                let full = full_mask(num_queries);
                let masks = (0..count)
                    .map(|_| r.get_u64())
                    .collect::<Result<Vec<u64>, _>>()?;
                for (q, &mask) in masks.iter().enumerate() {
                    if mask & !full != 0 {
                        return Err(PersistError::Malformed {
                            context: "accept mask has bits beyond the query count",
                        });
                    }
                    // The product engine's acceptance is the ∧-fold of the
                    // masks by construction; a disagreement means the bytes
                    // do not describe one artifact.
                    if engine.accepting[q] != (mask == full) {
                        return Err(PersistError::Malformed {
                            context: "accept mask disagrees with the conjunction acceptance",
                        });
                    }
                }
                Backend::Product { engine, masks }
            }
            TAG_LOCKSTEP => {
                let engines = (0..num_queries)
                    .map(|_| load_engine(&mut r))
                    .collect::<Result<Vec<CompiledNwa>, _>>()?;
                Backend::Lockstep { engines }
            }
            _ => {
                return Err(PersistError::Malformed {
                    context: "unknown query-set backend tag",
                });
            }
        };
        r.finish()?;
        Ok(QuerySet {
            num_queries,
            sigma,
            backend,
        })
    }

    fn fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        fingerprint_payload(Self::KIND, checksum_bytes(w.payload()))
    }

    fn alphabet_fingerprint(&self) -> u64 {
        fingerprint_alphabet(self.sigma as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NwaBuilder;
    use nested_words::Symbol;

    /// Deterministic NWA over a σ-symbol alphabet accepting streams of even
    /// length.
    fn even_len_nwa(sigma: usize) -> Nwa {
        let mut b = NwaBuilder::new(2, sigma, 0).accepting(0);
        for q in 0..2usize {
            for a in 0..sigma {
                let a = Symbol(a as u16);
                b = b
                    .internal(q, a, 1 - q)
                    .call(q, a, 1 - q, q)
                    .ret(q, 0usize, a, 1 - q)
                    .ret(q, 1usize, a, 1 - q);
            }
        }
        b.build()
    }

    /// Deterministic NWA accepting streams containing at least one call.
    fn some_call_nwa(sigma: usize) -> Nwa {
        let mut b = NwaBuilder::new(2, sigma, 0).accepting(1);
        for q in 0..2usize {
            for a in 0..sigma {
                let a = Symbol(a as u16);
                b = b
                    .internal(q, a, q)
                    .call(q, a, 1, 0)
                    .ret(q, 0usize, a, q)
                    .ret(q, 1usize, a, q);
            }
        }
        b.build()
    }

    fn sample_events() -> Vec<TaggedSymbol> {
        let a = Symbol(0);
        vec![
            TaggedSymbol::Call(a),
            TaggedSymbol::Internal(a),
            TaggedSymbol::Return(a),
            TaggedSymbol::Return(a), // pending return
            TaggedSymbol::Call(a),   // pending call at the end
        ]
    }

    #[test]
    fn both_backends_agree_with_sequential_runs_at_every_prefix() {
        let queries = [even_len_nwa(1), some_call_nwa(1)];
        for backend in [QuerySetBackend::Product, QuerySetBackend::Lockstep] {
            let set = QuerySet::with_backend(&queries, backend);
            assert_eq!(set.backend(), backend);
            let mut run = set.start_set();
            let mut solo: Vec<_> = queries.iter().map(|q| q.start()).collect();
            for (k, &event) in sample_events().iter().enumerate() {
                run.step(event);
                for s in &mut solo {
                    s.step(event);
                }
                for (i, s) in solo.iter().enumerate() {
                    assert_eq!(
                        run.verdicts() & (1 << i) != 0,
                        s.is_accepting(),
                        "{backend:?}, query {i}, prefix {k}"
                    );
                }
                assert_eq!(run.stack_height(), solo[0].stack_height());
                assert_eq!(run.peak_memory(), solo[0].peak_memory());
                assert_eq!(run.steps(), k + 1);
            }
            let outcomes = run.outcomes();
            assert_eq!(outcomes.len(), 2);
            for (outcome, s) in outcomes.iter().zip(&solo) {
                assert_eq!(outcome.accepted, s.is_accepting());
                assert_eq!(outcome.events, s.steps());
                assert_eq!(outcome.peak_memory, s.peak_memory());
            }
            // The conjunction view is the ∧ of the member verdicts.
            assert_eq!(
                run.is_accepting(),
                run.verdicts() == full_mask(set.num_queries())
            );
        }
    }

    #[test]
    fn heuristic_prefers_product_small_and_lockstep_large() {
        let small = QuerySet::compile(&[even_len_nwa(1), some_call_nwa(1)]);
        assert_eq!(small.backend(), QuerySetBackend::Product);
        // 16 two-state queries: 2^16 product states blow the table cap.
        let queries: Vec<Nwa> = (0..16).map(|_| even_len_nwa(1)).collect();
        let large = QuerySet::compile(&queries);
        assert_eq!(large.backend(), QuerySetBackend::Lockstep);
        assert_eq!(large.num_queries(), 16);
    }

    #[test]
    fn persist_round_trips_both_backends() {
        let queries = [even_len_nwa(2), some_call_nwa(2)];
        for backend in [QuerySetBackend::Product, QuerySetBackend::Lockstep] {
            let set = QuerySet::with_backend(&queries, backend);
            let bytes = set.save();
            let back = QuerySet::load(&bytes).unwrap();
            assert_eq!(back, set);
            assert_eq!(back.fingerprint(), set.fingerprint());
            // Truncation is typed, never a panic.
            assert!(QuerySet::load(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    #[test]
    fn query_sets_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuerySet>();
        fn assert_send<T: Send>() {}
        assert_send::<QuerySetLane>();
    }
}
