//! Weak nested word automata and the construction of Theorem 1.
//!
//! A weak NWA propagates the *current state* along the hierarchical edge at
//! every call (`δc^h(q, a) = q`). Theorem 1: every NWA with `s` states over Σ
//! has an equivalent weak NWA with `s·|Σ|` states — the weak automaton
//! additionally remembers the symbol labelling the call-parent of the current
//! position, so that the original hierarchical component can be re-applied at
//! the return.
//!
//! Implementation note: the paper's `s·|Σ|` construction does not spell out
//! the treatment of *pending returns* (hierarchical edge from −∞, which must
//! use the original initial state, not a re-derived hierarchical component).
//! We therefore track one extra component value `⊤` meaning "the current
//! position is at top level", giving `s·(|Σ|+1)` states; the asymptotics of
//! Theorem 1 are unchanged.

use crate::automaton::Nwa;
use nested_words::Symbol;

/// Applies the Theorem 1 construction: returns a weak NWA with
/// `s·(|Σ|+1)` states accepting the same language as `a`.
///
/// States of the result are pairs `(q, b)` encoded as `q·(|Σ|+1) + b`, where
/// `b < |Σ|` is the symbol labelling the call-parent of the current position
/// and `b = |Σ|` (written ⊤) means the position is at top level.
pub fn to_weak(a: &Nwa) -> Nwa {
    let s = a.num_states();
    let sigma = a.sigma();
    assert!(sigma > 0, "weak construction needs a non-empty alphabet");
    let comps = sigma + 1;
    let top = sigma;
    let pair = |q: usize, b: usize| q * comps + b;
    let mut out = Nwa::new(s * comps, sigma, pair(a.initial(), top));
    for q in 0..s {
        for b in 0..comps {
            let state = pair(q, b);
            out.set_accepting(state, a.is_accepting(q));
            for c in 0..sigma {
                let c_sym = Symbol(c as u16);
                // internal: δ'i((q,b), c) = (δi(q,c), b)
                out.set_internal(state, c_sym, pair(a.internal(q, c_sym), b));
                // call: δ'c((q,b), c) = ((δc^l(q,c), c), (q,b))  — weak
                out.set_call(state, c_sym, pair(a.call_linear(q, c_sym), c), state);
            }
        }
    }
    // return transitions
    for q in 0..s {
        for x in 0..comps {
            for qp in 0..s {
                for b in 0..comps {
                    for c in 0..sigma {
                        let c_sym = Symbol(c as u16);
                        let target = if x == top {
                            // Pending return: the current position is at top
                            // level; the hierarchical edge carries the initial
                            // state of the original automaton (§3.1).
                            pair(a.ret(q, a.initial(), c_sym), top)
                        } else {
                            // Matched return: re-derive the hierarchical
                            // component the original automaton would have
                            // propagated at the call (whose symbol is `x`).
                            let hier = a.call_hier(qp, Symbol(x as u16));
                            pair(a.ret(q, hier, c_sym), b)
                        };
                        out.set_return(pair(q, x), pair(qp, b), c_sym, target);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::tagged::parse_nested_word;
    use nested_words::{Alphabet, NestedWord, Symbol};

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// An NWA that genuinely uses its hierarchical component: it accepts
    /// nested words where matched call/return pairs carry equal labels and
    /// pending returns are forbidden.
    fn matching_labels_nwa() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(4, 2, 0);
        m.set_accepting(0, true);
        m.set_all_transitions_to(3, 3);
        m.set_internal(0, a, 0);
        m.set_internal(0, b, 0);
        m.set_call(0, a, 0, 1);
        m.set_call(0, b, 0, 2);
        for q in [1usize, 2] {
            m.set_all_transitions_to(q, 3);
        }
        for h in 0..4usize {
            for (sym, want) in [(a, 1usize), (b, 2usize)] {
                let target = if h == want { 0 } else { 3 };
                m.set_return(0, h, sym, target);
            }
        }
        m
    }

    #[test]
    fn weak_construction_state_count() {
        let m = matching_labels_nwa();
        let w = to_weak(&m);
        assert_eq!(w.num_states(), m.num_states() * (m.sigma() + 1));
        assert!(w.is_weak());
        assert!(!m.is_weak());
    }

    #[test]
    fn weak_construction_preserves_language_on_samples() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        let w = to_weak(&m);
        for s in [
            "",
            "a b a",
            "<a a>",
            "<a b>",
            "<a <b b> a>",
            "<a <b a> b>",
            "<b <a a> <b b> b>",
            "a>",
            "b>",
            "<a",
            "<a a> b>",
            "<a a> a>",
        ] {
            let word = parse(&mut ab, s);
            assert_eq!(m.accepts(&word), w.accepts(&word), "word `{s}`");
        }
    }

    #[test]
    fn weak_construction_preserves_language_on_random_words() {
        let m = matching_labels_nwa();
        let w = to_weak(&m);
        let ab = Alphabet::ab();
        for (allow_pending, seeds) in [(false, 0..40u64), (true, 100..140u64)] {
            for seed in seeds {
                let cfg = NestedWordConfig {
                    len: 60,
                    allow_pending,
                    ..Default::default()
                };
                let word = random_nested_word(&ab, cfg, seed);
                assert_eq!(m.accepts(&word), w.accepts(&word), "seed {seed}");
            }
        }
    }

    #[test]
    fn weak_of_weak_is_still_weak_and_equivalent() {
        let m = matching_labels_nwa();
        let w1 = to_weak(&m);
        let w2 = to_weak(&w1);
        assert!(w2.is_weak());
        let mut ab = Alphabet::ab();
        for s in ["<a a>", "<a b>", "<b <a a> b>", "a>"] {
            let word = parse(&mut ab, s);
            assert_eq!(w1.accepts(&word), w2.accepts(&word), "word `{s}`");
        }
    }
}
