//! State reduction for deterministic nested word automata by congruence
//! refinement.
//!
//! Unlike word automata, nested word automata have no unique minimal
//! deterministic machine (§3.4 discusses why the right-congruence alone does
//! not determine an NWA). What *is* canonical is the quotient by the
//! coarsest congruence on states: an equivalence that is compatible with all
//! three transition functions, where a state participates in return
//! transitions both as the linear argument (the state before the return) and
//! as the hierarchical argument (the state sent across the nesting edge at
//! the matching call). [`reduce`] computes exactly that quotient with the
//! same partition-refinement skeleton as `word_automata::minimize` (Moore's
//! signature iteration), extended two-sidedly the way
//! `DetStepwiseTA::minimize` treats its binary `combine` table.
//!
//! Two states `q₁ ~ q₂` in the final partition iff, for every symbol `a` and
//! every reachable state `r`:
//!
//! * they agree on acceptance,
//! * `δi(q₁,a) ~ δi(q₂,a)`,
//! * `δc(q₁,a) ~ δc(q₂,a)` componentwise (linear and hierarchical target),
//! * `δr(q₁,r,a) ~ δr(q₂,r,a)` (same behaviour as the linear argument), and
//! * `δr(r,q₁,a) ~ δr(r,q₂,a)` (same behaviour as the hierarchical
//!   argument).
//!
//! The last two conditions together make the quotient's return function
//! well-defined: for `q ~ q'` and `h ~ h'`,
//! `δr(q,h,a) ~ δr(q',h,a) ~ δr(q',h',a)`, so merged states can be joined
//! with merged hierarchical states without ambiguity. Since every transition
//! then commutes with the quotient map (and pending returns read the initial
//! state, whose block is the quotient's initial state), the unique run of
//! the quotient mirrors the run of the original on every nested word —
//! languages are preserved exactly.
//!
//! One wrinkle: the transition table is total, so it carries return entries
//! `δr(q, h, a)` for hierarchical arguments `h` that no run can ever
//! produce — only the initial state (pending returns) and the images of
//! `δc^h` ever cross a hierarchical edge. Those entries are *don't-cares*,
//! and comparing them verbatim would let junk values split
//! language-equivalent states. The refinement therefore reads the table
//! through a normalization that replaces every unrealizable entry by the
//! state's pending-return entry `δr(q, q₀, a)` — a rewrite no run can
//! observe — before comparing or quotienting.
//!
//! On *flat* automata (no information across hierarchical edges, §3.3) the
//! only realizable hierarchical argument is the initial state, so after
//! normalization the two-sided conditions collapse to the Moore conditions
//! over the tagged alphabet Σ̂, and [`reduce`] returns an automaton with
//! exactly as many states as [`crate::flat::minimize_flat`] — i.e. the true
//! minimum (Theorem 2). On general automata the quotient is a sound
//! reduction: it never changes the language and never grows the automaton,
//! but a smaller equivalent NWA may exist.

use crate::automaton::Nwa;
use nested_words::Symbol;
use std::collections::HashMap;

/// Quotients a deterministic NWA by the coarsest congruence on its reachable
/// states (see the module docs for the precise equivalence). The result
/// accepts exactly the same nested words; on flat automata it is the minimal
/// flat NWA.
pub fn reduce(nwa: &Nwa) -> Nwa {
    let sigma = nwa.sigma();

    // Joint reachability closure. `reachable` collects every state that can
    // appear in a run at all — linearly, or on a hierarchical edge
    // (`is_hier`: the initial state for pending returns, plus the δc^h
    // images of reachable states). Unlike `Nwa::reachable_states`, returns
    // are explored only through *realizable* hierarchical arguments, so a
    // junk entry `δr(q, h, a)` with unrealizable `h` cannot drag otherwise
    // dead states into the quotient.
    let mut reachable = vec![false; nwa.num_states()];
    let mut is_hier = vec![false; nwa.num_states()];
    reachable[nwa.initial()] = true;
    is_hier[nwa.initial()] = true;
    let mut changed = true;
    while changed {
        changed = false;
        let mark = |t: usize, set: &mut Vec<bool>, changed: &mut bool| {
            if !set[t] {
                set[t] = true;
                *changed = true;
            }
        };
        for q in 0..nwa.num_states() {
            if !reachable[q] {
                continue;
            }
            for a in 0..sigma {
                let a = Symbol(a as u16);
                mark(nwa.internal(q, a), &mut reachable, &mut changed);
                mark(nwa.call_linear(q, a), &mut reachable, &mut changed);
                let h = nwa.call_hier(q, a);
                mark(h, &mut reachable, &mut changed);
                mark(h, &mut is_hier, &mut changed);
            }
        }
        for q in 0..nwa.num_states() {
            if !reachable[q] {
                continue;
            }
            for h in 0..nwa.num_states() {
                if !reachable[h] || !is_hier[h] {
                    continue;
                }
                for a in 0..sigma {
                    mark(
                        nwa.ret(q, h, Symbol(a as u16)),
                        &mut reachable,
                        &mut changed,
                    );
                }
            }
        }
    }
    let reach: Vec<usize> = (0..nwa.num_states()).filter(|&q| reachable[q]).collect();
    let n = reach.len();
    let mut index_of = vec![usize::MAX; nwa.num_states()];
    for (i, &q) in reach.iter().enumerate() {
        index_of[q] = i;
    }

    // Return entries for unrealizable hierarchical arguments are
    // don't-cares; `ret_norm` rewrites them to the pending-return entry so
    // junk values cannot split language-equivalent states (module docs).
    let ret_norm =
        |q: usize, h: usize, a: Symbol| nwa.ret(q, if is_hier[h] { h } else { nwa.initial() }, a);

    // Initial partition: accepting vs non-accepting (normalized to one block
    // when uniform, matching the word-automata skeleton).
    let mut block_of: Vec<usize> = reach
        .iter()
        .map(|&q| usize::from(nwa.is_accepting(q)))
        .collect();
    let mut num_blocks = if block_of.contains(&0) && block_of.contains(&1) {
        2
    } else {
        block_of.fill(0);
        1
    };

    // Refine until stable. The signature of a state lists the blocks of all
    // its internal/call successors, its return row (as linear argument) and
    // its return column (as hierarchical argument) over the reachable states.
    loop {
        let mut sig_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_block_of = vec![0usize; n];
        for (i, &q) in reach.iter().enumerate() {
            let mut sig = Vec::with_capacity(3 * sigma + 2 * n * sigma);
            for a in 0..sigma {
                let a = Symbol(a as u16);
                sig.push(block_of[index_of[nwa.internal(q, a)]]);
                sig.push(block_of[index_of[nwa.call_linear(q, a)]]);
                sig.push(block_of[index_of[nwa.call_hier(q, a)]]);
            }
            for &r in &reach {
                for a in 0..sigma {
                    let a = Symbol(a as u16);
                    sig.push(block_of[index_of[ret_norm(q, r, a)]]);
                    sig.push(block_of[index_of[ret_norm(r, q, a)]]);
                }
            }
            let next = sig_to_block.len();
            new_block_of[i] = *sig_to_block.entry((block_of[i], sig)).or_insert(next);
        }
        let new_num = sig_to_block.len();
        let stable = new_num == num_blocks;
        block_of = new_block_of;
        num_blocks = new_num;
        if stable {
            break;
        }
    }

    // Build the quotient, numbering the initial state's block 0.
    let mut remap = vec![usize::MAX; num_blocks];
    remap[block_of[index_of[nwa.initial()]]] = 0;
    let mut next = 1usize;
    for i in 0..n {
        let b = block_of[i];
        if remap[b] == usize::MAX {
            remap[b] = next;
            next += 1;
        }
    }
    let block = |target: usize, index_of: &[usize], block_of: &[usize], remap: &[usize]| {
        remap[block_of[index_of[target]]]
    };
    let mut out = Nwa::new(num_blocks, sigma, 0);
    for (i, &q) in reach.iter().enumerate() {
        let b = remap[block_of[i]];
        out.set_accepting(b, nwa.is_accepting(q));
        for a in 0..sigma {
            let a = Symbol(a as u16);
            out.set_internal(
                b,
                a,
                block(nwa.internal(q, a), &index_of, &block_of, &remap),
            );
            out.set_call(
                b,
                a,
                block(nwa.call_linear(q, a), &index_of, &block_of, &remap),
                block(nwa.call_hier(q, a), &index_of, &block_of, &remap),
            );
        }
        for (j, &h) in reach.iter().enumerate() {
            let hb = remap[block_of[j]];
            for a in 0..sigma {
                let a = Symbol(a as u16);
                out.set_return(
                    b,
                    hb,
                    a,
                    block(ret_norm(q, h, a), &index_of, &block_of, &remap),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{from_tagged_dfa, minimize_flat};
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::rng::Prng;
    use nested_words::Alphabet;
    use word_automata::Regex;

    /// A random complete deterministic NWA.
    fn random_det_nwa(num_states: usize, sigma: usize, seed: u64) -> Nwa {
        let mut rng = Prng::new(seed);
        let mut m = Nwa::new(num_states, sigma, rng.below(num_states));
        for q in 0..num_states {
            m.set_accepting(q, rng.bool(0.5));
            for a in 0..sigma {
                let a = Symbol(a as u16);
                m.set_internal(q, a, rng.below(num_states));
                m.set_call(q, a, rng.below(num_states), rng.below(num_states));
                for h in 0..num_states {
                    m.set_return(q, h, a, rng.below(num_states));
                }
            }
        }
        m
    }

    /// Duplicates every state of an NWA (two interchangeable copies); the
    /// congruence must merge each pair back together.
    fn duplicate_states(m: &Nwa) -> Nwa {
        let n = m.num_states();
        let copy = |q: usize, c: usize| q + c * n;
        let mut out = Nwa::new(2 * n, m.sigma(), copy(m.initial(), 1));
        for q in 0..n {
            for c in 0..2 {
                out.set_accepting(copy(q, c), m.is_accepting(q));
                for a in 0..m.sigma() {
                    let a = Symbol(a as u16);
                    // successors alternate copies so both copies are reachable
                    out.set_internal(copy(q, c), a, copy(m.internal(q, a), 1 - c));
                    out.set_call(
                        copy(q, c),
                        a,
                        copy(m.call_linear(q, a), 1 - c),
                        copy(m.call_hier(q, a), c),
                    );
                    for h in 0..n {
                        for hc in 0..2 {
                            out.set_return(copy(q, c), copy(h, hc), a, copy(m.ret(q, h, a), c));
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn reduce_merges_duplicated_states() {
        for seed in 0..10u64 {
            let m = random_det_nwa(3, 2, seed);
            let doubled = duplicate_states(&m);
            let reduced = reduce(&doubled);
            assert!(
                reduced.num_states() <= m.num_states(),
                "seed {seed}: {} vs {}",
                reduced.num_states(),
                m.num_states()
            );
        }
    }

    #[test]
    fn reduce_preserves_language_on_random_nested_words() {
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 40,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..12u64 {
            let m = random_det_nwa(4, 2, seed);
            let reduced = reduce(&m);
            for wseed in 0..40u64 {
                let w = random_nested_word(&ab, cfg, wseed);
                assert_eq!(
                    m.accepts(&w),
                    reduced.accepts(&w),
                    "seed {seed} wseed {wseed}"
                );
            }
        }
    }

    #[test]
    fn reduce_is_idempotent() {
        for seed in 0..10u64 {
            let m = duplicate_states(&random_det_nwa(3, 2, seed));
            let once = reduce(&m);
            let twice = reduce(&once);
            assert_eq!(once.num_states(), twice.num_states(), "seed {seed}");
        }
    }

    #[test]
    fn reduce_agrees_with_flat_minimization_on_flat_automata() {
        // Build redundant flat NWAs from unminimized regex determinizations
        // over Σ̂; the congruence quotient must hit exactly the minimal flat
        // size of Theorem 2.
        let sigma = 2usize;
        let sym = |i: usize| Regex::Symbol(i);
        let patterns: [Regex; 3] = [
            sym(1).concat(Regex::any_star()).concat(sym(4)),
            Regex::any_star()
                .concat(sym(0))
                .concat(Regex::any_star())
                .concat(sym(5)),
            sym(2).union(sym(3)).star(),
        ];
        for r in patterns {
            let unminimized = r.to_nfa(3 * sigma).determinize();
            let flat = from_tagged_dfa(&unminimized, sigma);
            let reduced = reduce(&flat);
            let minimal = minimize_flat(&flat);
            assert!(reduced.is_flat());
            assert_eq!(reduced.num_states(), minimal.num_states());
        }
    }

    #[test]
    fn junk_return_entries_cannot_split_equivalent_states() {
        // Flat NWA (δc^h = initial everywhere) for "no b anywhere" over
        // {a,b}: states 0 and 1 are language-equivalent (they swap on a),
        // state 2 is the dead sink. Only the initial state is realizable as
        // a hierarchical argument in a flat run, so the δr(·, h≠0, ·)
        // entries are don't-cares — set them *differently* for states 0
        // and 1 and check the congruence still merges them, agreeing with
        // `minimize_flat` (which never reads those entries).
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(3, 2, 0);
        m.set_accepting(0, true);
        m.set_accepting(1, true);
        for q in 0..3usize {
            let on_a = if q == 2 { 2 } else { 1 - q };
            m.set_internal(q, a, on_a);
            m.set_internal(q, b, 2);
            m.set_call(q, a, on_a, 0);
            m.set_call(q, b, 2, 0);
            for h in 0..3usize {
                m.set_return(q, h, a, on_a);
                m.set_return(q, h, b, 2);
            }
        }
        // junk: unrealizable hierarchical arguments disagree between 0 and 1
        m.set_return(0, 1, a, 2);
        m.set_return(1, 1, a, 0);
        m.set_return(0, 2, b, 1);
        assert!(m.is_flat());
        let reduced = reduce(&m);
        let minimal = minimize_flat(&m);
        assert_eq!(minimal.num_states(), 2);
        assert_eq!(reduced.num_states(), 2);
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 25,
            allow_pending: true,
            ..Default::default()
        };
        for wseed in 0..30u64 {
            let w = random_nested_word(&ab, cfg, wseed);
            assert_eq!(m.accepts(&w), reduced.accepts(&w), "wseed {wseed}");
        }
    }

    #[test]
    fn reduce_trims_unreachable_states() {
        let a = Symbol(0);
        let mut m = Nwa::new(4, 1, 0);
        m.set_accepting(1, true);
        m.set_internal(0, a, 1);
        m.set_internal(1, a, 0);
        m.set_call(0, a, 1, 0);
        m.set_call(1, a, 0, 1);
        // states 2, 3 are unreachable (all their transitions default to 0)
        m.set_accepting(3, true);
        let reduced = reduce(&m);
        assert_eq!(reduced.num_states(), 2);
        assert_eq!(reduced.initial(), 0);
    }

    #[test]
    fn reduce_single_block_language() {
        // Universal language: everything collapses to one accepting state.
        let mut m = random_det_nwa(5, 2, 99);
        for q in 0..m.num_states() {
            m.set_accepting(q, true);
        }
        let reduced = reduce(&m);
        assert_eq!(reduced.num_states(), 1);
        assert!(reduced.is_accepting(0));
    }

    /// The hierarchical argument matters: two states with identical linear
    /// behaviour but different behaviour *as* hierarchical states must not
    /// merge.
    #[test]
    fn reduce_keeps_states_distinguished_by_hierarchical_role() {
        let m = {
            // matching-labels automaton: states 1 and 2 are only used on
            // hierarchical edges and differ only in how returns join them.
            let a = Symbol(0);
            let b = Symbol(1);
            let mut m = Nwa::new(4, 2, 0);
            m.set_accepting(0, true);
            m.set_all_transitions_to(3, 3);
            m.set_internal(0, a, 0);
            m.set_internal(0, b, 0);
            m.set_call(0, a, 0, 1);
            m.set_call(0, b, 0, 2);
            for q in [1usize, 2] {
                m.set_all_transitions_to(q, 3);
            }
            for h in 0..4usize {
                for (sym, want) in [(a, 1usize), (b, 2usize)] {
                    m.set_return(0, h, sym, if h == want { 0 } else { 3 });
                }
            }
            m
        };
        let reduced = reduce(&m);
        // nothing can merge: 1 and 2 differ as hierarchical arguments, 0 and
        // 3 differ on acceptance, 1/2 vs 3 differ as hierarchical arguments.
        assert_eq!(reduced.num_states(), 4);
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 30,
            allow_pending: true,
            ..Default::default()
        };
        for wseed in 0..30u64 {
            let w = random_nested_word(&ab, cfg, wseed);
            assert_eq!(m.accepts(&w), reduced.accepts(&w), "wseed {wseed}");
        }
    }

    #[test]
    fn reduce_handles_trivial_one_state_automaton() {
        let m = Nwa::new(1, 2, 0);
        let reduced = reduce(&m);
        assert_eq!(reduced.num_states(), 1);
    }
}
