//! Emptiness witness extraction for nested word automata: a shortest-ish
//! accepted [`NestedWord`] instead of a bare boolean.
//!
//! The emptiness procedure of §3.2 ([`crate::decision`]) saturates the
//! *well-matched summary* relation `WM(q, q')` and then closes the initial
//! states under summaries, pending returns and pending calls. This module
//! runs the same derivation system, but every derived fact carries its
//! shortest derivation: a length and a backpointer to the rule instance that
//! produced it. Reaching an accepting state then reconstructs a concrete
//! accepted nested word — including pending edges — by unwinding the
//! backpointers through the call/return summary relation.
//!
//! The derivation rules mirror [`crate::decision::well_matched_summaries`] /
//! [`crate::decision::reachable_sets`], restated so that every rule grows
//! its conclusion strictly (which makes the backpointer graph well-founded
//! and plain fixpoint iteration sufficient):
//!
//! * `SUM(q, q)` by the empty word;
//! * `SUM(p, q) --a--> SUM(p, t)` for an internal transition `(q, a, t)`;
//! * `SUM(p, qc)` + call `(qc, c, ql, qh)` + `SUM(ql, e)` + return
//!   `(e, qh, r, t)` derive `SUM(p, t)` by `w₁ ⟨c w₂ r⟩` — the
//!   call–body–return rule;
//! * `R₀(q₀)` for initial `q₀`; both reach modes compose with summaries;
//! * pending returns extend mode 0 (the hierarchical edge carries an
//!   initial state, §3.1); pending calls switch to mode 1, where no pending
//!   return may follow (edges never cross).
//!
//! Lengths are minimal over this rule system, so witnesses are shortest
//! accepted words up to the usual caveat that a shortest derivation of an
//! exponentially long witness is still exponentially long to materialize.

use crate::nondet::Nnwa;
use nested_words::{NestedWord, Symbol, TaggedSymbol};

/// How a fact was derived; indices refer to the fact arrays of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Back {
    /// Not derived (yet).
    None,
    /// `SUM(q, q)` — the empty well-matched word.
    SumEps,
    /// `SUM(p, t)` from `SUM(p, q)` followed by an internal position.
    SumInternal { pre: usize, sym: Symbol },
    /// `SUM(p, t)` from `SUM(p, qc)`, a call, a body summary and a return.
    SumCallRet {
        pre: usize,
        call: Symbol,
        body: usize,
        ret: Symbol,
    },
    /// `R₀(q₀)` — an initial state, reached by the empty word.
    ReachInit,
    /// `R_m(q')` from `R_m(q)` extended by a well-matched summary.
    ReachSum { reach: usize, sum: usize },
    /// `R₀(t)` from `R₀(q)` extended by a pending return.
    ReachPendingReturn { reach: usize, sym: Symbol },
    /// `R₁(ql)` from `R_m(q)` extended by a pending call.
    ReachPendingCall { reach: usize, sym: Symbol },
}

/// Shortest-derivation engine over the summary relation of one automaton.
struct Engine {
    /// Fact layout: `SUM(p, q) = p·n + q`, `R₀(q) = n² + q`,
    /// `R₁(q) = n² + n + q`.
    num_states: usize,
    dist: Vec<usize>,
    back: Vec<Back>,
}

impl Engine {
    fn sum(&self, p: usize, q: usize) -> usize {
        p * self.num_states + q
    }

    fn reach(&self, mode: usize, q: usize) -> usize {
        self.num_states * self.num_states + mode * self.num_states + q
    }

    /// Relaxes one fact: records the strictly better derivation if `len`
    /// improves on the best known one.
    fn relax(&mut self, fact: usize, len: usize, back: Back) -> bool {
        if len < self.dist[fact] {
            self.dist[fact] = len;
            self.back[fact] = back;
            true
        } else {
            false
        }
    }

    /// Saturates the derivation system of `a` to the least fixpoint of
    /// shortest lengths.
    fn saturate(a: &Nnwa) -> Engine {
        let n = a.num_states();
        let mut e = Engine {
            num_states: n,
            dist: vec![usize::MAX; n * n + 2 * n],
            back: vec![Back::None; n * n + 2 * n],
        };
        for q in 0..n {
            let f = e.sum(q, q);
            e.relax(f, 0, Back::SumEps);
        }
        for q0 in a.initial_states() {
            let f = e.reach(0, q0);
            e.relax(f, 0, Back::ReachInit);
        }
        let initial: Vec<usize> = a.initial_states().collect();
        // Return transitions indexed by their hierarchical state, so the
        // call–body–return rule only pairs a call with the returns that can
        // consume the state it pushes.
        let mut returns_by_hier: Vec<Vec<(usize, Symbol, usize)>> = vec![Vec::new(); n];
        for &(rl, rh, rsym, t) in a.returns() {
            returns_by_hier[rh].push((rl, rsym, t));
        }

        // Fixpoint iteration. Every rule below adds at least one position
        // except summary composition, whose zero-length case is the identity
        // summary `SUM(q, q)` and therefore never a strict improvement — so
        // each stored backpointer references strictly shorter facts and the
        // reconstruction below terminates.
        let mut changed = true;
        while changed {
            changed = false;
            // internal extension of summaries
            for &(q, sym, t) in a.internals() {
                for p in 0..n {
                    let pre = e.sum(p, q);
                    if e.dist[pre] == usize::MAX {
                        continue;
                    }
                    let len = e.dist[pre] + 1;
                    let f = e.sum(p, t);
                    changed |= e.relax(f, len, Back::SumInternal { pre, sym });
                }
            }
            // call–body–return
            for &(qc, csym, ql, qh) in a.calls() {
                for &(rl, rsym, t) in &returns_by_hier[qh] {
                    let body = e.sum(ql, rl);
                    if e.dist[body] == usize::MAX {
                        continue;
                    }
                    for p in 0..n {
                        let pre = e.sum(p, qc);
                        if e.dist[pre] == usize::MAX {
                            continue;
                        }
                        // Saturate throughout: witness lengths can be
                        // exponential in the state count, and a saturated
                        // candidate must never be stored (usize::MAX is the
                        // "unreached" sentinel, and `relax` only accepts
                        // strictly smaller values).
                        let len = e.dist[pre].saturating_add(e.dist[body]).saturating_add(2);
                        let f = e.sum(p, t);
                        changed |= e.relax(
                            f,
                            len,
                            Back::SumCallRet {
                                pre,
                                call: csym,
                                body,
                                ret: rsym,
                            },
                        );
                    }
                }
            }
            // reachability composed with summaries
            for mode in 0..2 {
                for q in 0..n {
                    let r = e.reach(mode, q);
                    if e.dist[r] == usize::MAX {
                        continue;
                    }
                    for t in 0..n {
                        let s = e.sum(q, t);
                        if e.dist[s] == usize::MAX {
                            continue;
                        }
                        let len = e.dist[r].saturating_add(e.dist[s]);
                        let f = e.reach(mode, t);
                        changed |= e.relax(f, len, Back::ReachSum { reach: r, sum: s });
                    }
                }
            }
            // pending returns (mode 0 only; hierarchical edge is initial)
            for &(rl, rh, sym, t) in a.returns() {
                if !initial.contains(&rh) {
                    continue;
                }
                let r = e.reach(0, rl);
                if e.dist[r] == usize::MAX {
                    continue;
                }
                let len = e.dist[r] + 1;
                let f = e.reach(0, t);
                changed |= e.relax(f, len, Back::ReachPendingReturn { reach: r, sym });
            }
            // pending calls (either mode enters mode 1)
            for &(q, sym, ql, _qh) in a.calls() {
                for mode in 0..2 {
                    let r = e.reach(mode, q);
                    if e.dist[r] == usize::MAX {
                        continue;
                    }
                    let len = e.dist[r] + 1;
                    let f = e.reach(1, ql);
                    changed |= e.relax(f, len, Back::ReachPendingCall { reach: r, sym });
                }
            }
        }
        e
    }

    /// Reconstructs the tagged word of a derived fact by unwinding
    /// backpointers with an explicit stack (witnesses can be long, so no
    /// recursion).
    fn reconstruct(&self, goal: usize) -> Vec<TaggedSymbol> {
        enum Item {
            Fact(usize),
            Tag(TaggedSymbol),
        }
        let mut out = Vec::new();
        let mut stack = vec![Item::Fact(goal)];
        while let Some(item) = stack.pop() {
            match item {
                Item::Tag(t) => out.push(t),
                // Pushed in reverse emission order: the last push pops first.
                Item::Fact(f) => match self.back[f] {
                    Back::None => unreachable!("reconstructing an unreached fact"),
                    Back::SumEps | Back::ReachInit => {}
                    Back::SumInternal { pre, sym } => {
                        stack.push(Item::Tag(TaggedSymbol::Internal(sym)));
                        stack.push(Item::Fact(pre));
                    }
                    Back::SumCallRet {
                        pre,
                        call,
                        body,
                        ret,
                    } => {
                        stack.push(Item::Tag(TaggedSymbol::Return(ret)));
                        stack.push(Item::Fact(body));
                        stack.push(Item::Tag(TaggedSymbol::Call(call)));
                        stack.push(Item::Fact(pre));
                    }
                    Back::ReachSum { reach, sum } => {
                        stack.push(Item::Fact(sum));
                        stack.push(Item::Fact(reach));
                    }
                    Back::ReachPendingReturn { reach, sym } => {
                        stack.push(Item::Tag(TaggedSymbol::Return(sym)));
                        stack.push(Item::Fact(reach));
                    }
                    Back::ReachPendingCall { reach, sym } => {
                        stack.push(Item::Tag(TaggedSymbol::Call(sym)));
                        stack.push(Item::Fact(reach));
                    }
                },
            }
        }
        out
    }
}

/// Returns a shortest accepted nested word of a nondeterministic NWA, or
/// `None` iff the language is empty (agreeing with
/// [`crate::decision::is_empty`], whose saturation this instruments with
/// backpointers). Pending calls and pending returns are produced when they
/// give a shorter witness.
pub fn shortest_accepted(a: &Nnwa) -> Option<NestedWord> {
    let e = Engine::saturate(a);
    let goal = (0..a.num_states())
        .filter(|&q| a.is_accepting(q))
        .flat_map(|q| [e.reach(0, q), e.reach(1, q)])
        .filter(|&f| e.dist[f] != usize::MAX)
        .min_by_key(|&f| e.dist[f])?;
    Some(NestedWord::from_tagged(&e.reconstruct(goal)))
}

/// Returns a shortest accepted nested word of a deterministic NWA, or
/// `None` iff the language is empty: the dense transition tables are viewed
/// as relations (exactly as [`crate::decision::is_empty_det`] does) and fed
/// through the same shortest-derivation engine.
pub fn shortest_accepted_det(a: &crate::automaton::Nwa) -> Option<NestedWord> {
    shortest_accepted(&Nnwa::from_deterministic(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    #[test]
    fn empty_language_has_no_witness() {
        let n = Nnwa::new(2, 1);
        assert_eq!(shortest_accepted(&n), None);
        let mut n = Nnwa::new(2, 1);
        n.add_initial(0);
        n.add_accepting(1);
        // accepting state unreachable
        assert_eq!(shortest_accepted(&n), None);
    }

    #[test]
    fn accepting_initial_state_yields_empty_word() {
        let mut n = Nnwa::new(1, 1);
        n.add_initial(0);
        n.add_accepting(0);
        assert_eq!(shortest_accepted(&n), Some(NestedWord::empty()));
    }

    #[test]
    fn internal_witness_is_shortest() {
        let a = Symbol(0);
        let mut n = Nnwa::new(3, 1);
        n.add_initial(0);
        n.add_accepting(2);
        n.add_internal(0, a, 1);
        n.add_internal(1, a, 2);
        let w = shortest_accepted(&n).unwrap();
        assert_eq!(w.len(), 2);
        assert!(n.accepts(&w));
    }

    #[test]
    fn matched_pair_witness_goes_through_summary() {
        let b = Symbol(0);
        // Accepting state only reachable by a matched call/return whose
        // hierarchical state is 1 (not initial), so neither position can be
        // pending.
        let mut n = Nnwa::new(3, 1);
        n.add_initial(0);
        n.add_accepting(2);
        n.add_call(0, b, 1, 1);
        n.add_return(1, 1, b, 2);
        let w = shortest_accepted(&n).unwrap();
        assert!(n.accepts(&w));
        assert_eq!(
            w.to_tagged(),
            vec![TaggedSymbol::Call(b), TaggedSymbol::Return(b)]
        );
        assert!(w.is_well_matched());
    }

    #[test]
    fn pending_call_witness() {
        let a = Symbol(0);
        let mut n = Nnwa::new(2, 1);
        n.add_initial(0);
        n.add_accepting(1);
        n.add_call(0, a, 1, 0);
        let w = shortest_accepted(&n).unwrap();
        assert!(n.accepts(&w));
        assert_eq!(w.len(), 1);
        assert!(w.is_pending_call(0));
    }

    #[test]
    fn pending_return_witness() {
        let a = Symbol(0);
        let mut n = Nnwa::new(2, 1);
        n.add_initial(0);
        n.add_accepting(1);
        n.add_return(0, 0, a, 1);
        let w = shortest_accepted(&n).unwrap();
        assert!(n.accepts(&w));
        assert_eq!(w.len(), 1);
        assert!(w.is_pending_return(0));
    }

    #[test]
    fn no_pending_return_after_pending_call() {
        let a = Symbol(0);
        // The call pushes hierarchical state 2, which no return consumes, so
        // it can only be taken as a pending call; state 1 is then reachable
        // only in mode 1, where the pending return (hierarchical state
        // initial) is illegal because edges must not cross. Language empty.
        let mut n = Nnwa::new(3, 1);
        n.add_initial(0);
        n.add_accepting(2);
        n.add_call(0, a, 1, 2);
        n.add_return(1, 0, a, 2);
        assert_eq!(shortest_accepted(&n), None);
        assert!(crate::decision::is_empty(&n));
        // A return consuming the pushed state 2 lets the pair match: <a a>.
        n.add_return(1, 2, a, 2);
        let w = shortest_accepted(&n).unwrap();
        assert!(n.accepts(&w));
        assert_eq!(
            w.to_tagged(),
            vec![TaggedSymbol::Call(a), TaggedSymbol::Return(a)]
        );
    }

    #[test]
    fn witness_matches_known_language() {
        // Rooted words of even depth: the first return must happen at even
        // depth (linear state 0) consuming the odd-parity marker 1, and the
        // root return consumes the bottom marker 0 from the ascent state 2 —
        // so no pending edge can reach the accepting state and the shortest
        // member is <a <a a> a>.
        let a = Symbol(0);
        let mut n = Nnwa::new(4, 1);
        n.add_initial(0);
        n.add_accepting(3);
        n.add_call(0, a, 1, 0);
        n.add_call(1, a, 0, 1);
        n.add_return(0, 1, a, 2);
        n.add_return(2, 1, a, 2);
        n.add_return(2, 0, a, 3);
        let w = shortest_accepted(&n).unwrap();
        assert!(n.accepts(&w));
        assert!(w.is_well_matched());
        let mut ab = Alphabet::from_names(["a"]);
        let expect = parse_nested_word("<a <a a> a>", &mut ab).unwrap();
        assert_eq!(w.len(), expect.len());
        assert!(n.accepts(&expect));
    }

    #[test]
    fn deterministic_witness_agrees_with_emptiness() {
        use crate::automaton::Nwa;
        let a = Symbol(0);
        // "even number of positions" — non-empty, shortest witness ε.
        let mut m = Nwa::new(2, 1, 0);
        m.set_accepting(0, true);
        for q in 0..2usize {
            m.set_internal(q, a, 1 - q);
            m.set_call(q, a, 1 - q, 0);
            for h in 0..2 {
                m.set_return(q, h, a, 1 - q);
            }
        }
        assert_eq!(shortest_accepted_det(&m), Some(NestedWord::empty()));
        // "odd number of positions" — shortest witness has one position.
        let mut odd = m.clone();
        odd.set_accepting(0, false);
        odd.set_accepting(1, true);
        let w = shortest_accepted_det(&odd).unwrap();
        assert_eq!(w.len(), 1);
        assert!(odd.accepts(&w));
    }
}
