//! Compiled execution engines: the hot-path automata lowered into dense,
//! cache-friendly tables behind the `automata-core`
//! [`Compile`] capability.
//!
//! The interpreted runners ([`StreamingRun`](crate::StreamingRun),
//! [`SummaryStreamingRun`](crate::summary::SummaryStreamingRun)) already
//! meet the paper's asymptotics — one pass, memory proportional to depth.
//! Compilation attacks the constant factor:
//!
//! * [`CompiledNwa`] fuses the three transition functions of a
//!   deterministic NWA into **one** flat `u32` table over the tagged
//!   alphabet Σ̂ with **premultiplied row offsets**: a linear state is
//!   represented as `q·3σ`, a hierarchical stack entry as the absolute
//!   base of its block of return rows. Every event then resolves as one
//!   addition and one array load, and — the part the microbenchmarks say
//!   matters most — the event kind enters the address as *arithmetic on
//!   the discriminant* rather than a three-way dispatch, so the
//!   unpredictable call/internal/return mix of real documents stops
//!   costing a branch misprediction per event.
//! * [`CompiledSummary`] executes the summary-set subset construction of
//!   §3.2 over **interned** state-pair sets with a **memoized transition
//!   cache**: each distinct (summary, symbol) step is derived once from the
//!   nondeterministic relations and afterwards answered by a hash lookup,
//!   so streams with repeated event patterns run at deterministic-automaton
//!   speed after warm-up.
//!
//! The trade-off is memory: `CompiledNwa` materializes the full
//! `states² × 3σ` return block in `u32`s up front (compilation fails on
//! automata where the offsets would overflow `u32`), and
//! `CompiledSummary`'s cache grows with the number of *distinct* summaries
//! the input streams actually visit — bounded by the (exponential)
//! determinization size, but in practice tiny and shared across runs.
//! Both artifacts are language-exact: `tests/compile.rs` property-tests
//! compiled ≡ interpreted at every prefix, pending edges included.

use crate::automaton::Nwa;
use crate::joinless::JoinlessNwa;
use crate::nondet::Nnwa;
use crate::summary::{Summary, SummarySemantics};
use automata_core::{BatchAcceptor, Compile, StreamAcceptor, StreamOutcome, StreamRun};
use nested_words::{PositionKind, Symbol, TaggedSymbol};
use std::collections::HashMap;
use std::sync::RwLock;

// --------------------------------------------------------------------------
// Deterministic NWAs: premultiplied dense tables
// --------------------------------------------------------------------------

/// A deterministic NWA lowered into one fused `u32` transition table over
/// the tagged alphabet Σ̂, with premultiplied row offsets (see the
/// [module docs](self) for the design rationale).
///
/// Internally a linear state `q` is the row offset `q·3σ` and every event
/// is the in-row offset `kind·σ + a` (calls `0..σ`, internals `σ..2σ`,
/// returns `2σ..3σ` — exactly [`TaggedSymbol::tagged_index`]). The fused
/// table `T` concatenates
///
/// * the **linear block** (`n·3σ` entries): `T[q·3σ + a] = δc^l(q,a)·3σ`
///   and `T[q·3σ + σ + a] = δi(q,a)·3σ`, and
/// * the **return block** (`n·n·3σ` entries): for a return the stack
///   supplies the absolute base of the hierarchical state's row, so
///   `T[pop() + q·3σ + (2σ + a)] = δr(q,h,a)·3σ`.
///
/// One event is therefore *one* add-and-load wherever it lands: a call
/// additionally pushes `push[q·3σ + a]` (the matching return-row base), a
/// return pops (an empty stack pops the initial state's base — the
/// pending-return rule of §3.1). Crucially the decode `kind·σ + a` is plain
/// arithmetic on the event discriminant — unlike a three-way dispatch it
/// never branches on the (unpredictable) event kind, which is where the
/// interpreted runner's cycles go.
///
/// Build one with [`Compile::compile`] (or `query::compile`) and drive it
/// through [`StreamAcceptor`], or hand a whole slice to
/// [`CompiledNwa::run_tagged`]; it accepts exactly the streams the source
/// [`Nwa`] accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledNwa {
    /// Row stride of linear states: `max(3σ, 1)`.
    pub(crate) stride: u32,
    /// σ itself (`stride / 3`, kept separately for the band offsets).
    pub(crate) sigma: u32,
    pub(crate) num_states: usize,
    /// The fused table: linear block then return block.
    pub(crate) table: Vec<u32>,
    /// `push[q·3σ + a]` = absolute base of `δc^h(q, a)`'s block of return
    /// rows, so a return resolves as `T[pop() + state + 2σ + a]`.
    pub(crate) push: Vec<u32>,
    /// The pushed value for the initial state — what a pending return pops.
    pub(crate) pending_row: u32,
    /// Initial linear state, as a row offset.
    pub(crate) initial: u32,
    /// Acceptance by plain state index (`q`, not the row offset).
    pub(crate) accepting: Vec<bool>,
    /// Content hash over the tables (see `persist`), stamped into
    /// snapshots and validated on resume.
    pub(crate) fingerprint: u64,
}

impl CompiledNwa {
    /// Lowers `nwa` into the fused premultiplied table.
    ///
    /// Panics if the table offsets would not fit `u32` (i.e.
    /// `(states + states²) · 3σ > u32::MAX`); such automata are beyond what
    /// the dense return block can represent and must use the interpreted
    /// runner.
    pub fn new(nwa: &Nwa) -> CompiledNwa {
        let n = nwa.num_states();
        let sigma = nwa.sigma();
        let stride = (3 * sigma).max(1);
        let table_len = n
            .checked_add(n.checked_mul(n).expect("table size overflows usize"))
            .and_then(|x| x.checked_mul(stride))
            .expect("table size overflows usize");
        assert!(
            u32::try_from(table_len).is_ok(),
            "automaton too large to compile: (states + states^2) * 3*sigma must fit u32"
        );
        // Absolute base of hierarchical state h's block of return rows; a
        // return lands at `base + q·3σ + 2σ + a`.
        let ret_base = |h: usize| ((n + h * n) * stride) as u32;
        let mut table = vec![0u32; table_len];
        let mut push = vec![0u32; n * stride];
        for q in 0..n {
            for a in 0..sigma {
                let sym = Symbol(a as u16);
                let row = q * stride;
                table[row + a] = (nwa.call_linear(q, sym) * stride) as u32;
                table[row + sigma + a] = (nwa.internal(q, sym) * stride) as u32;
                push[row + a] = ret_base(nwa.call_hier(q, sym));
                for h in 0..n {
                    table[(n + h * n) * stride + row + 2 * sigma + a] =
                        (nwa.ret(q, h, sym) * stride) as u32;
                }
            }
        }
        let mut compiled = CompiledNwa {
            stride: stride as u32,
            sigma: sigma as u32,
            num_states: n,
            table,
            push,
            pending_row: ret_base(nwa.initial()),
            initial: (nwa.initial() * stride) as u32,
            accepting: (0..n).map(|q| nwa.is_accepting(q)).collect(),
            fingerprint: 0,
        };
        compiled.fingerprint = compiled.compute_fingerprint();
        compiled
    }

    /// Number of states of the source automaton.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size of the source automaton.
    pub fn sigma(&self) -> usize {
        self.sigma as usize
    }

    /// Bytes occupied by the transition tables — the memory the compiled
    /// representation trades for speed (the `states² × 3σ` return block
    /// dominates).
    pub fn table_bytes(&self) -> usize {
        (self.table.len() + self.push.len()) * std::mem::size_of::<u32>()
    }

    /// Runs a whole pre-materialized event slice through the fused table
    /// and reports the outcome — the bulk entry point of the compiled
    /// engine, and the reason the Σ̂ layout exists.
    ///
    /// Language-equivalent to driving [`StreamAcceptor::start`] event by
    /// event (property-tested in `tests/compile.rs`), but the inner loop is
    /// **branch-free on the event kind**: real event streams mix calls,
    /// internals and returns unpredictably, so any per-kind dispatch —
    /// including the arithmetic-per-arm `match` inside
    /// [`TaggedSymbol::tagged_index`] — mispredicts constantly and
    /// dominates the interpreted runner's budget. Here every event
    ///
    /// 1. decodes to `kind·σ + a` by pure arithmetic on the discriminant,
    /// 2. unconditionally writes its would-be push (`push[state + a]`) into
    ///    the next free stack slot,
    /// 3. resolves `state = T[state + kind·σ + a + (top & ret_mask)]` —
    ///    one load, with the return-block base masked in only when the
    ///    event is a return — and
    /// 4. adjusts the stack pointer with comparisons, not branches.
    ///
    /// A sentinel slot holding the initial state's return base sits below
    /// the stack, so a pending return (pop on an empty stack) resolves
    /// against the §3.1 hierarchical-initial row with no special case.
    /// State, stack pointer and peak stay in registers for the whole slice.
    pub fn run_tagged(&self, events: &[TaggedSymbol]) -> automata_core::StreamOutcome {
        let mut state = self.initial;
        // The logical stack is spilled[1..sp] with its top cached in the
        // register `top`; spilled[0] is the pending-return sentinel, so the
        // live height is sp - 1. Keeping the top in a register keeps the
        // address chain `state → table → state` free of stack loads.
        let mut spilled: Vec<u32> = vec![self.pending_row; 64];
        let mut top = self.pending_row;
        let mut sp = 1usize;
        let mut max_sp = 1usize;
        for &event in events {
            self.step_local(
                &mut state,
                &mut top,
                &mut sp,
                &mut max_sp,
                &mut spilled,
                event,
            );
        }
        automata_core::StreamOutcome {
            accepted: self.accepting[(state / self.stride) as usize],
            events: events.len(),
            peak_memory: max_sp - 1,
        }
    }

    /// The branch-free event step on explicit locals. `inline(always)` so
    /// the callers' locals stay register-promoted: the single-stream loop
    /// of [`CompiledNwa::run_tagged`] keeps the whole lane state in
    /// registers for the duration of a slice, and the stored-lane
    /// [`BatchAcceptor::lane_step`] reuses the same body.
    #[inline(always)]
    fn step_local(
        &self,
        state: &mut u32,
        top: &mut u32,
        sp: &mut usize,
        max_sp: &mut usize,
        spilled: &mut Vec<u32>,
        event: TaggedSymbol,
    ) {
        let sigma = self.sigma;
        // Flag-style decode: `matches!` comparisons compile to setcc,
        // where a `match` yielding per-arm values compiles to data-
        // dependent (hence mispredicted) branches.
        let a = event.symbol().index() as u32;
        let is_int = u32::from(matches!(event, TaggedSymbol::Internal(_)));
        let is_ret = u32::from(matches!(event, TaggedSymbol::Return(_)));
        let kind = is_int + 2 * is_ret;
        debug_assert!(a < sigma.max(1), "event symbol outside the alphabet");
        // Predictable (amortized-rare) growth branch, never a per-kind one.
        if *sp + 1 >= spilled.len() {
            spilled.resize(spilled.len() * 2, 0);
        }
        // Unconditional spill of the cached top into its memory home
        // `sp - 1` (a call's push must preserve it there; harmless
        // otherwise — the slot is dead while the top lives in the
        // register), then one add-and-load resolves the event, with the
        // return block masked in only for returns.
        spilled[*sp - 1] = *top;
        let ret_mask = is_ret.wrapping_neg();
        let pushed = self.push[(*state + a) as usize];
        *state = self.table[(*state + kind * sigma + a + (*top & ret_mask)) as usize];
        // New height and new top, all selected without branching: a
        // call caches its pushed value, an internal keeps the top, a
        // return refills from the slot that becomes the new top.
        let is_call = usize::from(kind == 0);
        *sp = (*sp + is_call - is_ret as usize).max(1);
        let refill = spilled[*sp - 1];
        *top = [pushed, *top, refill][kind as usize];
        *max_sp = (*max_sp).max(*sp);
    }
}

/// A streaming run of a [`CompiledNwa`]: the same protocol as the
/// interpreted [`StreamingRun`](crate::StreamingRun), resolved against the
/// fused table with a stack of `u32` return-block bases. For whole slices,
/// [`CompiledNwa::run_tagged`] is the faster entry point (its event-kind
/// handling is branch-free).
#[derive(Debug, Clone)]
pub struct CompiledNwaRun<'a> {
    pub(crate) tables: &'a CompiledNwa,
    pub(crate) state: u32,
    pub(crate) stack: Vec<u32>,
    pub(crate) max_stack: usize,
    pub(crate) steps: usize,
}

impl CompiledNwaRun<'_> {
    #[inline]
    fn step_event(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        let t = self.tables;
        let sigma = t.sigma;
        let a = event.symbol().index() as u32;
        debug_assert!(a < sigma.max(1), "event symbol outside the alphabet");
        match event.kind() {
            PositionKind::Internal => {
                self.state = t.table[(self.state + sigma + a) as usize];
            }
            PositionKind::Call => {
                let idx = (self.state + a) as usize;
                self.stack.push(t.push[idx]);
                self.max_stack = self.max_stack.max(self.stack.len());
                self.state = t.table[idx];
            }
            PositionKind::Return => {
                let base = self.stack.pop().unwrap_or(t.pending_row);
                self.state = t.table[(base + self.state + 2 * sigma + a) as usize];
            }
        }
    }
}

impl StreamRun for CompiledNwaRun<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        self.step_event(event);
    }

    /// Bulk entry: hoists the run into the branch-free register-resident
    /// loop of [`CompiledNwa::run_tagged`] for the whole slice, then folds
    /// the locals back into the stored run. The suspended stack becomes
    /// `spilled[1..sp]` above the pending-return sentinel with its top
    /// cached in a register, exactly the lane layout `step_local` expects,
    /// so a run interleaving `step` and `step_slice` observes the same
    /// states as one stepped event-by-event.
    fn step_slice(&mut self, events: &[TaggedSymbol]) {
        let t = self.tables;
        let mut state = self.state;
        let mut spilled: Vec<u32> = Vec::with_capacity(self.stack.len() + 65);
        spilled.push(t.pending_row);
        spilled.extend_from_slice(&self.stack);
        let sp0 = spilled.len();
        spilled.resize(sp0 + 64, 0);
        let mut sp = sp0;
        let mut top = spilled[sp - 1];
        let mut max_sp = (self.max_stack + 1).max(sp);
        for &event in events {
            t.step_local(
                &mut state,
                &mut top,
                &mut sp,
                &mut max_sp,
                &mut spilled,
                event,
            );
        }
        self.state = state;
        self.stack.clear();
        self.stack.extend_from_slice(&spilled[1..sp]);
        if let Some(last) = self.stack.last_mut() {
            *last = top;
        }
        self.max_stack = max_sp - 1;
        self.steps += events.len();
    }

    fn is_accepting(&self) -> bool {
        self.tables.accepting[(self.state / self.tables.stride) as usize]
    }

    fn stack_height(&self) -> usize {
        self.stack.len()
    }

    fn peak_memory(&self) -> usize {
        self.max_stack
    }

    fn steps(&self) -> usize {
        self.steps
    }
}

impl StreamAcceptor for CompiledNwa {
    type Run<'a> = CompiledNwaRun<'a>;

    fn start(&self) -> CompiledNwaRun<'_> {
        CompiledNwaRun {
            tables: self,
            state: self.initial,
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }
}

/// One stream's worth of batched-execution state for a [`CompiledNwa`]:
/// the premultiplied linear state, the register-style cached stack top, and
/// the spilled `u32` stack with its pending-return sentinel — exactly the
/// state [`CompiledNwa::run_tagged`] keeps in registers, made storable so N
/// lanes can sit side by side and migrate across worker threads.
#[derive(Debug, Clone)]
pub struct CompiledNwaLane {
    /// Current linear state as a premultiplied row offset.
    pub(crate) state: u32,
    /// Cached top of the stack (a return-row base).
    pub(crate) top: u32,
    /// Stack pointer into `spilled`; the live height is `sp - 1` because
    /// `spilled[0]` is the pending-return sentinel.
    pub(crate) sp: u32,
    /// Peak `sp` observed.
    pub(crate) max_sp: u32,
    /// Events consumed.
    pub(crate) steps: usize,
    /// The spilled stack; `spilled[sp - 1]` mirrors `top` after each
    /// internal or return step (after a call the register `top` is
    /// authoritative and the slot is dead).
    pub(crate) spilled: Vec<u32>,
}

impl BatchAcceptor for CompiledNwa {
    type Lane = CompiledNwaLane;

    fn lane_start(&self) -> CompiledNwaLane {
        CompiledNwaLane {
            state: self.initial,
            top: self.pending_row,
            sp: 1,
            max_sp: 1,
            steps: 0,
            spilled: vec![self.pending_row; 64],
        }
    }

    /// The branch-free event step of [`CompiledNwa::run_tagged`]
    /// (`step_local`), operating on a stored lane instead of the
    /// single-stream loop's registers: setcc decode of the event kind,
    /// unconditional spill of the cached top, one add-and-load with the
    /// return base masked in, comparison-selected stack adjustment. Lanes
    /// touch only their own state, so interleaved calls on different lanes
    /// are independent dependency chains.
    #[inline]
    fn lane_step(&self, lane: &mut CompiledNwaLane, event: TaggedSymbol) {
        let mut sp = lane.sp as usize;
        let mut max_sp = lane.max_sp as usize;
        self.step_local(
            &mut lane.state,
            &mut lane.top,
            &mut sp,
            &mut max_sp,
            &mut lane.spilled,
            event,
        );
        lane.sp = sp as u32;
        lane.max_sp = max_sp as u32;
        lane.steps += 1;
    }

    fn lane_accepting(&self, lane: &CompiledNwaLane) -> bool {
        self.accepting[(lane.state / self.stride) as usize]
    }

    fn lane_outcome(&self, lane: &CompiledNwaLane) -> StreamOutcome {
        StreamOutcome {
            accepted: self.lane_accepting(lane),
            events: lane.steps,
            peak_memory: (lane.max_sp - 1) as usize,
        }
    }

    /// Overrides the generic lockstep to run each stream back to back with
    /// the register-resident [`CompiledNwa::run_tagged`] — deliberately
    /// *not* interleaved. The fused NWA step is issue-width-bound, not
    /// load-latency-bound: besides the table load it decodes the kind,
    /// spills the cached top, maintains the stack pointer and tracks the
    /// peak, which together keep the core's ports busy through the load's
    /// latency. Interleaving lanes therefore buys no overlap, and the extra
    /// lanes' state (~8 live values each against 15 usable x86-64 GPRs)
    /// spills to the stack and *loses* 15–30% to the sequential engine —
    /// measured on the lockstep kernel this override replaced. Flat
    /// automata, whose step is a pure add-and-load, are the opposite case:
    /// see `CompiledTaggedDfa::run_batch` in `word-automata`.
    fn run_batch(&self, streams: &[&[TaggedSymbol]]) -> Vec<StreamOutcome> {
        streams.iter().map(|s| self.run_tagged(s)).collect()
    }
}

impl Compile for Nwa {
    type Compiled = CompiledNwa;

    /// One fused premultiplied `u32` table ([`CompiledNwa`]); panics if
    /// `(states + states²) · 3σ` overflows `u32`.
    fn compile(&self) -> CompiledNwa {
        CompiledNwa::new(self)
    }
}

// --------------------------------------------------------------------------
// Nondeterministic models: memoized summary subset engine
// --------------------------------------------------------------------------

/// A summary interned by the memoized subset engine: the set itself (needed
/// to derive yet-unseen transitions) plus its memoized acceptance bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct InternedSummary {
    pub(crate) summary: Summary,
    pub(crate) accepting: bool,
}

/// The memoization state of a [`CompiledSummary`] engine: interned
/// summaries and one transition cache per step relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SummaryCache {
    /// Interned summaries by id.
    pub(crate) summaries: Vec<InternedSummary>,
    /// Summary → id, keyed by the packed sorted pair list.
    pub(crate) index: HashMap<Vec<u64>, u32>,
    /// `(summary, a)` → summary for internal positions.
    pub(crate) internal: HashMap<(u32, u16), u32>,
    /// `(summary, a)` → linear-successor summary for call positions.
    pub(crate) call: HashMap<(u32, u16), u32>,
    /// `(outer, call symbol, inner, a)` → summary for matched returns.
    pub(crate) matched: HashMap<(u32, u16, u32, u16), u32>,
    /// `(summary, a)` → summary for pending returns.
    pub(crate) pending: HashMap<(u32, u16), u32>,
}

/// Packs a summary into its canonical hash key (pairs are already sorted in
/// the `BTreeSet`).
pub(crate) fn summary_key(s: &Summary) -> Vec<u64> {
    s.iter()
        .map(|&(anchor, cur)| {
            debug_assert!(anchor <= u32::MAX as usize && cur <= u32::MAX as usize);
            ((anchor as u64) << 32) | cur as u64
        })
        .collect()
}

impl SummaryCache {
    fn intern<A: SummarySemantics>(&mut self, automaton: &A, summary: Summary) -> u32 {
        let key = summary_key(&summary);
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = u32::try_from(self.summaries.len()).expect("summary cache overflow");
        let accepting = automaton.summary_accepting(&summary);
        self.index.insert(key, id);
        self.summaries.push(InternedSummary { summary, accepting });
        id
    }
}

/// The summary-set subset construction of §3.2 compiled on the fly: state
/// sets are interned once, and every (summary, event) transition is derived
/// from the nondeterministic relations at most once, then served from a
/// hash cache. Streams with repeated event patterns — the common case for
/// document queries — run almost entirely on precomputed rows.
///
/// Generic over [`SummarySemantics`], so one engine serves both
/// [`Nnwa`] (ordinary return relation) and [`JoinlessNwa`] (mode-split
/// return relation). The cache is interior-mutable behind an [`RwLock`] and
/// shared by every run started from the same compiled artifact — warm-up
/// amortizes across runs *and* across threads: the artifact is
/// `Send + Sync` (asserted in the test suite), so one `Arc`'d engine can
/// serve every worker of a decision service, with the steady state (cache
/// hits) taking only the uncontended read lock.
///
/// This is in effect determinization restricted to the reachable,
/// actually-visited part of the `2^{s²}` summary-set automaton — the memory
/// trade-off is the cache, which grows with the number of distinct
/// summaries visited, not with the stream length.
#[derive(Debug)]
pub struct CompiledSummary<A: SummarySemantics> {
    pub(crate) automaton: A,
    pub(crate) initial: u32,
    pub(crate) cache: RwLock<SummaryCache>,
}

impl<A: SummarySemantics + PartialEq> PartialEq for CompiledSummary<A> {
    /// Structural equality over the automaton, the initial id *and* the
    /// memoization cache — `load(save(a)) == a` asserts that the warmed
    /// rows shipped with the artifact, not just the relations.
    fn eq(&self, other: &Self) -> bool {
        self.automaton == other.automaton
            && self.initial == other.initial
            && *self.lock_read() == *other.lock_read()
    }
}

impl<A: SummarySemantics + Eq> Eq for CompiledSummary<A> {}

impl<A: SummarySemantics + Clone> Clone for CompiledSummary<A> {
    fn clone(&self) -> Self {
        CompiledSummary {
            automaton: self.automaton.clone(),
            initial: self.initial,
            cache: RwLock::new(self.lock_read().clone()),
        }
    }
}

impl<A: SummarySemantics> CompiledSummary<A> {
    /// Compiles the engine around (an owned copy of) the automaton.
    pub fn new(automaton: A) -> Self {
        let mut cache = SummaryCache::default();
        let initial = cache.intern(&automaton, automaton.initial_summary());
        CompiledSummary {
            automaton,
            initial,
            cache: RwLock::new(cache),
        }
    }

    /// Number of distinct summaries interned so far — the size of the
    /// visited part of the subset construction (grows as runs explore new
    /// event patterns, never with stream length).
    pub fn cached_summaries(&self) -> usize {
        self.lock_read().summaries.len()
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, SummaryCache> {
        self.cache.read().expect("summary cache lock poisoned")
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, SummaryCache> {
        self.cache.write().expect("summary cache lock poisoned")
    }

    fn accepting(&self, id: u32) -> bool {
        self.lock_read().summaries[id as usize].accepting
    }

    fn step_internal(&self, id: u32, a: Symbol) -> u32 {
        // Steady state: one shared (uncontended-read) lock per event. Only
        // a miss — once per distinct (summary, symbol) for the lifetime of
        // the artifact — takes the write lock to derive and memoize.
        if let Some(&hit) = self.lock_read().internal.get(&(id, a.0)) {
            return hit;
        }
        let mut cache = self.lock_write();
        if let Some(&hit) = cache.internal.get(&(id, a.0)) {
            return hit;
        }
        let next = self
            .automaton
            .summary_internal(&cache.summaries[id as usize].summary, a);
        let next_id = cache.intern(&self.automaton, next);
        cache.internal.insert((id, a.0), next_id);
        next_id
    }

    fn step_call(&self, id: u32, a: Symbol) -> u32 {
        if let Some(&hit) = self.lock_read().call.get(&(id, a.0)) {
            return hit;
        }
        let mut cache = self.lock_write();
        if let Some(&hit) = cache.call.get(&(id, a.0)) {
            return hit;
        }
        let next = self
            .automaton
            .summary_call(&cache.summaries[id as usize].summary, a);
        let next_id = cache.intern(&self.automaton, next);
        cache.call.insert((id, a.0), next_id);
        next_id
    }

    fn step_matched(&self, outer: u32, call_symbol: Symbol, inner: u32, a: Symbol) -> u32 {
        let key = (outer, call_symbol.0, inner, a.0);
        if let Some(&hit) = self.lock_read().matched.get(&key) {
            return hit;
        }
        let mut cache = self.lock_write();
        if let Some(&hit) = cache.matched.get(&key) {
            return hit;
        }
        let next = self.automaton.summary_matched_return(
            &cache.summaries[outer as usize].summary,
            call_symbol,
            &cache.summaries[inner as usize].summary,
            a,
        );
        let next_id = cache.intern(&self.automaton, next);
        cache.matched.insert(key, next_id);
        next_id
    }

    fn step_pending(&self, id: u32, a: Symbol) -> u32 {
        if let Some(&hit) = self.lock_read().pending.get(&(id, a.0)) {
            return hit;
        }
        let mut cache = self.lock_write();
        if let Some(&hit) = cache.pending.get(&(id, a.0)) {
            return hit;
        }
        let next = self
            .automaton
            .summary_pending_return(&cache.summaries[id as usize].summary, a);
        let next_id = cache.intern(&self.automaton, next);
        cache.pending.insert((id, a.0), next_id);
        next_id
    }
}

/// A streaming run of a [`CompiledSummary`] engine: the same observable
/// protocol as [`SummaryStreamingRun`](crate::summary::SummaryStreamingRun),
/// but every configuration is one interned `u32` id and every step is a
/// cache lookup (or, once per distinct transition, a derivation).
#[derive(Debug)]
pub struct CompiledSummaryRun<'a, A: SummarySemantics> {
    pub(crate) engine: &'a CompiledSummary<A>,
    pub(crate) current: u32,
    pub(crate) stack: Vec<(u32, Symbol)>,
    pub(crate) max_stack: usize,
    pub(crate) steps: usize,
}

impl<A: SummarySemantics> StreamRun for CompiledSummaryRun<'_, A> {
    fn step(&mut self, event: TaggedSymbol) {
        self.steps += 1;
        let a = event.symbol();
        match event.kind() {
            PositionKind::Internal => {
                self.current = self.engine.step_internal(self.current, a);
            }
            PositionKind::Call => {
                let linear = self.engine.step_call(self.current, a);
                self.stack.push((self.current, a));
                self.max_stack = self.max_stack.max(self.stack.len());
                self.current = linear;
            }
            PositionKind::Return => match self.stack.pop() {
                Some((outer, call_symbol)) => {
                    self.current = self
                        .engine
                        .step_matched(outer, call_symbol, self.current, a);
                }
                None => {
                    self.current = self.engine.step_pending(self.current, a);
                }
            },
        }
    }

    fn is_accepting(&self) -> bool {
        self.engine.accepting(self.current)
    }

    fn stack_height(&self) -> usize {
        self.stack.len()
    }

    fn peak_memory(&self) -> usize {
        self.max_stack
    }

    fn steps(&self) -> usize {
        self.steps
    }
}

impl<A: SummarySemantics> StreamAcceptor for CompiledSummary<A> {
    type Run<'a>
        = CompiledSummaryRun<'a, A>
    where
        Self: 'a;

    fn start(&self) -> CompiledSummaryRun<'_, A> {
        CompiledSummaryRun {
            engine: self,
            current: self.initial,
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }
}

/// One stream's worth of batched-execution state for a [`CompiledSummary`]
/// engine: the interned summary id plus the per-stream call stack — the
/// state of a [`CompiledSummaryRun`], made owned so N lanes share one
/// engine (and its memoized rows) from any number of threads.
#[derive(Debug, Clone)]
pub struct CompiledSummaryLane {
    pub(crate) current: u32,
    pub(crate) stack: Vec<(u32, Symbol)>,
    pub(crate) max_stack: usize,
    pub(crate) steps: usize,
}

impl<A: SummarySemantics> BatchAcceptor for CompiledSummary<A> {
    type Lane = CompiledSummaryLane;

    fn lane_start(&self) -> CompiledSummaryLane {
        CompiledSummaryLane {
            current: self.initial,
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }

    #[inline]
    fn lane_step(&self, lane: &mut CompiledSummaryLane, event: TaggedSymbol) {
        lane.steps += 1;
        let a = event.symbol();
        match event.kind() {
            PositionKind::Internal => {
                lane.current = self.step_internal(lane.current, a);
            }
            PositionKind::Call => {
                let linear = self.step_call(lane.current, a);
                lane.stack.push((lane.current, a));
                lane.max_stack = lane.max_stack.max(lane.stack.len());
                lane.current = linear;
            }
            PositionKind::Return => match lane.stack.pop() {
                Some((outer, call_symbol)) => {
                    lane.current = self.step_matched(outer, call_symbol, lane.current, a);
                }
                None => {
                    lane.current = self.step_pending(lane.current, a);
                }
            },
        }
    }

    fn lane_accepting(&self, lane: &CompiledSummaryLane) -> bool {
        self.accepting(lane.current)
    }

    fn lane_outcome(&self, lane: &CompiledSummaryLane) -> StreamOutcome {
        StreamOutcome {
            accepted: self.accepting(lane.current),
            events: lane.steps,
            peak_memory: lane.max_stack,
        }
    }
}

impl Compile for Nnwa {
    type Compiled = CompiledSummary<Nnwa>;

    /// The memoized summary subset engine ([`CompiledSummary`]) around an
    /// owned copy of the automaton.
    fn compile(&self) -> CompiledSummary<Nnwa> {
        CompiledSummary::new(self.clone())
    }
}

impl Compile for JoinlessNwa {
    type Compiled = CompiledSummary<JoinlessNwa>;

    /// The memoized summary subset engine ([`CompiledSummary`]) over the
    /// mode-split return relation, around an owned copy of the automaton.
    fn compile(&self) -> CompiledSummary<JoinlessNwa> {
        CompiledSummary::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::query;
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::tagged::parse_nested_word;
    use nested_words::{Alphabet, NestedWord};

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// The matching-labels NWA from the `automaton` tests: genuinely uses
    /// hierarchical states, pending calls and pending returns.
    fn matching_labels_nwa() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(4, 2, 0);
        m.set_accepting(0, true);
        m.set_all_transitions_to(3, 3);
        m.set_internal(0, a, 0);
        m.set_internal(0, b, 0);
        m.set_call(0, a, 0, 1);
        m.set_call(0, b, 0, 2);
        for q in [1usize, 2] {
            m.set_all_transitions_to(q, 3);
        }
        for h in 0..4usize {
            for (sym, want) in [(a, 1usize), (b, 2usize)] {
                let target = if h == want { 0 } else { 3 };
                m.set_return(0, h, sym, target);
            }
        }
        m
    }

    #[test]
    fn compiled_nwa_agrees_with_interpreted() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        let c = query::compile(&m);
        for s in [
            "",
            "<a a>",
            "<a b>",
            "<a <b b> a>",
            "a>",
            "<a",
            "<a a> b>",
            "<a <b <a a> b> a> <b b>",
        ] {
            let w = parse(&mut ab, s);
            let interpreted = query::run_stream(&m, w.to_tagged());
            let compiled = query::run_stream(&c, w.to_tagged());
            assert_eq!(interpreted, compiled, "word `{s}`");
        }
    }

    #[test]
    fn compiled_nwa_prefix_observables_match() {
        let m = matching_labels_nwa();
        let c = m.compile();
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 30,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..25u64 {
            let w = random_nested_word(&ab, cfg, seed);
            let mut ir = m.start();
            let mut cr = c.start();
            for (i, &event) in w.to_tagged().iter().enumerate() {
                ir.step(event);
                cr.step(event);
                assert_eq!(ir.is_accepting(), cr.is_accepting(), "seed {seed} pos {i}");
                assert_eq!(ir.stack_height(), cr.stack_height(), "seed {seed} pos {i}");
                assert_eq!(ir.peak_memory(), cr.peak_memory(), "seed {seed} pos {i}");
            }
        }
    }

    #[test]
    fn compiled_summary_caches_rows_across_runs() {
        let mut ab = Alphabet::ab();
        // Nondeterministic "some matched b-block" automaton.
        let a = Symbol(0);
        let b = Symbol(1);
        let mut n = Nnwa::new(3, 2);
        n.add_initial(0);
        n.add_accepting(2);
        for sym in [a, b] {
            n.add_internal(0, sym, 0);
            n.add_internal(2, sym, 2);
            n.add_call(0, sym, 0, 0);
            n.add_call(2, sym, 2, 0);
            for h in [0usize, 1] {
                n.add_return(0, h, sym, 0);
                n.add_return(2, h, sym, 2);
            }
        }
        n.add_call(0, b, 0, 1);
        n.add_return(0, 1, b, 2);

        let c = n.compile();
        let w = parse(&mut ab, "<b a b> <a <b b> a>");
        assert!(query::contains_stream(&c, w.to_tagged()));
        let warm = c.cached_summaries();
        assert!(warm > 0);
        // A second, repeated-pattern run derives nothing new.
        assert!(query::contains_stream(&c, w.to_tagged()));
        assert_eq!(c.cached_summaries(), warm);
        // And it still agrees with the interpreted engine on fresh input.
        for s in ["<b a>", "<a b a>", "b>", "<b", "<a <b b>"] {
            let v = parse(&mut ab, s);
            assert_eq!(
                query::contains_stream(&c, v.to_tagged()),
                query::contains(&n, &v),
                "word `{s}`"
            );
        }
    }

    /// The `Arc` serving path of the decision service requires the compiled
    /// artifacts to cross and be shared between threads. This did not
    /// compile while `CompiledSummary` held its memoized row caches in a
    /// `RefCell` (not `Sync`); the `RwLock`-backed cache makes it hold by
    /// construction, and this assertion keeps it held.
    #[test]
    fn compiled_artifacts_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledNwa>();
        assert_send_sync::<CompiledSummary<Nnwa>>();
        assert_send_sync::<CompiledSummary<JoinlessNwa>>();
        // Lanes migrate into worker threads on their own.
        fn assert_send<T: Send>() {}
        assert_send::<CompiledNwaLane>();
        assert_send::<CompiledSummaryLane>();
    }

    #[test]
    fn one_summary_engine_shared_across_threads() {
        let mut ab = Alphabet::ab();
        let n = {
            let a = Symbol(0);
            let b = Symbol(1);
            let mut n = Nnwa::new(3, 2);
            n.add_initial(0);
            n.add_accepting(2);
            for sym in [a, b] {
                n.add_internal(0, sym, 0);
                n.add_internal(2, sym, 2);
                n.add_call(0, sym, 0, 0);
                n.add_call(2, sym, 2, 0);
                for h in [0usize, 1] {
                    n.add_return(0, h, sym, 0);
                    n.add_return(2, h, sym, 2);
                }
            }
            n.add_call(0, b, 0, 1);
            n.add_return(0, 1, b, 2);
            n
        };
        let c = std::sync::Arc::new(n.compile());
        let words: Vec<_> = ["<b a b>", "<a <b b> a>", "b>", "<b", "a a"]
            .iter()
            .map(|s| parse(&mut ab, s))
            .collect();
        let expected: Vec<bool> = words.iter().map(|w| n.accepts(w)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                let words = words.clone();
                std::thread::spawn(move || {
                    words
                        .iter()
                        .map(|w| query::contains_stream(&*c, w.to_tagged()))
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn batched_lanes_agree_with_streaming_runs() {
        let m = matching_labels_nwa();
        let c = m.compile();
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 40,
            allow_pending: true,
            ..Default::default()
        };
        let words: Vec<Vec<TaggedSymbol>> = (0..8u64)
            .map(|seed| random_nested_word(&ab, cfg, seed).to_tagged())
            .collect();
        let streams: Vec<&[TaggedSymbol]> = words.iter().map(Vec::as_slice).collect();
        let outcomes = c.run_batch(&streams);
        for (stream, outcome) in streams.iter().zip(&outcomes) {
            assert_eq!(*outcome, c.run_tagged(stream));
        }
    }

    #[test]
    fn table_bytes_reports_the_dense_footprint() {
        let m = matching_labels_nwa();
        let c = m.compile();
        // fused table (4 + 4²)·3·2 entries + push table 4·3·2, 4 bytes each.
        assert_eq!(c.table_bytes(), ((4 + 16) * 6 + 24) * 4);
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.sigma(), 2);
    }

    #[test]
    fn bulk_runner_agrees_with_stepwise_runs() {
        let m = matching_labels_nwa();
        let c = m.compile();
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 40,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..50u64 {
            let w = random_nested_word(&ab, cfg, seed);
            let events = w.to_tagged();
            assert_eq!(
                c.run_tagged(&events),
                query::run_stream(&m, events.iter().copied()),
                "seed {seed}"
            );
        }
        // Deep nesting exercises the bulk runner's stack growth path.
        let deep: Vec<TaggedSymbol> = std::iter::repeat_n(TaggedSymbol::Call(Symbol(0)), 500)
            .chain(std::iter::repeat_n(TaggedSymbol::Return(Symbol(0)), 500))
            .collect();
        let outcome = c.run_tagged(&deep);
        assert_eq!(outcome, query::run_stream(&m, deep.iter().copied()));
        assert_eq!(outcome.peak_memory, 500);
    }
}
