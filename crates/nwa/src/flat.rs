//! Flat nested word automata and their correspondence with word automata
//! over the tagged alphabet Σ̂ (Theorem 2, §3.3).
//!
//! A flat NWA never sends information across hierarchical edges
//! (`δc^h(q, a) = q₀`), and is therefore nothing more than a DFA reading the
//! tagged word `nw_w(n)`: calls, internals and returns are just three
//! disjoint copies of the alphabet. The two conversions here are exact and
//! preserve the number of states in both directions, which is the content of
//! Theorem 2 and the basis of the succinctness experiments.

use crate::automaton::Nwa;
use nested_words::{NestedWord, Symbol, TaggedSymbol};
use word_automata::Dfa;

/// Converts a DFA over the tagged alphabet Σ̂ (indexed as in
/// [`TaggedSymbol::tagged_index`]: calls `0..σ`, internals `σ..2σ`, returns
/// `2σ..3σ`) into an equivalent flat NWA with the same number of states.
pub fn from_tagged_dfa(dfa: &Dfa, sigma: usize) -> Nwa {
    assert_eq!(
        dfa.num_symbols(),
        3 * sigma,
        "tagged DFA must have 3·|Σ| symbols"
    );
    let mut out = Nwa::new(dfa.num_states(), sigma, dfa.initial());
    for q in 0..dfa.num_states() {
        out.set_accepting(q, dfa.is_accepting(q));
        for a in 0..sigma {
            let sym = Symbol(a as u16);
            let call_t = dfa.next(q, TaggedSymbol::Call(sym).tagged_index(sigma));
            let int_t = dfa.next(q, TaggedSymbol::Internal(sym).tagged_index(sigma));
            out.set_call(q, sym, call_t, dfa.initial());
            out.set_internal(q, sym, int_t);
        }
    }
    for q in 0..dfa.num_states() {
        for h in 0..dfa.num_states() {
            for a in 0..sigma {
                let sym = Symbol(a as u16);
                let ret_t = dfa.next(q, TaggedSymbol::Return(sym).tagged_index(sigma));
                out.set_return(q, h, sym, ret_t);
            }
        }
    }
    out
}

/// Converts a flat NWA into a DFA over the tagged alphabet Σ̂ with the same
/// number of states. Panics if the automaton is not flat.
pub fn to_tagged_dfa(nwa: &Nwa) -> Dfa {
    assert!(nwa.is_flat(), "to_tagged_dfa requires a flat NWA");
    let sigma = nwa.sigma();
    let mut dfa = Dfa::new(nwa.num_states(), 3 * sigma, nwa.initial());
    for q in 0..nwa.num_states() {
        dfa.set_accepting(q, nwa.is_accepting(q));
        for a in 0..sigma {
            let sym = Symbol(a as u16);
            dfa.set_transition(
                q,
                TaggedSymbol::Call(sym).tagged_index(sigma),
                nwa.call_linear(q, sym),
            );
            dfa.set_transition(
                q,
                TaggedSymbol::Internal(sym).tagged_index(sigma),
                nwa.internal(q, sym),
            );
            // In a flat automaton every hierarchical edge carries the initial
            // state, so the return target does not depend on it.
            dfa.set_transition(
                q,
                TaggedSymbol::Return(sym).tagged_index(sigma),
                nwa.ret(q, nwa.initial(), sym),
            );
        }
    }
    dfa
}

/// Encodes a nested word as the word over Σ̂ (a sequence of
/// [`TaggedSymbol::tagged_index`] values) a tagged DFA reads.
pub fn tagged_indices(word: &NestedWord, sigma: usize) -> Vec<usize> {
    word.to_tagged()
        .iter()
        .map(|t| t.tagged_index(sigma))
        .collect()
}

/// The minimal flat NWA for the language of a flat NWA, obtained through DFA
/// minimization over Σ̂ (as described in §3.3: "using the classical
/// algorithms for minimizing deterministic word automata, one can construct a
/// minimal flat NWA").
pub fn minimize_flat(nwa: &Nwa) -> Nwa {
    let sigma = nwa.sigma();
    from_tagged_dfa(&to_tagged_dfa(nwa).minimize(), sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::generate::{random_nested_word, NestedWordConfig};
    use nested_words::Alphabet;
    use word_automata::Regex;

    /// DFA over Σ̂ for {a,b} accepting tagged words containing a b-labelled
    /// call somewhere (a purely linear property over the tagged encoding).
    fn dfa_has_b_call() -> Dfa {
        let sigma = 2;
        let b_call = TaggedSymbol::Call(Symbol(1)).tagged_index(sigma);
        let mut d = Dfa::new(2, 3 * sigma, 0);
        d.set_accepting(1, true);
        for q in 0..2 {
            for s in 0..3 * sigma {
                let t = if q == 1 || s == b_call { 1 } else { 0 };
                d.set_transition(q, s, t);
            }
        }
        d
    }

    #[test]
    fn tagged_dfa_to_flat_nwa_and_back() {
        let d = dfa_has_b_call();
        let flat = from_tagged_dfa(&d, 2);
        assert!(flat.is_flat());
        assert_eq!(flat.num_states(), d.num_states());
        let d2 = to_tagged_dfa(&flat);
        assert!(d.equivalent(&d2));
    }

    #[test]
    fn flat_nwa_agrees_with_dfa_on_random_words() {
        let d = dfa_has_b_call();
        let flat = from_tagged_dfa(&d, 2);
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 30,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..60 {
            let w = random_nested_word(&ab, cfg, seed);
            let tagged = tagged_indices(&w, 2);
            assert_eq!(flat.accepts(&w), d.accepts(&tagged), "seed {seed}");
        }
    }

    #[test]
    fn minimize_flat_reduces_states_and_preserves_language() {
        // Build a redundant DFA via a regex (Thompson + subset construction
        // without minimization), convert to a flat NWA, minimize.
        let sigma = 2usize;
        let b_call = TaggedSymbol::Call(Symbol(1)).tagged_index(sigma);
        let r = Regex::any_star()
            .concat(Regex::Symbol(b_call))
            .concat(Regex::any_star());
        let unminimized = r.to_nfa(3 * sigma).determinize();
        let flat = from_tagged_dfa(&unminimized, sigma);
        let minimal = minimize_flat(&flat);
        assert!(minimal.num_states() <= flat.num_states());
        assert_eq!(minimal.num_states(), 2);
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 20,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..30 {
            let w = random_nested_word(&ab, cfg, seed);
            assert_eq!(flat.accepts(&w), minimal.accepts(&w), "seed {seed}");
        }
    }

    #[test]
    fn flat_nwa_cannot_use_hierarchy() {
        let d = dfa_has_b_call();
        let flat = from_tagged_dfa(&d, 2);
        // the hierarchical component always points at the initial state
        for q in 0..flat.num_states() {
            for a in 0..flat.sigma() {
                assert_eq!(flat.call_hier(q, Symbol(a as u16)), flat.initial());
            }
        }
    }
}
