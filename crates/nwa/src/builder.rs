//! Fluent builders for nested word automata.
//!
//! [`NwaBuilder`] and [`NnwaBuilder`] replace the older `new` + imperative
//! `set_*`/`add_*` sequences: construction reads as one expression, states
//! are typed [`StateId`]s at the call sites, and the finished automaton is
//! produced by [`build`](automata_core::Builder::build).
//!
//! ```
//! use automata_core::Acceptor;
//! use nested_words::{Alphabet, Symbol, tagged::parse_nested_word};
//! use nwa::NwaBuilder;
//!
//! let a = Symbol(0);
//! // One state, all transitions looping: accepts every nested word over {a}.
//! let all = NwaBuilder::new(1, 1, 0)
//!     .accepting(0)
//!     .internal(0, a, 0)
//!     .call(0, a, 0, 0)
//!     .ret(0, 0, a, 0)
//!     .build();
//! let mut ab = Alphabet::from_names(["a"]);
//! assert!(all.accepts(&parse_nested_word("<a a a>", &mut ab).unwrap()));
//! ```

use crate::automaton::Nwa;
use crate::nondet::Nnwa;
use automata_core::{Builder, StateId};
use nested_words::Symbol;

/// Fluent builder for deterministic nested word automata ([`Nwa`]).
///
/// Transitions not set explicitly keep the [`Nwa::new`] default of pointing
/// at state 0; use [`sink`](NwaBuilder::sink) for an explicit dead state.
#[derive(Debug, Clone)]
pub struct NwaBuilder {
    nwa: Nwa,
}

impl NwaBuilder {
    /// Starts building an NWA with `num_states` states over an alphabet of
    /// `sigma` symbols, starting in `initial`.
    pub fn new(num_states: usize, sigma: usize, initial: impl Into<StateId>) -> Self {
        NwaBuilder {
            nwa: Nwa::new(num_states, sigma, initial.into().index()),
        }
    }

    /// Marks `q` as accepting.
    pub fn accepting(mut self, q: impl Into<StateId>) -> Self {
        self.nwa.set_accepting(q.into().index(), true);
        self
    }

    /// Sets the internal transition `δi(q, a) = target`.
    pub fn internal(
        mut self,
        q: impl Into<StateId>,
        a: Symbol,
        target: impl Into<StateId>,
    ) -> Self {
        self.nwa
            .set_internal(q.into().index(), a, target.into().index());
        self
    }

    /// Sets the call transition `δc(q, a) = (linear, hier)`.
    pub fn call(
        mut self,
        q: impl Into<StateId>,
        a: Symbol,
        linear: impl Into<StateId>,
        hier: impl Into<StateId>,
    ) -> Self {
        self.nwa.set_call(
            q.into().index(),
            a,
            linear.into().index(),
            hier.into().index(),
        );
        self
    }

    /// Sets the return transition `δr(linear, hier, a) = target`.
    pub fn ret(
        mut self,
        linear: impl Into<StateId>,
        hier: impl Into<StateId>,
        a: Symbol,
        target: impl Into<StateId>,
    ) -> Self {
        self.nwa.set_return(
            linear.into().index(),
            hier.into().index(),
            a,
            target.into().index(),
        );
        self
    }

    /// Makes `q` a sink: every transition out of it loops back to `q`.
    pub fn sink(mut self, q: impl Into<StateId>) -> Self {
        let q = q.into().index();
        self.nwa.set_all_transitions_to(q, q);
        self
    }

    /// Routes every transition out of `q` (every symbol, every return
    /// pairing) to `target`; the fluent spelling of
    /// [`Nwa::set_all_transitions_to`]. Use this rather than
    /// [`sink`](NwaBuilder::sink) when a state must fall through to a
    /// *different* dead state — the two produce language-equivalent but
    /// structurally different automata, which matters to the construction
    /// experiments that count states.
    pub fn all_transitions(mut self, q: impl Into<StateId>, target: impl Into<StateId>) -> Self {
        self.nwa
            .set_all_transitions_to(q.into().index(), target.into().index());
        self
    }

    /// Produces the automaton.
    pub fn build(self) -> Nwa {
        self.nwa
    }
}

impl Builder for NwaBuilder {
    type Output = Nwa;

    fn build(self) -> Nwa {
        self.nwa
    }
}

impl Nwa {
    /// Starts a fluent [`NwaBuilder`]; equivalent to [`NwaBuilder::new`].
    pub fn builder(num_states: usize, sigma: usize, initial: impl Into<StateId>) -> NwaBuilder {
        NwaBuilder::new(num_states, sigma, initial)
    }
}

/// Fluent builder for nondeterministic nested word automata ([`Nnwa`]).
#[derive(Debug, Clone)]
pub struct NnwaBuilder {
    nnwa: Nnwa,
}

impl NnwaBuilder {
    /// Starts building an NNWA with `num_states` states over an alphabet of
    /// `sigma` symbols, with no transitions.
    pub fn new(num_states: usize, sigma: usize) -> Self {
        NnwaBuilder {
            nnwa: Nnwa::new(num_states, sigma),
        }
    }

    /// Marks `q` as initial.
    pub fn initial(mut self, q: impl Into<StateId>) -> Self {
        self.nnwa.add_initial(q.into().index());
        self
    }

    /// Marks `q` as accepting.
    pub fn accepting(mut self, q: impl Into<StateId>) -> Self {
        self.nnwa.add_accepting(q.into().index());
        self
    }

    /// Adds the internal transition `(q, a) → target`.
    pub fn internal(
        mut self,
        q: impl Into<StateId>,
        a: Symbol,
        target: impl Into<StateId>,
    ) -> Self {
        self.nnwa
            .add_internal(q.into().index(), a, target.into().index());
        self
    }

    /// Adds the call transition `(q, a) → (linear, hier)`.
    pub fn call(
        mut self,
        q: impl Into<StateId>,
        a: Symbol,
        linear: impl Into<StateId>,
        hier: impl Into<StateId>,
    ) -> Self {
        self.nnwa.add_call(
            q.into().index(),
            a,
            linear.into().index(),
            hier.into().index(),
        );
        self
    }

    /// Adds the return transition `(linear, hier, a) → target`.
    pub fn ret(
        mut self,
        linear: impl Into<StateId>,
        hier: impl Into<StateId>,
        a: Symbol,
        target: impl Into<StateId>,
    ) -> Self {
        self.nnwa.add_return(
            linear.into().index(),
            hier.into().index(),
            a,
            target.into().index(),
        );
        self
    }

    /// Produces the automaton.
    pub fn build(self) -> Nnwa {
        self.nnwa
    }
}

impl Builder for NnwaBuilder {
    type Output = Nnwa;

    fn build(self) -> Nnwa {
        self.nnwa
    }
}

impl Nnwa {
    /// Starts a fluent [`NnwaBuilder`]; equivalent to [`NnwaBuilder::new`].
    pub fn builder(num_states: usize, sigma: usize) -> NnwaBuilder {
        NnwaBuilder::new(num_states, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata_core::Acceptor;
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    #[test]
    fn nwa_builder_matches_imperative_construction() {
        let a = Symbol(0);
        let b = Symbol(1);
        let built = NwaBuilder::new(2, 2, 0)
            .accepting(0)
            .sink(1)
            .internal(0, a, 0)
            .internal(0, b, 1)
            .call(0, a, 0, 0)
            .call(0, b, 1, 0)
            .ret(0, 0, a, 0)
            .ret(0, 1, a, 0)
            .ret(0, 0, b, 1)
            .ret(0, 1, b, 1)
            .build();

        let mut byhand = Nwa::new(2, 2, 0);
        byhand.set_accepting(0, true);
        byhand.set_all_transitions_to(1, 1);
        byhand.set_internal(0, a, 0);
        byhand.set_internal(0, b, 1);
        byhand.set_call(0, a, 0, 0);
        byhand.set_call(0, b, 1, 0);
        for h in 0..2 {
            byhand.set_return(0, h, a, 0);
            byhand.set_return(0, h, b, 1);
        }
        assert_eq!(built, byhand);
    }

    #[test]
    fn nnwa_builder_produces_working_automaton() {
        let a = Symbol(0);
        let n = Nnwa::builder(2, 1)
            .initial(0)
            .accepting(1)
            .call(0, a, 1, 0)
            .build();
        let mut ab = Alphabet::from_names(["a"]);
        assert!(n.accepts(&parse_nested_word("<a", &mut ab).unwrap()));
        assert!(!n.accepts(&parse_nested_word("a", &mut ab).unwrap()));
        // the trait spelling agrees
        assert!(Acceptor::accepts(
            &n,
            &parse_nested_word("<a", &mut ab).unwrap()
        ));
    }
}
