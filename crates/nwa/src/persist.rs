//! `Persist` and `Suspend` for the compiled NWA engines.
//!
//! * [`CompiledNwa`] is already plain old data — the payload is its scalars
//!   plus the fused table, the push table and the acceptance bits, and the
//!   loader re-derives the stride and range-checks **every** decoded entry
//!   (linear states must be in-range row offsets, pushed values must be
//!   return-block bases) so that a successfully loaded artifact can never
//!   index out of its own tables.
//! * [`CompiledSummary`] persists the automaton *and* its memoization cache:
//!   the interned summary universe in id order plus every memoized
//!   transition row, so a warmed engine ships warm (`load(save(a)) == a`
//!   compares the cache too). Ids are range-checked on load; the rows
//!   themselves are trusted content guarded by the payload checksum —
//!   re-deriving them would be re-compiling, which is exactly what loading
//!   exists to avoid.
//!
//! Snapshots of the dense engine are self-contained (state row offset plus
//! a stack of return-block bases, `check = 0`); snapshots of the subset
//! engine reference *interned ids*, which are only meaningful relative to
//! one intern order, so they carry a content hash of the referenced
//! summaries in [`Snapshot::check`] and resumption re-derives and compares
//! it — resuming on an artifact with the same automaton but a different
//! warm-up history fails with a typed error instead of silently running
//! from the wrong summary.

use crate::compile::{
    summary_key, CompiledNwa, CompiledNwaLane, CompiledNwaRun, CompiledSummary,
    CompiledSummaryLane, CompiledSummaryRun, InternedSummary, SummaryCache,
};
use crate::joinless::JoinlessNwa;
use crate::nondet::Nnwa;
use crate::summary::{Summary, SummarySemantics};
use automata_core::persist::{
    checksum_bytes, expect_alphabet, fingerprint_alphabet, fingerprint_payload, fnv1a_words, kind,
    Reader, Writer,
};
use automata_core::{Persist, PersistError, Snapshot, Suspend};
use nested_words::Symbol;
use std::sync::RwLock;

// --------------------------------------------------------------------------
// CompiledNwa: dense premultiplied tables
// --------------------------------------------------------------------------

impl CompiledNwa {
    /// Serializes the scalars and tables — the payload [`Persist::save`]
    /// seals, and the bytes the content fingerprint hashes. One definition
    /// for both, so the fingerprint computed at compile time equals the one
    /// a loader derives from [`Reader::payload_checksum`].
    fn write_payload(&self, w: &mut Writer) {
        w.put_u64(self.num_states as u64);
        w.put_u32(self.sigma);
        w.put_u32(self.initial);
        w.put_u32(self.pending_row);
        w.put_u32_slice(&self.table);
        w.put_u32_slice(&self.push);
        w.put_bools(&self.accepting);
    }

    /// Content hash over the serialized payload — computed once at compile
    /// time and stamped into every snapshot. Loaders do *not* call this:
    /// they fold the fingerprint out of the checksum pass [`Reader::open`]
    /// already made (one integrity walk, not two).
    pub(crate) fn compute_fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        fingerprint_payload(kind::COMPILED_NWA, checksum_bytes(w.payload()))
    }

    /// Length of the linear block — one past the largest valid row offset.
    fn lin(&self) -> u32 {
        self.num_states as u32 * self.stride
    }

    /// A valid linear-state row offset: `q·stride` for some `q < n`.
    fn is_row(&self, v: u32) -> bool {
        v < self.lin() && v.is_multiple_of(self.stride)
    }

    /// A valid return-block base: `lin·(1 + h)` for some `h < n` — what
    /// `push` entries, `pending_row` and dense-engine stack frames hold.
    fn is_ret_base(&self, v: u32) -> bool {
        let lin = u64::from(self.lin());
        let v = u64::from(v);
        v != 0 && v % lin == 0 && v / lin <= self.num_states as u64
    }

    /// Shared validation for [`Suspend::resume_run`] /
    /// [`Suspend::resume_lane`]: the snapshot must come from this artifact
    /// and describe a state the tables can actually index.
    fn check_snapshot(&self, s: &Snapshot) -> Result<(), PersistError> {
        if s.fingerprint != self.fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: self.fingerprint,
                found: s.fingerprint,
            });
        }
        if !self.is_row(s.state) {
            return Err(PersistError::Malformed {
                context: "snapshot state is not a row offset of this artifact",
            });
        }
        for &frame in &s.stack {
            if !self.is_ret_base(frame) {
                return Err(PersistError::Malformed {
                    context: "snapshot stack frame is not a return-block base",
                });
            }
        }
        if (s.peak as usize) < s.stack.len() {
            return Err(PersistError::Malformed {
                context: "snapshot peak below its stack height",
            });
        }
        if s.check != 0 {
            return Err(PersistError::Malformed {
                context: "dense-engine snapshots carry no integrity word",
            });
        }
        Ok(())
    }
}

impl Persist for CompiledNwa {
    const KIND: u16 = kind::COMPILED_NWA;

    fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.seal(Self::KIND, self.alphabet_fingerprint())
    }

    fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, Self::KIND)?;
        // `open` just hashed the whole payload; the content fingerprint
        // derives from that same walk instead of re-hashing the tables.
        let fingerprint = fingerprint_payload(Self::KIND, r.payload_checksum());
        let n = usize::try_from(r.get_u64()?).map_err(|_| PersistError::Malformed {
            context: "state count overflows",
        })?;
        let sigma = r.get_u32()?;
        let initial = r.get_u32()?;
        let pending_row = r.get_u32()?;
        let table = r.get_u32_vec()?;
        let push = r.get_u32_vec()?;
        let accepting = r.get_bool_vec()?;
        r.finish()?;
        expect_alphabet(alphabet, sigma as usize)?;
        if n == 0 {
            return Err(PersistError::Malformed {
                context: "compiled NWA with no states",
            });
        }
        let stride = (3 * u64::from(sigma)).max(1);
        let table_len = (n as u64)
            .checked_add(
                (n as u64)
                    .checked_mul(n as u64)
                    .ok_or(PersistError::Malformed {
                        context: "table size overflows",
                    })?,
            )
            .and_then(|x| x.checked_mul(stride))
            .ok_or(PersistError::Malformed {
                context: "table size overflows",
            })?;
        if u32::try_from(table_len).is_err() {
            return Err(PersistError::Malformed {
                context: "table size exceeds the u32 offset space",
            });
        }
        if table.len() as u64 != table_len {
            return Err(PersistError::Malformed {
                context: "fused table length disagrees with the state count",
            });
        }
        if push.len() as u64 != (n as u64) * stride {
            return Err(PersistError::Malformed {
                context: "push table length disagrees with the state count",
            });
        }
        if accepting.len() != n {
            return Err(PersistError::Malformed {
                context: "acceptance table length disagrees with the state count",
            });
        }
        let artifact = CompiledNwa {
            stride: stride as u32,
            sigma,
            num_states: n,
            table,
            push,
            pending_row,
            initial,
            accepting,
            fingerprint,
        };
        if !artifact.is_row(artifact.initial) {
            return Err(PersistError::Malformed {
                context: "initial state is not a row offset",
            });
        }
        if !artifact.is_ret_base(artifact.pending_row) {
            return Err(PersistError::Malformed {
                context: "pending-return row is not a return-block base",
            });
        }
        // Every decoded entry is range-checked before the artifact can ever
        // run: states must be row offsets (so `state + kind·σ + a + base`
        // stays inside the table) and pushed values return-block bases.
        // `push` is only ever indexed in the call band `q·stride + a` with
        // `a < σ`; the rest of each row is dead and canonically zero.
        for (i, &v) in artifact.push.iter().enumerate() {
            let live = (i as u64 % stride) < u64::from(sigma);
            if live && !artifact.is_ret_base(v) {
                return Err(PersistError::Malformed {
                    context: "push entry is not a return-block base",
                });
            }
            if !live && v != 0 {
                return Err(PersistError::Malformed {
                    context: "dead push entry is not zero",
                });
            }
        }
        // The fused table is by far the largest section (n·(1+n)·stride
        // entries), so its per-entry check avoids the `% stride` hardware
        // divide of `is_row`: valid row offsets are the n multiples of
        // `stride` below `lin`, a lookup table built in O(lin).
        let lin = artifact.lin() as usize;
        let mut row_lut = vec![false; lin];
        let mut row = 0;
        while row < lin {
            row_lut[row] = true;
            row += artifact.stride as usize;
        }
        if artifact
            .table
            .iter()
            .any(|&v| (v as usize) >= lin || !row_lut[v as usize])
        {
            return Err(PersistError::Malformed {
                context: "table entry is not a row offset",
            });
        }
        Ok(artifact)
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn alphabet_fingerprint(&self) -> u64 {
        fingerprint_alphabet(self.sigma as usize)
    }
}

impl Suspend for CompiledNwa {
    fn suspend_lane(&self, lane: &CompiledNwaLane) -> Snapshot {
        let sp = lane.sp as usize;
        // The logical stack is spilled[1..sp] — minus the sentinel — except
        // that after a call the register `top` is authoritative and the
        // top slot is stale, so overwrite it.
        let mut stack = lane.spilled[1..sp].to_vec();
        if let Some(top_slot) = stack.last_mut() {
            *top_slot = lane.top;
        }
        Snapshot {
            fingerprint: self.fingerprint,
            state: lane.state,
            stack,
            peak: lane.max_sp - 1,
            steps: lane.steps as u64,
            check: 0,
        }
    }

    fn resume_lane(&self, snapshot: &Snapshot) -> Result<CompiledNwaLane, PersistError> {
        self.check_snapshot(snapshot)?;
        let height = snapshot.stack.len();
        let mut spilled = Vec::with_capacity((height + 1).max(64));
        spilled.push(self.pending_row);
        spilled.extend_from_slice(&snapshot.stack);
        if spilled.len() < 64 {
            spilled.resize(64, self.pending_row);
        }
        Ok(CompiledNwaLane {
            state: snapshot.state,
            top: snapshot.stack.last().copied().unwrap_or(self.pending_row),
            sp: u32::try_from(height + 1).map_err(|_| PersistError::Malformed {
                context: "snapshot stack too deep for a lane",
            })?,
            max_sp: snapshot
                .peak
                .checked_add(1)
                .ok_or(PersistError::Malformed {
                    context: "snapshot peak overflows",
                })?,
            steps: decode_steps(snapshot.steps)?,
            spilled,
        })
    }

    fn suspend_run(&self, run: &CompiledNwaRun<'_>) -> Snapshot {
        Snapshot {
            fingerprint: self.fingerprint,
            state: run.state,
            stack: run.stack.clone(),
            peak: run.max_stack as u32,
            steps: run.steps as u64,
            check: 0,
        }
    }

    fn resume_run<'a>(&'a self, snapshot: &Snapshot) -> Result<CompiledNwaRun<'a>, PersistError> {
        self.check_snapshot(snapshot)?;
        Ok(CompiledNwaRun {
            tables: self,
            state: snapshot.state,
            stack: snapshot.stack.clone(),
            max_stack: snapshot.peak as usize,
            steps: decode_steps(snapshot.steps)?,
        })
    }
}

/// Step counters are `u64` on the wire and `usize` in run state.
fn decode_steps(steps: u64) -> Result<usize, PersistError> {
    usize::try_from(steps).map_err(|_| PersistError::Malformed {
        context: "snapshot step count overflows",
    })
}

// --------------------------------------------------------------------------
// CompiledSummary: the subset engine, cache included
// --------------------------------------------------------------------------

/// A [`SummarySemantics`] whose automaton can ride inside a
/// [`CompiledSummary`] payload: a kind code, the alphabet size for header
/// validation, and an encode/decode pair for the nondeterministic relations.
pub trait PersistableSemantics: SummarySemantics + PartialEq + Sized {
    /// The artifact kind code of `CompiledSummary<Self>`.
    const KIND: u16;

    /// Number of states — the range bound for decoded summary pairs.
    fn num_states(&self) -> usize;

    /// Alphabet size — the range bound for decoded symbols, and what the
    /// header's alphabet fingerprint hashes.
    fn sigma(&self) -> usize;

    /// Appends the automaton's relations to a payload.
    fn encode(&self, w: &mut Writer);

    /// Decodes what [`encode`](PersistableSemantics::encode) wrote,
    /// range-checking every state and symbol.
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// Decodes a `u64` length already bounded by the payload into a `usize`.
fn decode_count(v: u64, context: &'static str) -> Result<usize, PersistError> {
    usize::try_from(v).map_err(|_| PersistError::Malformed { context })
}

/// Range-checks one decoded state index.
fn decode_state(v: u32, n: usize) -> Result<usize, PersistError> {
    let q = v as usize;
    if q < n {
        Ok(q)
    } else {
        Err(PersistError::Malformed {
            context: "transition references a state out of range",
        })
    }
}

/// Range-checks one decoded symbol.
fn decode_symbol(v: u32, sigma: usize) -> Result<Symbol, PersistError> {
    if (v as usize) < sigma && v <= u32::from(u16::MAX) {
        Ok(Symbol(v as u16))
    } else {
        Err(PersistError::Malformed {
            context: "transition symbol outside the alphabet",
        })
    }
}

/// Shared head of the [`Nnwa`] / [`JoinlessNwa`] codecs: state count,
/// alphabet size and the initial/accepting flag arrays.
fn decode_automaton_head(
    r: &mut Reader<'_>,
) -> Result<(usize, usize, Vec<bool>, Vec<bool>), PersistError> {
    let n = decode_count(r.get_u64()?, "state count overflows")?;
    let sigma = decode_count(r.get_u64()?, "alphabet size overflows")?;
    if sigma > usize::from(u16::MAX) + 1 {
        return Err(PersistError::Malformed {
            context: "alphabet size exceeds the symbol space",
        });
    }
    let initial = r.get_bool_vec()?;
    let accepting = r.get_bool_vec()?;
    if initial.len() != n || accepting.len() != n {
        return Err(PersistError::Malformed {
            context: "state flag array length disagrees with the state count",
        });
    }
    Ok((n, sigma, initial, accepting))
}

fn state_word(q: usize) -> u32 {
    u32::try_from(q).expect("state id fits u32")
}

impl PersistableSemantics for Nnwa {
    const KIND: u16 = kind::COMPILED_SUMMARY_NNWA;

    fn num_states(&self) -> usize {
        Nnwa::num_states(self)
    }

    fn sigma(&self) -> usize {
        Nnwa::sigma(self)
    }

    fn encode(&self, w: &mut Writer) {
        let n = Nnwa::num_states(self);
        w.put_u64(n as u64);
        w.put_u64(Nnwa::sigma(self) as u64);
        let mut initial = vec![false; n];
        for q in self.initial_states() {
            initial[q] = true;
        }
        w.put_bools(&initial);
        let accepting: Vec<bool> = (0..n).map(|q| self.is_accepting(q)).collect();
        w.put_bools(&accepting);
        let calls: Vec<u32> = self
            .calls()
            .iter()
            .flat_map(|&(q, a, linear, hier)| {
                [
                    state_word(q),
                    u32::from(a.0),
                    state_word(linear),
                    state_word(hier),
                ]
            })
            .collect();
        w.put_u32_slice(&calls);
        let internals: Vec<u32> = self
            .internals()
            .iter()
            .flat_map(|&(q, a, target)| [state_word(q), u32::from(a.0), state_word(target)])
            .collect();
        w.put_u32_slice(&internals);
        let returns: Vec<u32> = self
            .returns()
            .iter()
            .flat_map(|&(linear, hier, a, target)| {
                [
                    state_word(linear),
                    state_word(hier),
                    u32::from(a.0),
                    state_word(target),
                ]
            })
            .collect();
        w.put_u32_slice(&returns);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Nnwa, PersistError> {
        let (n, sigma, initial, accepting) = decode_automaton_head(r)?;
        let mut a = Nnwa::new(n, sigma);
        for (q, &flag) in initial.iter().enumerate() {
            if flag {
                a.add_initial(q);
            }
        }
        for (q, &flag) in accepting.iter().enumerate() {
            if flag {
                a.add_accepting(q);
            }
        }
        let calls = r.get_u32_vec()?;
        if calls.len() % 4 != 0 {
            return Err(PersistError::Malformed {
                context: "call relation truncated mid-transition",
            });
        }
        for t in calls.chunks_exact(4) {
            a.add_call(
                decode_state(t[0], n)?,
                decode_symbol(t[1], sigma)?,
                decode_state(t[2], n)?,
                decode_state(t[3], n)?,
            );
        }
        let internals = r.get_u32_vec()?;
        if internals.len() % 3 != 0 {
            return Err(PersistError::Malformed {
                context: "internal relation truncated mid-transition",
            });
        }
        for t in internals.chunks_exact(3) {
            a.add_internal(
                decode_state(t[0], n)?,
                decode_symbol(t[1], sigma)?,
                decode_state(t[2], n)?,
            );
        }
        let returns = r.get_u32_vec()?;
        if returns.len() % 4 != 0 {
            return Err(PersistError::Malformed {
                context: "return relation truncated mid-transition",
            });
        }
        for t in returns.chunks_exact(4) {
            a.add_return(
                decode_state(t[0], n)?,
                decode_state(t[1], n)?,
                decode_symbol(t[2], sigma)?,
                decode_state(t[3], n)?,
            );
        }
        Ok(a)
    }
}

impl PersistableSemantics for JoinlessNwa {
    const KIND: u16 = kind::COMPILED_SUMMARY_JOINLESS;

    fn num_states(&self) -> usize {
        JoinlessNwa::num_states(self)
    }

    fn sigma(&self) -> usize {
        JoinlessNwa::sigma(self)
    }

    fn encode(&self, w: &mut Writer) {
        let n = JoinlessNwa::num_states(self);
        w.put_u64(n as u64);
        w.put_u64(JoinlessNwa::sigma(self) as u64);
        let mut initial = vec![false; n];
        for q in self.initial_states() {
            initial[q] = true;
        }
        w.put_bools(&initial);
        let accepting: Vec<bool> = (0..n).map(|q| self.is_accepting(q)).collect();
        w.put_bools(&accepting);
        let linear: Vec<bool> = (0..n).map(|q| self.is_linear(q)).collect();
        w.put_bools(&linear);
        let calls: Vec<u32> = self
            .calls()
            .iter()
            .flat_map(|&(q, a, linear, hier)| {
                [
                    state_word(q),
                    u32::from(a.0),
                    state_word(linear),
                    state_word(hier),
                ]
            })
            .collect();
        w.put_u32_slice(&calls);
        let internals: Vec<u32> = self
            .internals()
            .iter()
            .flat_map(|&(q, a, target)| [state_word(q), u32::from(a.0), state_word(target)])
            .collect();
        w.put_u32_slice(&internals);
        let returns: Vec<u32> = self
            .returns()
            .iter()
            .flat_map(|&(q, a, target)| [state_word(q), u32::from(a.0), state_word(target)])
            .collect();
        w.put_u32_slice(&returns);
    }

    fn decode(r: &mut Reader<'_>) -> Result<JoinlessNwa, PersistError> {
        let (n, sigma, initial, accepting) = decode_automaton_head(r)?;
        let linear = r.get_bool_vec()?;
        if linear.len() != n {
            return Err(PersistError::Malformed {
                context: "state flag array length disagrees with the state count",
            });
        }
        let mut a = JoinlessNwa::new(n, sigma);
        for (q, &flag) in linear.iter().enumerate() {
            a.set_linear(q, flag);
        }
        for (q, &flag) in initial.iter().enumerate() {
            if flag {
                a.add_initial(q);
            }
        }
        for (q, &flag) in accepting.iter().enumerate() {
            if flag {
                a.add_accepting(q);
            }
        }
        let calls = r.get_u32_vec()?;
        if calls.len() % 4 != 0 {
            return Err(PersistError::Malformed {
                context: "call relation truncated mid-transition",
            });
        }
        for t in calls.chunks_exact(4) {
            a.add_call(
                decode_state(t[0], n)?,
                decode_symbol(t[1], sigma)?,
                decode_state(t[2], n)?,
                decode_state(t[3], n)?,
            );
        }
        let internals = r.get_u32_vec()?;
        if internals.len() % 3 != 0 {
            return Err(PersistError::Malformed {
                context: "internal relation truncated mid-transition",
            });
        }
        for t in internals.chunks_exact(3) {
            a.add_internal(
                decode_state(t[0], n)?,
                decode_symbol(t[1], sigma)?,
                decode_state(t[2], n)?,
            );
        }
        let returns = r.get_u32_vec()?;
        if returns.len() % 3 != 0 {
            return Err(PersistError::Malformed {
                context: "return relation truncated mid-transition",
            });
        }
        for t in returns.chunks_exact(3) {
            a.add_return(
                decode_state(t[0], n)?,
                decode_symbol(t[1], sigma)?,
                decode_state(t[2], n)?,
            );
        }
        Ok(a)
    }
}

/// Emits a 2-key memo map sorted by key (deterministic bytes).
fn put_map2(w: &mut Writer, map: &std::collections::HashMap<(u32, u16), u32>) {
    let mut entries: Vec<(u32, u16, u32)> = map.iter().map(|(&(q, a), &v)| (q, a, v)).collect();
    entries.sort_unstable();
    w.put_u64(entries.len() as u64);
    for (q, a, v) in entries {
        w.put_u32(q);
        w.put_u32(u32::from(a));
        w.put_u32(v);
    }
}

/// Emits the 4-key matched-return memo map sorted by key.
fn put_map4(w: &mut Writer, map: &std::collections::HashMap<(u32, u16, u32, u16), u32>) {
    let mut entries: Vec<(u32, u16, u32, u16, u32)> = map
        .iter()
        .map(|(&(outer, ca, inner, a), &v)| (outer, ca, inner, a, v))
        .collect();
    entries.sort_unstable();
    w.put_u64(entries.len() as u64);
    for (outer, ca, inner, a, v) in entries {
        w.put_u32(outer);
        w.put_u32(u32::from(ca));
        w.put_u32(inner);
        w.put_u32(u32::from(a));
        w.put_u32(v);
    }
}

/// Range-checks one decoded summary id.
fn decode_id(v: u32, count: usize) -> Result<u32, PersistError> {
    if (v as usize) < count {
        Ok(v)
    } else {
        Err(PersistError::Malformed {
            context: "memo row references a summary out of range",
        })
    }
}

fn get_map2(
    r: &mut Reader<'_>,
    count: usize,
    sigma: usize,
) -> Result<std::collections::HashMap<(u32, u16), u32>, PersistError> {
    let len = decode_count(r.get_u64()?, "memo map length overflows")?;
    let mut map = std::collections::HashMap::with_capacity(len);
    for _ in 0..len {
        let q = decode_id(r.get_u32()?, count)?;
        let a = decode_symbol(r.get_u32()?, sigma)?;
        let v = decode_id(r.get_u32()?, count)?;
        if map.insert((q, a.0), v).is_some() {
            return Err(PersistError::Malformed {
                context: "duplicate memo row",
            });
        }
    }
    Ok(map)
}

/// The matched-return memo rows: `(outer, call symbol, inner, symbol) →
/// summary id`, the four-key analogue of [`get_map2`]'s layout.
type Map4 = std::collections::HashMap<(u32, u16, u32, u16), u32>;

fn get_map4(r: &mut Reader<'_>, count: usize, sigma: usize) -> Result<Map4, PersistError> {
    let len = decode_count(r.get_u64()?, "memo map length overflows")?;
    let mut map = std::collections::HashMap::with_capacity(len);
    for _ in 0..len {
        let outer = decode_id(r.get_u32()?, count)?;
        let ca = decode_symbol(r.get_u32()?, sigma)?;
        let inner = decode_id(r.get_u32()?, count)?;
        let a = decode_symbol(r.get_u32()?, sigma)?;
        let v = decode_id(r.get_u32()?, count)?;
        if map.insert((outer, ca.0, inner, a.0), v).is_some() {
            return Err(PersistError::Malformed {
                context: "duplicate memo row",
            });
        }
    }
    Ok(map)
}

/// A validated subset-engine snapshot, decoded against one artifact's
/// intern table: `(current summary id, stack frames as (outer summary,
/// call symbol), peak, steps)`.
type DecodedSnapshot = (u32, Vec<(u32, Symbol)>, usize, usize);

impl<A: PersistableSemantics> CompiledSummary<A> {
    fn read_cache(&self) -> std::sync::RwLockReadGuard<'_, SummaryCache> {
        self.cache.read().expect("summary cache lock poisoned")
    }

    /// The integrity word of a subset-engine snapshot: a content hash of
    /// the summaries it references (current first, then each stack frame's
    /// outer summary, bottom to top). Interned ids are only meaningful
    /// relative to one intern order; this is how resumption detects a
    /// same-automaton artifact with a different warm-up history.
    fn snapshot_check<'i>(
        cache: &SummaryCache,
        current: u32,
        outers: impl Iterator<Item = &'i (u32, Symbol)>,
    ) -> u64 {
        let mut words = Vec::new();
        for id in std::iter::once(current).chain(outers.map(|&(outer, _)| outer)) {
            let key = summary_key(&cache.summaries[id as usize].summary);
            words.push(key.len() as u64);
            words.extend(key);
        }
        fnv1a_words(words)
    }

    /// Validates a snapshot against this artifact's intern table and
    /// decodes its stack back into `(summary id, call symbol)` frames.
    fn decode_snapshot(&self, snapshot: &Snapshot) -> Result<DecodedSnapshot, PersistError> {
        let fingerprint = self.fingerprint();
        if snapshot.fingerprint != fingerprint {
            return Err(PersistError::FingerprintMismatch {
                expected: fingerprint,
                found: snapshot.fingerprint,
            });
        }
        if !snapshot.stack.len().is_multiple_of(2) {
            return Err(PersistError::Malformed {
                context: "subset-engine snapshot stack must hold (summary, symbol) pairs",
            });
        }
        let cache = self.read_cache();
        let count = cache.summaries.len();
        let current = decode_id(snapshot.state, count).map_err(|_| PersistError::Malformed {
            context: "snapshot references a summary this artifact has not interned",
        })?;
        let sigma = self.automaton.sigma();
        let mut stack = Vec::with_capacity(snapshot.stack.len() / 2);
        for frame in snapshot.stack.chunks_exact(2) {
            let outer = decode_id(frame[0], count).map_err(|_| PersistError::Malformed {
                context: "snapshot references a summary this artifact has not interned",
            })?;
            stack.push((outer, decode_symbol(frame[1], sigma)?));
        }
        if (snapshot.peak as usize) < stack.len() {
            return Err(PersistError::Malformed {
                context: "snapshot peak below its stack height",
            });
        }
        if Self::snapshot_check(&cache, current, stack.iter()) != snapshot.check {
            return Err(PersistError::Malformed {
                context: "snapshot summary ids do not match this artifact's intern order",
            });
        }
        Ok((
            current,
            stack,
            snapshot.peak as usize,
            decode_steps(snapshot.steps)?,
        ))
    }
}

impl<A: PersistableSemantics> Persist for CompiledSummary<A> {
    const KIND: u16 = A::KIND;

    fn save(&self) -> Vec<u8> {
        let cache = self.read_cache();
        let mut w = Writer::new();
        self.automaton.encode(&mut w);
        w.put_u32(self.initial);
        // The interned summary universe, in id order — the warm cache ships
        // with the artifact.
        w.put_u64(cache.summaries.len() as u64);
        let accepting: Vec<bool> = cache.summaries.iter().map(|s| s.accepting).collect();
        w.put_bools(&accepting);
        for s in &cache.summaries {
            let pairs: Vec<u32> = s
                .summary
                .iter()
                .flat_map(|&(anchor, cur)| [state_word(anchor), state_word(cur)])
                .collect();
            w.put_u32_slice(&pairs);
        }
        put_map2(&mut w, &cache.internal);
        put_map2(&mut w, &cache.call);
        put_map2(&mut w, &cache.pending);
        put_map4(&mut w, &cache.matched);
        w.seal(Self::KIND, self.alphabet_fingerprint())
    }

    fn load(bytes: &[u8]) -> Result<Self, PersistError> {
        let (alphabet, mut r) = Reader::open(bytes, Self::KIND)?;
        let automaton = A::decode(&mut r)?;
        expect_alphabet(alphabet, automaton.sigma())?;
        let n = automaton.num_states();
        let initial = r.get_u32()?;
        let count = decode_count(r.get_u64()?, "summary count overflows")?;
        let accepting = r.get_bool_vec()?;
        if accepting.len() != count {
            return Err(PersistError::Malformed {
                context: "summary flag array length disagrees with the summary count",
            });
        }
        let mut cache = SummaryCache::default();
        for (i, &flag) in accepting.iter().enumerate() {
            let words = r.get_u32_vec()?;
            if words.len() % 2 != 0 {
                return Err(PersistError::Malformed {
                    context: "summary pair list truncated mid-pair",
                });
            }
            let mut summary = Summary::new();
            for pair in words.chunks_exact(2) {
                summary.insert((decode_state(pair[0], n)?, decode_state(pair[1], n)?));
            }
            if summary.len() * 2 != words.len() {
                return Err(PersistError::Malformed {
                    context: "duplicate pair inside an interned summary",
                });
            }
            if cache
                .index
                .insert(summary_key(&summary), i as u32)
                .is_some()
            {
                return Err(PersistError::Malformed {
                    context: "the same summary interned twice",
                });
            }
            cache.summaries.push(InternedSummary {
                summary,
                accepting: flag,
            });
        }
        if count == 0 || initial as usize >= count {
            return Err(PersistError::Malformed {
                context: "initial summary out of range",
            });
        }
        let sigma = automaton.sigma();
        cache.internal = get_map2(&mut r, count, sigma)?;
        cache.call = get_map2(&mut r, count, sigma)?;
        cache.pending = get_map2(&mut r, count, sigma)?;
        cache.matched = get_map4(&mut r, count, sigma)?;
        r.finish()?;
        Ok(CompiledSummary {
            automaton,
            initial,
            cache: RwLock::new(cache),
        })
    }

    /// Hashes the automaton and the initial summary — *not* the cache, so
    /// snapshots resume across differently warmed copies of the same
    /// engine (the [`Snapshot::check`] word guards the id mapping).
    fn fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.automaton.encode(&mut w);
        w.put_u32(self.initial);
        fingerprint_payload(A::KIND, checksum_bytes(w.payload()))
    }

    fn alphabet_fingerprint(&self) -> u64 {
        fingerprint_alphabet(self.automaton.sigma())
    }
}

impl<A: PersistableSemantics> Suspend for CompiledSummary<A> {
    fn suspend_lane(&self, lane: &CompiledSummaryLane) -> Snapshot {
        let cache = self.read_cache();
        let mut stack = Vec::with_capacity(lane.stack.len() * 2);
        for &(outer, sym) in &lane.stack {
            stack.push(outer);
            stack.push(u32::from(sym.0));
        }
        Snapshot {
            fingerprint: self.fingerprint(),
            state: lane.current,
            stack,
            peak: lane.max_stack as u32,
            steps: lane.steps as u64,
            check: Self::snapshot_check(&cache, lane.current, lane.stack.iter()),
        }
    }

    fn resume_lane(&self, snapshot: &Snapshot) -> Result<CompiledSummaryLane, PersistError> {
        let (current, stack, max_stack, steps) = self.decode_snapshot(snapshot)?;
        Ok(CompiledSummaryLane {
            current,
            stack,
            max_stack,
            steps,
        })
    }

    fn suspend_run(&self, run: &CompiledSummaryRun<'_, A>) -> Snapshot {
        let cache = self.read_cache();
        let mut stack = Vec::with_capacity(run.stack.len() * 2);
        for &(outer, sym) in &run.stack {
            stack.push(outer);
            stack.push(u32::from(sym.0));
        }
        Snapshot {
            fingerprint: self.fingerprint(),
            state: run.current,
            stack,
            peak: run.max_stack as u32,
            steps: run.steps as u64,
            check: Self::snapshot_check(&cache, run.current, run.stack.iter()),
        }
    }

    fn resume_run<'a>(
        &'a self,
        snapshot: &Snapshot,
    ) -> Result<CompiledSummaryRun<'a, A>, PersistError> {
        let (current, stack, max_stack, steps) = self.decode_snapshot(snapshot)?;
        Ok(CompiledSummaryRun {
            engine: self,
            current,
            stack,
            max_stack,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NwaBuilder;
    use automata_core::{BatchAcceptor, Compile, StreamAcceptor, StreamRun};
    use nested_words::TaggedSymbol;

    fn even_calls_nwa() -> crate::Nwa {
        let mut b = NwaBuilder::new(2, 2, 0).accepting(0);
        for q in 0..2usize {
            for a in 0..2u16 {
                let sym = Symbol(a);
                b = b
                    .internal(q, sym, q)
                    .call(q, sym, 1 - q, q)
                    .ret(q, 0usize, sym, q)
                    .ret(q, 1usize, sym, 1 - q);
            }
        }
        b.build()
    }

    #[test]
    fn compiled_nwa_round_trips() {
        let compiled = even_calls_nwa().compile();
        let bytes = compiled.save();
        let back = CompiledNwa::load(&bytes).unwrap();
        assert_eq!(back, compiled);
        assert_eq!(back.fingerprint(), compiled.fingerprint());
    }

    #[test]
    fn compiled_nwa_lane_suspends_and_resumes() {
        let compiled = even_calls_nwa().compile();
        let events = [
            TaggedSymbol::Call(Symbol(0)),
            TaggedSymbol::Internal(Symbol(1)),
            TaggedSymbol::Call(Symbol(1)),
            TaggedSymbol::Return(Symbol(0)),
        ];
        let mut lane = compiled.lane_start();
        for &e in &events {
            compiled.lane_step(&mut lane, e);
        }
        let snapshot = compiled.suspend_lane(&lane);
        let resumed = compiled.resume_lane(&snapshot).unwrap();
        assert_eq!(
            compiled.lane_outcome(&resumed),
            compiled.lane_outcome(&lane)
        );

        // A run resumed from the lane snapshot continues identically.
        let mut run = compiled.resume_run(&snapshot).unwrap();
        let mut full = compiled.start();
        for &e in &events {
            full.step(e);
        }
        let next = TaggedSymbol::Return(Symbol(1));
        run.step(next);
        full.step(next);
        assert_eq!(run.is_accepting(), full.is_accepting());
        assert_eq!(run.stack_height(), full.stack_height());
    }

    #[test]
    fn summary_cache_ships_with_the_artifact() {
        let nnwa = Nnwa::from_deterministic(&even_calls_nwa());
        let engine = CompiledSummary::new(nnwa);
        let events = [
            TaggedSymbol::Call(Symbol(0)),
            TaggedSymbol::Internal(Symbol(1)),
            TaggedSymbol::Return(Symbol(1)),
        ];
        let mut run = engine.start();
        for &e in &events {
            run.step(e);
        }
        drop(run);
        assert!(engine.cached_summaries() > 1);
        let back = CompiledSummary::<Nnwa>::load(&engine.save()).unwrap();
        assert_eq!(back, engine);
        assert_eq!(back.cached_summaries(), engine.cached_summaries());
    }

    #[test]
    fn foreign_snapshots_are_rejected() {
        let compiled = even_calls_nwa().compile();
        let lane = compiled.lane_start();
        let mut snapshot = compiled.suspend_lane(&lane);
        snapshot.fingerprint ^= 1;
        assert!(matches!(
            compiled.resume_lane(&snapshot),
            Err(PersistError::FingerprintMismatch { .. })
        ));
    }
}
