//! Deterministic nested word automata (§3.1 of the paper).

use nested_words::{NestedWord, PositionKind, Symbol, TaggedSymbol};

/// A deterministic nested word automaton (NWA).
///
/// States are dense indices `0..num_states`; symbols are dense indices
/// `0..sigma` (matching [`nested_words::Symbol`]). All transition functions
/// are total; automata built by the library route undesired inputs to an
/// explicit rejecting sink state they add themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nwa {
    num_states: usize,
    sigma: usize,
    initial: usize,
    accepting: Vec<bool>,
    /// Linear component of the call transition: `[q * sigma + a]`.
    call_linear: Vec<usize>,
    /// Hierarchical component of the call transition: `[q * sigma + a]`.
    call_hier: Vec<usize>,
    /// Internal transition: `[q * sigma + a]`.
    internal: Vec<usize>,
    /// Return transition: `[(q_linear * num_states + q_hier) * sigma + a]`.
    ret: Vec<usize>,
}

impl Nwa {
    /// Creates an NWA with `num_states` states over an alphabet of `sigma`
    /// symbols. All transitions initially point at state 0.
    pub fn new(num_states: usize, sigma: usize, initial: usize) -> Self {
        assert!(num_states > 0, "an NWA needs at least one state");
        assert!(initial < num_states, "initial state out of range");
        Nwa {
            num_states,
            sigma,
            initial,
            accepting: vec![false; num_states],
            call_linear: vec![0; num_states * sigma],
            call_hier: vec![0; num_states * sigma],
            internal: vec![0; num_states * sigma],
            ret: vec![0; num_states * num_states * sigma],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Returns `true` if `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting[q]
    }

    /// Marks `q` as accepting or rejecting.
    pub fn set_accepting(&mut self, q: usize, accepting: bool) {
        self.accepting[q] = accepting;
    }

    /// Sets the call transition `δc(q, a) = (linear, hier)`.
    pub fn set_call(&mut self, q: usize, a: Symbol, linear: usize, hier: usize) {
        let idx = q * self.sigma + a.index();
        self.call_linear[idx] = linear;
        self.call_hier[idx] = hier;
    }

    /// Sets the internal transition `δi(q, a) = target`.
    pub fn set_internal(&mut self, q: usize, a: Symbol, target: usize) {
        self.internal[q * self.sigma + a.index()] = target;
    }

    /// Sets the return transition `δr(q_linear, q_hier, a) = target`.
    pub fn set_return(&mut self, q_linear: usize, q_hier: usize, a: Symbol, target: usize) {
        self.ret[(q_linear * self.num_states + q_hier) * self.sigma + a.index()] = target;
    }

    /// The linear component `δc^l(q, a)`.
    pub fn call_linear(&self, q: usize, a: Symbol) -> usize {
        self.call_linear[q * self.sigma + a.index()]
    }

    /// The hierarchical component `δc^h(q, a)`.
    pub fn call_hier(&self, q: usize, a: Symbol) -> usize {
        self.call_hier[q * self.sigma + a.index()]
    }

    /// The internal transition `δi(q, a)`.
    pub fn internal(&self, q: usize, a: Symbol) -> usize {
        self.internal[q * self.sigma + a.index()]
    }

    /// The return transition `δr(q_linear, q_hier, a)`.
    pub fn ret(&self, q_linear: usize, q_hier: usize, a: Symbol) -> usize {
        self.ret[(q_linear * self.num_states + q_hier) * self.sigma + a.index()]
    }

    /// Convenience: sets every transition out of `q` (on every symbol, and
    /// every return pairing) to `target`. Used to wire up sink states.
    pub fn set_all_transitions_to(&mut self, q: usize, target: usize) {
        for a in 0..self.sigma {
            let a = Symbol(a as u16);
            self.set_call(q, a, target, target);
            self.set_internal(q, a, target);
            for h in 0..self.num_states {
                self.set_return(q, h, a, target);
            }
        }
    }

    /// Runs the automaton over a nested word and returns the final linear
    /// state. This is the unique run of §3.1; time is linear in the length
    /// and space proportional to the depth of the word.
    pub fn run(&self, word: &NestedWord) -> usize {
        let mut run = StreamingRun::new(self);
        for i in 0..word.len() {
            let tag = TaggedSymbol::new(word.kind(i), word.symbol(i));
            run.step(tag);
        }
        run.current_state()
    }

    /// Returns `true` if the automaton accepts the nested word.
    pub fn accepts(&self, word: &NestedWord) -> bool {
        self.accepting[self.run(word)]
    }

    /// Returns `true` if the automaton is *weak* (§3.2): the hierarchical
    /// component of every call transition propagates the current state.
    pub fn is_weak(&self) -> bool {
        (0..self.num_states)
            .all(|q| (0..self.sigma).all(|a| self.call_hier(q, Symbol(a as u16)) == q))
    }

    /// Returns `true` if the automaton is *flat* (§3.3): the hierarchical
    /// component of every call transition is the initial state, so no
    /// information flows across hierarchical edges.
    pub fn is_flat(&self) -> bool {
        (0..self.num_states)
            .all(|q| (0..self.sigma).all(|a| self.call_hier(q, Symbol(a as u16)) == self.initial))
    }

    /// Returns `true` if the automaton is *bottom-up* (§3.4): the linear
    /// component of the call transition does not depend on the current state.
    pub fn is_bottom_up(&self) -> bool {
        (0..self.sigma).all(|a| {
            let a = Symbol(a as u16);
            let first = self.call_linear(0, a);
            (1..self.num_states).all(|q| self.call_linear(q, a) == first)
        })
    }

    /// The states reachable from the initial state by any nested word
    /// (over-approximated structurally: closure under all three transition
    /// functions, pairing every reachable linear state with every reachable
    /// hierarchical state at returns).
    pub fn reachable_states(&self) -> Vec<usize> {
        let mut reachable = vec![false; self.num_states];
        reachable[self.initial] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for q in 0..self.num_states {
                if !reachable[q] {
                    continue;
                }
                for a in 0..self.sigma {
                    let a = Symbol(a as u16);
                    for t in [
                        self.call_linear(q, a),
                        self.call_hier(q, a),
                        self.internal(q, a),
                    ] {
                        if !reachable[t] {
                            reachable[t] = true;
                            changed = true;
                        }
                    }
                }
            }
            for ql in 0..self.num_states {
                for qh in 0..self.num_states {
                    if !reachable[ql] || !reachable[qh] {
                        continue;
                    }
                    for a in 0..self.sigma {
                        let t = self.ret(ql, qh, Symbol(a as u16));
                        if !reachable[t] {
                            reachable[t] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        (0..self.num_states).filter(|&q| reachable[q]).collect()
    }
}

/// A streaming run of a deterministic NWA over a stream of tagged symbols
/// (e.g. SAX events). The run keeps a stack of hierarchical states whose
/// height equals the current nesting depth — the space bound claimed in
/// §3.2 for membership.
#[derive(Debug, Clone)]
pub struct StreamingRun<'a> {
    nwa: &'a Nwa,
    state: usize,
    stack: Vec<usize>,
    max_stack: usize,
    steps: usize,
}

impl<'a> StreamingRun<'a> {
    /// Starts a new run in the initial state with an empty stack.
    pub fn new(nwa: &'a Nwa) -> Self {
        StreamingRun {
            nwa,
            state: nwa.initial(),
            stack: Vec::new(),
            max_stack: 0,
            steps: 0,
        }
    }

    /// Consumes one tagged symbol.
    pub fn step(&mut self, tag: TaggedSymbol) {
        self.steps += 1;
        match tag.kind() {
            PositionKind::Call => {
                let a = tag.symbol();
                let hier = self.nwa.call_hier(self.state, a);
                let linear = self.nwa.call_linear(self.state, a);
                self.stack.push(hier);
                self.max_stack = self.max_stack.max(self.stack.len());
                self.state = linear;
            }
            PositionKind::Internal => {
                self.state = self.nwa.internal(self.state, tag.symbol());
            }
            PositionKind::Return => {
                // A matched return pops the state its call pushed; a pending
                // return finds the stack empty and uses the initial state, as
                // required by §3.1 for hierarchical edges from −∞.
                let hier = self.stack.pop().unwrap_or(self.nwa.initial());
                self.state = self.nwa.ret(self.state, hier, tag.symbol());
            }
        }
    }

    /// The current linear state.
    pub fn current_state(&self) -> usize {
        self.state
    }

    /// Returns `true` if stopping now would accept the stream read so far.
    pub fn is_accepting(&self) -> bool {
        self.nwa.is_accepting(self.state)
    }

    /// Current stack height (equals the number of currently open calls).
    pub fn stack_height(&self) -> usize {
        self.stack.len()
    }

    /// Maximum stack height observed so far (equals the depth of the prefix
    /// read, plus open pending calls).
    pub fn max_stack_height(&self) -> usize {
        self.max_stack
    }

    /// Number of symbols consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl automata_core::StreamRun for StreamingRun<'_> {
    fn step(&mut self, event: TaggedSymbol) {
        StreamingRun::step(self, event);
    }

    fn is_accepting(&self) -> bool {
        StreamingRun::is_accepting(self)
    }

    fn stack_height(&self) -> usize {
        StreamingRun::stack_height(self)
    }

    fn peak_memory(&self) -> usize {
        StreamingRun::max_stack_height(self)
    }

    fn steps(&self) -> usize {
        StreamingRun::steps(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    /// Deterministic NWA over {a,b} accepting well-matched words in which
    /// every matched call/return pair carries the same symbol (uses the
    /// hierarchical edge to remember the call symbol).
    ///
    /// States: 0 = start/ok, 1 = "call was a", 2 = "call was b", 3 = dead.
    /// Accepting: 0. The hierarchical edge carries 1 or 2; a pending return
    /// sees the initial state 0 and dies.
    fn matching_labels_nwa() -> Nwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut m = Nwa::new(4, 2, 0);
        m.set_accepting(0, true);
        // sink
        m.set_all_transitions_to(3, 3);
        // internals keep the state
        m.set_internal(0, a, 0);
        m.set_internal(0, b, 0);
        // calls: linear stays 0, hierarchical remembers the symbol
        m.set_call(0, a, 0, 1);
        m.set_call(0, b, 0, 2);
        // states 1 and 2 are only used on hierarchical edges; if they ever
        // appear linearly treat them as dead
        for q in [1usize, 2] {
            m.set_all_transitions_to(q, 3);
        }
        // returns: match the remembered symbol
        for h in 0..4usize {
            for (sym, want) in [(a, 1usize), (b, 2usize)] {
                let target = if h == want { 0 } else { 3 };
                m.set_return(0, h, sym, target);
            }
        }
        m
    }

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    #[test]
    fn matching_labels_accepted() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        assert!(m.accepts(&parse(&mut ab, "<a a> <b a b b>")));
        assert!(m.accepts(&parse(&mut ab, "<a <b b> a>")));
        assert!(m.accepts(&parse(&mut ab, "a b a")));
        assert!(!m.accepts(&parse(&mut ab, "<a b>")));
        assert!(!m.accepts(&parse(&mut ab, "<a <b a> b>")));
    }

    #[test]
    fn pending_return_uses_initial_state() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        // pending return: hierarchical edge labelled with initial state 0,
        // which matches neither 1 nor 2, so the word is rejected.
        assert!(!m.accepts(&parse(&mut ab, "a>")));
        assert!(!m.accepts(&parse(&mut ab, "<a a> b>")));
    }

    #[test]
    fn pending_call_state_goes_nowhere() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        // a pending call pushes a hierarchical state that is never consumed;
        // the linear run continues and accepts (state 0 is accepting).
        assert!(m.accepts(&parse(&mut ab, "<a")));
    }

    #[test]
    fn streaming_run_stack_tracks_depth() {
        let mut ab = Alphabet::ab();
        let m = matching_labels_nwa();
        let w = parse(&mut ab, "<a <b <a a> b> a> <b b>");
        let mut run = StreamingRun::new(&m);
        for i in 0..w.len() {
            run.step(TaggedSymbol::new(w.kind(i), w.symbol(i)));
        }
        assert!(run.is_accepting());
        assert_eq!(run.max_stack_height(), 3);
        assert_eq!(run.stack_height(), 0);
        assert_eq!(run.steps(), w.len());
    }

    #[test]
    fn classifier_predicates() {
        let m = matching_labels_nwa();
        assert!(!m.is_flat());
        assert!(!m.is_weak());
        // A freshly constructed automaton routes everything to 0 = initial,
        // so it is flat and bottom-up (trivially).
        let trivial = Nwa::new(2, 2, 0);
        assert!(trivial.is_flat());
        assert!(trivial.is_bottom_up());
        assert!(!trivial.is_weak());
    }

    #[test]
    fn reachable_states_excludes_unused() {
        let mut m = Nwa::new(5, 1, 0);
        let a = Symbol(0);
        m.set_internal(0, a, 1);
        m.set_internal(1, a, 0);
        m.set_call(0, a, 0, 0);
        m.set_call(1, a, 1, 1);
        // states 2,3,4 unreachable
        m.set_internal(2, a, 3);
        let r = m.reachable_states();
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn run_on_empty_word_is_initial_state() {
        let m = matching_labels_nwa();
        assert_eq!(m.run(&NestedWord::empty()), 0);
        assert!(m.accepts(&NestedWord::empty()));
    }
}
