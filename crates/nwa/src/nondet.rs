//! Nondeterministic nested word automata (§3.2 of the paper): membership by
//! on-the-fly summaries and determinization via the `2^{s²}` summary-set
//! construction.

use crate::automaton::Nwa;
use crate::summary::{Summary, SummarySemantics, SummaryStreamingRun};
use nested_words::{NestedWord, Symbol, TaggedSymbol};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A nondeterministic nested word automaton.
///
/// Transitions are stored as explicit relations; states and symbols are dense
/// indices. Nondeterministic NWAs accept exactly the regular languages of
/// nested words and determinize with at most `2^{s²}·(|Σ|+1)` states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Nnwa {
    num_states: usize,
    sigma: usize,
    initial: BTreeSet<usize>,
    accepting: BTreeSet<usize>,
    /// Call transitions `(q, a, q_linear, q_hier)`.
    calls: Vec<(usize, Symbol, usize, usize)>,
    /// Internal transitions `(q, a, q')`.
    internals: Vec<(usize, Symbol, usize)>,
    /// Return transitions `(q_linear, q_hier, a, q')`.
    returns: Vec<(usize, usize, Symbol, usize)>,
}

impl Nnwa {
    /// Creates a nondeterministic NWA with `num_states` states over an
    /// alphabet of `sigma` symbols, with no transitions.
    pub fn new(num_states: usize, sigma: usize) -> Self {
        Nnwa {
            num_states,
            sigma,
            ..Default::default()
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Marks a state as initial.
    pub fn add_initial(&mut self, q: usize) {
        self.initial.insert(q);
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, q: usize) {
        self.accepting.insert(q);
    }

    /// The initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.initial.iter().copied()
    }

    /// Returns `true` if `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting.contains(&q)
    }

    /// Adds the call transition `(q, a) → (q_linear, q_hier)`.
    pub fn add_call(&mut self, q: usize, a: Symbol, linear: usize, hier: usize) {
        self.calls.push((q, a, linear, hier));
    }

    /// Adds the internal transition `(q, a) → q'`.
    pub fn add_internal(&mut self, q: usize, a: Symbol, target: usize) {
        self.internals.push((q, a, target));
    }

    /// Adds the return transition `(q_linear, q_hier, a) → q'`.
    pub fn add_return(&mut self, linear: usize, hier: usize, a: Symbol, target: usize) {
        self.returns.push((linear, hier, a, target));
    }

    /// Read access to the call transition relation.
    pub fn calls(&self) -> &[(usize, Symbol, usize, usize)] {
        &self.calls
    }

    /// Read access to the internal transition relation.
    pub fn internals(&self) -> &[(usize, Symbol, usize)] {
        &self.internals
    }

    /// Read access to the return transition relation.
    pub fn returns(&self) -> &[(usize, usize, Symbol, usize)] {
        &self.returns
    }

    /// Converts a deterministic NWA into an equivalent nondeterministic one.
    pub fn from_deterministic(nwa: &Nwa) -> Nnwa {
        let mut out = Nnwa::new(nwa.num_states(), nwa.sigma());
        out.add_initial(nwa.initial());
        for q in 0..nwa.num_states() {
            if nwa.is_accepting(q) {
                out.add_accepting(q);
            }
            for a in 0..nwa.sigma() {
                let a = Symbol(a as u16);
                out.add_call(q, a, nwa.call_linear(q, a), nwa.call_hier(q, a));
                out.add_internal(q, a, nwa.internal(q, a));
                for h in 0..nwa.num_states() {
                    out.add_return(q, h, a, nwa.ret(q, h, a));
                }
            }
        }
        out
    }

    // --- summary simulation -------------------------------------------------

    /// One summary: the set of pairs `(anchor, current)` where `anchor` is
    /// the state the run was in right after the innermost currently-open
    /// call, and `current` is the state now. At top level the anchor is the
    /// run's initial state.
    fn initial_summary(&self) -> BTreeSet<(usize, usize)> {
        self.initial.iter().map(|&q| (q, q)).collect()
    }

    fn step_internal(&self, s: &BTreeSet<(usize, usize)>, a: Symbol) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, cur) in s {
            for &(q, sym, t) in &self.internals {
                if q == cur && sym == a {
                    out.insert((anchor, t));
                }
            }
        }
        out
    }

    fn step_call_linear(
        &self,
        s: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(_, cur) in s {
            for &(q, sym, ql, _qh) in &self.calls {
                if q == cur && sym == a {
                    out.insert((ql, ql));
                }
            }
        }
        out
    }

    fn step_matched_return(
        &self,
        outer: &BTreeSet<(usize, usize)>,
        call_symbol: Symbol,
        inner: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, before_call) in outer {
            for &(q, sym, ql, qh) in &self.calls {
                if q != before_call || sym != call_symbol {
                    continue;
                }
                for &(start, cur) in inner {
                    if start != ql {
                        continue;
                    }
                    for &(rl, rh, rsym, t) in &self.returns {
                        if rl == cur && rh == qh && rsym == a {
                            out.insert((anchor, t));
                        }
                    }
                }
            }
        }
        out
    }

    fn step_pending_return(
        &self,
        s: &BTreeSet<(usize, usize)>,
        a: Symbol,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for &(anchor, cur) in s {
            for &(rl, rh, rsym, t) in &self.returns {
                if rl == cur && rsym == a && self.initial.contains(&rh) {
                    out.insert((anchor, t));
                }
            }
        }
        out
    }

    /// Membership test for nondeterministic NWAs: simulates the summary-set
    /// determinization on the fly, using a stack whose height equals the
    /// nesting depth of the word. Polynomial in `|A|` and linear in `ℓ`.
    pub fn accepts(&self, word: &NestedWord) -> bool {
        let mut run = NnwaStreamingRun::new(self);
        for i in 0..word.len() {
            run.step(TaggedSymbol::new(word.kind(i), word.symbol(i)));
        }
        run.is_accepting()
    }

    /// Starts a streaming run: the same on-the-fly summary-set simulation as
    /// [`Nnwa::accepts`], consumable one tagged-symbol event at a time.
    pub fn start_run(&self) -> NnwaStreamingRun<'_> {
        NnwaStreamingRun::new(self)
    }

    // --- determinization ----------------------------------------------------

    /// Determinizes the automaton via the summary-set construction of §3.2:
    /// deterministic states are sets of state pairs, hierarchical states
    /// additionally remember the call symbol, for a worst-case bound of
    /// `2^{s²}·(|Σ|+1)` states. Only reachable deterministic states are
    /// materialized.
    pub fn determinize(&self) -> Nwa {
        type Summary = BTreeSet<(usize, usize)>;
        #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        enum DetState {
            Linear(Summary),
            Hier(Summary, Symbol),
        }

        let mut index: HashMap<DetState, usize> = HashMap::new();
        let mut states: Vec<DetState> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let intern = |st: DetState,
                      states: &mut Vec<DetState>,
                      queue: &mut VecDeque<usize>,
                      index: &mut HashMap<DetState, usize>|
         -> usize {
            if let Some(&i) = index.get(&st) {
                return i;
            }
            let i = states.len();
            index.insert(st.clone(), i);
            states.push(st);
            queue.push_back(i);
            i
        };

        let initial_idx = intern(
            DetState::Linear(self.initial_summary()),
            &mut states,
            &mut queue,
            &mut index,
        );

        // Transition tables built during exploration, keyed by state index.
        let mut internal_tab: HashMap<(usize, Symbol), usize> = HashMap::new();
        let mut call_tab: HashMap<(usize, Symbol), (usize, usize)> = HashMap::new();
        // Return transitions are completed after exploration because they
        // pair every linear state with every hierarchical state.

        while let Some(idx) = queue.pop_front() {
            let summary = match &states[idx] {
                DetState::Linear(s) => s.clone(),
                DetState::Hier(..) => continue, // hierarchical-only states have no outgoing edges
            };
            for a in 0..self.sigma {
                let a = Symbol(a as u16);
                let int_next = self.step_internal(&summary, a);
                let int_idx = intern(
                    DetState::Linear(int_next),
                    &mut states,
                    &mut queue,
                    &mut index,
                );
                internal_tab.insert((idx, a), int_idx);

                let call_linear = self.step_call_linear(&summary, a);
                let lin_idx = intern(
                    DetState::Linear(call_linear),
                    &mut states,
                    &mut queue,
                    &mut index,
                );
                let hier_idx = intern(
                    DetState::Hier(summary.clone(), a),
                    &mut states,
                    &mut queue,
                    &mut index,
                );
                call_tab.insert((idx, a), (lin_idx, hier_idx));
            }
        }

        // Returns can create new linear states; iterate to closure.
        let mut return_tab: HashMap<(usize, usize, Symbol), usize> = HashMap::new();
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot = states.len();
            for lin_i in 0..snapshot {
                let inner = match &states[lin_i] {
                    DetState::Linear(s) => s.clone(),
                    DetState::Hier(..) => continue,
                };
                for hier_i in 0..snapshot {
                    for a in 0..self.sigma {
                        let a = Symbol(a as u16);
                        if return_tab.contains_key(&(lin_i, hier_i, a)) {
                            continue;
                        }
                        let next = match &states[hier_i] {
                            DetState::Hier(outer, call_symbol) => {
                                self.step_matched_return(outer, *call_symbol, &inner, a)
                            }
                            DetState::Linear(_) => {
                                // Only the initial deterministic state can label a
                                // hierarchical edge of a pending return (§3.1).
                                if hier_i == initial_idx {
                                    self.step_pending_return(&inner, a)
                                } else {
                                    BTreeSet::new()
                                }
                            }
                        };
                        let next_idx =
                            intern(DetState::Linear(next), &mut states, &mut queue, &mut index);
                        return_tab.insert((lin_i, hier_i, a), next_idx);
                        changed = true;
                    }
                }
            }
            // Newly interned linear states need their internal/call rows too.
            while let Some(idx) = queue.pop_front() {
                let summary = match &states[idx] {
                    DetState::Linear(s) => s.clone(),
                    DetState::Hier(..) => continue,
                };
                for a in 0..self.sigma {
                    let a = Symbol(a as u16);
                    if internal_tab.contains_key(&(idx, a)) {
                        continue;
                    }
                    let int_next = self.step_internal(&summary, a);
                    let int_idx = intern(
                        DetState::Linear(int_next),
                        &mut states,
                        &mut queue,
                        &mut index,
                    );
                    internal_tab.insert((idx, a), int_idx);
                    let call_linear = self.step_call_linear(&summary, a);
                    let lin_idx = intern(
                        DetState::Linear(call_linear),
                        &mut states,
                        &mut queue,
                        &mut index,
                    );
                    let hier_idx = intern(
                        DetState::Hier(summary.clone(), a),
                        &mut states,
                        &mut queue,
                        &mut index,
                    );
                    call_tab.insert((idx, a), (lin_idx, hier_idx));
                }
                changed = true;
            }
        }

        let mut det = Nwa::new(states.len(), self.sigma, initial_idx);
        for (i, st) in states.iter().enumerate() {
            if let DetState::Linear(s) = st {
                det.set_accepting(i, s.iter().any(|&(_, q)| self.accepting.contains(&q)));
            }
        }
        for (&(q, a), &t) in &internal_tab {
            det.set_internal(q, a, t);
        }
        for (&(q, a), &(l, h)) in &call_tab {
            det.set_call(q, a, l, h);
        }
        for (&(l, h, a), &t) in &return_tab {
            det.set_return(l, h, a, t);
        }
        det
    }
}

/// A streaming run of a nondeterministic NWA over tagged-symbol events: the
/// subset construction of §3.2 executed on the fly over (summary-set, stack)
/// configurations, shared with [`JoinlessNwa`](crate::JoinlessNwa) through
/// [`SummaryStreamingRun`].
pub type NnwaStreamingRun<'a> = SummaryStreamingRun<'a, Nnwa>;

impl SummarySemantics for Nnwa {
    fn initial_summary(&self) -> Summary {
        Nnwa::initial_summary(self)
    }

    fn summary_internal(&self, s: &Summary, a: Symbol) -> Summary {
        self.step_internal(s, a)
    }

    fn summary_call(&self, s: &Summary, a: Symbol) -> Summary {
        self.step_call_linear(s, a)
    }

    fn summary_matched_return(
        &self,
        outer: &Summary,
        call_symbol: Symbol,
        inner: &Summary,
        a: Symbol,
    ) -> Summary {
        self.step_matched_return(outer, call_symbol, inner, a)
    }

    fn summary_pending_return(&self, s: &Summary, a: Symbol) -> Summary {
        self.step_pending_return(s, a)
    }

    fn summary_accepting(&self, s: &Summary) -> bool {
        s.iter().any(|&(_, q)| self.accepting.contains(&q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nested_words::tagged::parse_nested_word;
    use nested_words::Alphabet;

    fn parse(ab: &mut Alphabet, s: &str) -> NestedWord {
        parse_nested_word(s, ab).unwrap()
    }

    /// Nondeterministic NWA over {a,b} accepting nested words that contain a
    /// matched call/return pair both labelled b (guess which call it is).
    ///
    /// States: 0 = searching, 1 = hierarchical marker, 2 = found.
    fn some_b_block() -> Nnwa {
        let a = Symbol(0);
        let b = Symbol(1);
        let mut n = Nnwa::new(3, 2);
        n.add_initial(0);
        n.add_accepting(2);
        for sym in [a, b] {
            // keep searching through internals
            n.add_internal(0, sym, 0);
            n.add_internal(2, sym, 2);
            // calls while searching: don't mark (hier carries 0)
            n.add_call(0, sym, 0, 0);
            // calls after found: keep found
            n.add_call(2, sym, 2, 0);
            // returns that ignore the marker
            for h in [0usize, 1] {
                n.add_return(0, h, sym, 0);
                n.add_return(2, h, sym, 2);
            }
        }
        // the guessed b-call: mark the hierarchical edge with state 1
        n.add_call(0, b, 0, 1);
        // matching b-return with marker 1: found
        n.add_return(0, 1, b, 2);
        n
    }

    #[test]
    fn nondet_membership() {
        let mut ab = Alphabet::ab();
        let n = some_b_block();
        assert!(n.accepts(&parse(&mut ab, "<b a b>")));
        assert!(n.accepts(&parse(&mut ab, "<a <b b> a>")));
        assert!(n.accepts(&parse(&mut ab, "a <a a> <b b> a")));
        assert!(!n.accepts(&parse(&mut ab, "<a b a>")));
        assert!(!n.accepts(&parse(&mut ab, "b b b")));
        // b-call matched by an a-return does not count
        assert!(!n.accepts(&parse(&mut ab, "<b a>")));
        // pending b-call does not count
        assert!(!n.accepts(&parse(&mut ab, "<b")));
    }

    #[test]
    fn determinization_preserves_language() {
        let mut ab = Alphabet::ab();
        let n = some_b_block();
        let d = n.determinize();
        let samples = [
            "<b a b>",
            "<a <b b> a>",
            "a <a a> <b b> a",
            "<a b a>",
            "b b b",
            "<b a>",
            "<b",
            "b>",
            "<a <b b>",
            "a> <b b>",
            "",
            "<b <b b> b>",
            "<a <a <b b> a> a>",
        ];
        for s in samples {
            let w = parse(&mut ab, s);
            assert_eq!(n.accepts(&w), d.accepts(&w), "word `{s}`");
        }
    }

    #[test]
    fn determinization_handles_pending_returns() {
        let a = Symbol(0);
        // language: a single pending return labelled a (hier edge = initial)
        let mut n = Nnwa::new(2, 1);
        n.add_initial(0);
        n.add_accepting(1);
        n.add_return(0, 0, a, 1);
        let mut ab = Alphabet::from_names(["a"]);
        let w = parse(&mut ab, "a>");
        assert!(n.accepts(&w));
        let d = n.determinize();
        assert!(d.accepts(&w));
        let w2 = parse(&mut ab, "<a a>");
        assert!(!n.accepts(&w2));
        assert!(!d.accepts(&w2));
    }

    #[test]
    fn from_deterministic_roundtrip() {
        let mut ab = Alphabet::ab();
        let n = some_b_block();
        let d = n.determinize();
        let n2 = Nnwa::from_deterministic(&d);
        for s in ["<b a b>", "<a b a>", "<b", "a <b b>"] {
            let w = parse(&mut ab, s);
            assert_eq!(d.accepts(&w), n2.accepts(&w), "word `{s}`");
        }
    }

    #[test]
    fn empty_automaton_accepts_nothing() {
        let n = Nnwa::new(1, 2);
        let mut ab = Alphabet::ab();
        assert!(!n.accepts(&parse(&mut ab, "a")));
        assert!(!n.accepts(&NestedWord::empty()));
    }

    #[test]
    fn deterministic_membership_matches_nondet_on_random_words() {
        use nested_words::generate::{random_nested_word, NestedWordConfig};
        let n = some_b_block();
        let d = n.determinize();
        let ab = Alphabet::ab();
        let cfg = NestedWordConfig {
            len: 40,
            allow_pending: true,
            ..Default::default()
        };
        for seed in 0..50 {
            let w = random_nested_word(&ab, cfg, seed);
            assert_eq!(n.accepts(&w), d.accepts(&w), "seed {seed}");
        }
    }
}
