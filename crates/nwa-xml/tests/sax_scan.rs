//! Differential property suite for the bulk structural scanner.
//!
//! The contract under test: [`ByteTokenizer`] (the chunk-windowed bulk
//! scanner in `nwa_xml::scan`) is token-for-token and error-for-error
//! identical to the char-at-a-time [`EventLexer`] over the same bytes —
//! under adversarial read sizes (1..=7-byte chunks so every multi-byte
//! UTF-8 scalar gets split across a `read` seam), across the internal
//! scan-window seam, for CDATA / comment / PI / DOCTYPE edge cases, and
//! for inputs truncated at every byte offset.
//!
//! With the `simd` feature on, the whole suite implicitly runs against the
//! auto-detected wide backend (the backend is probed on first use), and an
//! additional property pins the two sweeps against each other directly:
//! SWAR and the wide kernel must be token-for-token identical on documents
//! shifted across the kernels' 32/64-byte block seams and the 64 KiB scan
//! window seam.

use std::io;

use nested_words::rng::Prng;
use nested_words::{Alphabet, NestedWordError, TaggedSymbol};
use nwa_xml::sax::{ByteTokenizer, EventLexer, FrozenByteTokenizer, SaxError, Utf8Chars};

// --------------------------------------------------------------------------
// Harness
// --------------------------------------------------------------------------

/// A reader that hands out at most `chunk` bytes per `read` call, forcing
/// every buffer-refill seam the bulk scanner has.
struct SplitReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl<'a> SplitReader<'a> {
    fn new(data: &'a [u8], chunk: usize) -> Self {
        SplitReader {
            data,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl io::Read for SplitReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Events up to the first error, plus the error (as its `Debug` rendering,
/// since `SaxError` carries non-`PartialEq` payloads). Errors must match
/// *exactly* — variant, offset, and message.
type Outcome = (Vec<TaggedSymbol>, Option<String>);

fn drain<I: Iterator<Item = Result<TaggedSymbol, SaxError>>>(it: I) -> Outcome {
    let mut events = Vec::new();
    for item in it {
        match item {
            Ok(t) => events.push(t),
            Err(e) => return (events, Some(format!("{e:?}"))),
        }
    }
    (events, None)
}

/// Reference outcome: the char-at-a-time `EventLexer` fed by the
/// incremental `Utf8Chars` decoder, over an identically-chunked reader so
/// byte offsets in errors line up with the subject's.
fn reference(data: &[u8], chunk: usize) -> Outcome {
    let mut ab = Alphabet::new();
    let lexer = EventLexer::new(Utf8Chars::new(SplitReader::new(data, chunk)), &mut ab);
    drain(lexer)
}

/// Subject outcome via the `Iterator` entry point.
fn bulk_iter(data: &[u8], chunk: usize) -> Outcome {
    let mut ab = Alphabet::new();
    let tok = ByteTokenizer::new(SplitReader::new(data, chunk), &mut ab);
    drain(tok)
}

/// Subject outcome via the slice-producing `fill` entry point, pulling in
/// deliberately awkward batch sizes so batching never hides a seam bug.
fn bulk_fill(data: &[u8], chunk: usize, batch: usize) -> Outcome {
    let mut ab = Alphabet::new();
    let mut tok = ByteTokenizer::new(SplitReader::new(data, chunk), &mut ab);
    let mut events = Vec::new();
    loop {
        let before = events.len();
        match tok.fill(&mut events, before + batch.max(1)) {
            Ok(()) => {
                if events.len() == before {
                    return (events, None);
                }
            }
            Err(e) => return (events, Some(format!("{e:?}"))),
        }
    }
}

/// Asserts the bulk scanner matches the char-at-a-time reference on `data`
/// for every adversarial chunk size, through both entry points.
fn assert_equivalent(data: &[u8], label: &str) {
    let expected = reference(data, data.len().max(1));
    for chunk in [1, 2, 3, 4, 5, 6, 7, data.len().max(1)] {
        // The reference decoder is also incremental; feeding it the same
        // chunking checks that neither side's seam handling shifts offsets.
        let ref_chunked = reference(data, chunk);
        assert_eq!(
            ref_chunked, expected,
            "{label}: reference unstable at chunk={chunk}"
        );
        let got = bulk_iter(data, chunk);
        assert_eq!(
            got, expected,
            "{label}: iterator path diverged at chunk={chunk}"
        );
        for batch in [1, 3, 1024] {
            let got = bulk_fill(data, chunk, batch);
            assert_eq!(
                got, expected,
                "{label}: fill path diverged at chunk={chunk} batch={batch}"
            );
        }
    }
}

// --------------------------------------------------------------------------
// Random document generator
// --------------------------------------------------------------------------

const NAMES: &[&str] = &[
    "a",
    "bb",
    "item",
    "ns-long.element_name",
    "x1",
    "é",
    "日本語",
    "𝄞note",
];

const WORDS: &[&str] = &[
    "w",
    "word",
    "héllo",
    "汉字文本",
    "𝄞𝄢",
    "mixed-é-ascii",
    "1234567890abcdef",
];

/// Whitespace separators, including multi-byte Unicode whitespace (NBSP,
/// em-space, ideographic space) that the ≥0x80 slow path must classify.
const WS: &[&str] = &[
    " ", "\n", "\t", "\r\n", "\u{a0}", "\u{2003}", "\u{3000}", "  \n ",
];

fn pick<'a>(rng: &mut Prng, set: &[&'a str]) -> &'a str {
    set[rng.below(set.len())]
}

fn push_text(rng: &mut Prng, out: &mut String) {
    let words = 1 + rng.below(4);
    for _ in 0..words {
        out.push_str(pick(rng, WS));
        out.push_str(pick(rng, WORDS));
    }
    out.push_str(pick(rng, WS));
}

fn push_attrs(rng: &mut Prng, out: &mut String) {
    for i in 0..rng.below(3) {
        // Attribute values deliberately contain `>`, `<`, `/` and the
        // opposite quote — the characters that force the scanner off its
        // simple-tag fast path and into quote-aware classification.
        let val = pick(rng, &["v", "a>b", "x<y", "end/", "it's", "q\"q", "né"]);
        if val.contains('"') {
            out.push_str(&format!(" k{i}='{val}'"));
        } else if rng.bool(0.5) {
            out.push_str(&format!(" k{i}=\"{val}\""));
        } else if !val.contains('\'') {
            out.push_str(&format!(" k{i}='{val}'"));
        } else {
            out.push_str(&format!(" k{i}=\"{val}\""));
        }
    }
}

fn push_directive(rng: &mut Prng, out: &mut String) {
    match rng.below(4) {
        0 => out.push_str(pick(
            rng,
            &[
                "<!-- plain -->",
                "<!---->",
                "<!-- a - b -- c --->",
                "<!-- <not><a>tag</a> '\" -->",
            ],
        )),
        1 => out.push_str(pick(
            rng,
            &["<?pi?>", "<?php echo '>' ?>", "<?x ]]> \"q\" ?>"],
        )),
        2 => {
            // CDATA content is character data: tags, `>`, near-miss `]]`
            // runs and Unicode whitespace inside must lex as text tokens.
            out.push_str(pick(
                rng,
                &[
                    "<![CDATA[raw <b>txt</b> & more]]>",
                    "<![CDATA[]]>",
                    "<![CDATA[ ]] ]>]]]>",
                    "<![CDATA[é\u{a0}𝄞 two\u{3000}tokens]]>",
                ],
            ));
        }
        _ => out.push_str(pick(
            rng,
            &[
                "<!DOCTYPE d>",
                "<!DOCTYPE doc [ <!ENTITY gt \">\"> <!ELEMENT a (b)> ]>",
                "<!DOCTYPE d SYSTEM 'f>.dtd'>",
            ],
        )),
    }
}

fn push_element(rng: &mut Prng, out: &mut String, depth: usize) {
    let name = pick(rng, NAMES);
    if depth > 0 && rng.bool(0.15) {
        out.push('<');
        out.push_str(name);
        push_attrs(rng, out);
        out.push_str(if rng.bool(0.5) { "/>" } else { " />" });
        return;
    }
    out.push('<');
    out.push_str(name);
    push_attrs(rng, out);
    if rng.bool(0.2) {
        out.push(' ');
    }
    out.push('>');
    if depth < 4 {
        let kids = if depth == 0 {
            8 + rng.below(8)
        } else {
            rng.below(4)
        };
        for _ in 0..kids {
            match rng.below(5) {
                0 | 1 => push_text(rng, out),
                2 => push_element(rng, out, depth + 1),
                3 => push_directive(rng, out),
                // The lexer does not check tag matching — a stray close
                // tag is a legal Return event for it.
                _ => out.push_str(pick(rng, &["</stray>", "</日本語>", "</ spaced>"])),
            }
        }
    }
    out.push_str("</");
    out.push_str(name);
    if rng.bool(0.1) {
        out.push_str(" \t");
    }
    out.push('>');
}

fn generate(seed: u64) -> String {
    let mut rng = Prng::new(seed);
    let mut out = String::new();
    if rng.bool(0.3) {
        out.push_str("<?xml version=\"1.0\"?>");
    }
    if rng.bool(0.3) {
        push_directive(&mut rng, &mut out);
    }
    push_element(&mut rng, &mut out, 0);
    if rng.bool(0.2) {
        push_text(&mut rng, &mut out);
    }
    out
}

// --------------------------------------------------------------------------
// Properties
// --------------------------------------------------------------------------

#[test]
fn random_documents_match_char_lexer() {
    let mut total_events = 0usize;
    for seed in 0..48 {
        let doc = generate(seed);
        total_events += reference(doc.as_bytes(), doc.len().max(1)).0.len();
        assert_equivalent(doc.as_bytes(), &format!("seed {seed}"));
    }
    // Guard against the generator degenerating into trivial documents.
    assert!(
        total_events > 1_000,
        "generator too weak: {total_events} events"
    );
}

#[test]
fn edge_documents_match_char_lexer() {
    let cases: &[&[u8]] = &[
        b"",
        b" \t\n ",
        "\u{a0}\u{2003}".as_bytes(),
        b"word",
        b"<a></a>",
        b"<a/>",
        b"< a ></ a >",
        b"<a b=\"c\">t</a>",
        // lexical errors: empty names, unterminated constructs
        b"<>",
        b"</>",
        b"< >",
        b"<a><",
        b"<a>text",
        b"<a",
        b"</a",
        b"<a b=\"unclosed>",
        b"<!-- never closed",
        b"<!-- -- >still open",
        b"<![CDATA[no end]]",
        b"<?pi no end?",
        b"<!DOCTYPE d [ <!ENTITY e \">\"> ",
        b"<!DOCTYPE d [ unclosed subset >",
        // quote/bracket interplay
        b"<a x='>'>i</a>",
        b"<a x=\"'\" y='\"'>.</a>",
        b"<a x='a/>'></a>",
        // self-closing variants
        b"<a / >",
        b"<a  />",
        // directives adjacent to everything
        b"<!--c--><a><?p?><![CDATA[x]]></a><!--t-->",
        b"<![CDATA[]]]><a/>",
        b"<![CDATA[]] >]]>",
        // control characters inside text are token characters
        b"<a>\x01\x02</a>",
        // non-ASCII everywhere: names, text, attribute values, whitespace
        "<é \u{a0}>\u{a0}𝄞\u{3000}汉</é>".as_bytes(),
        "<𝄞note>x</𝄞note>".as_bytes(),
        // invalid UTF-8: lone continuation, overlong, bad leading byte,
        // truncated scalar mid-stream and at EOF — typed errors with the
        // exact byte offset must agree with the incremental decoder.
        b"<a>\x80</a>",
        b"<a>\xc0\xaf</a>",
        b"<a>\xff</a>",
        b"<a>\xe2\x82</a>",
        b"<a>\xe2\x82",
        b"<a>\xf0\x9d\x84",
        b"ok \xf0\x9d\x84\x9e bad \xed\xa0\x80 tail",
        b"<t\xc3>",
        b"<t a='\xf4\x90\x80\x80'>",
    ];
    for (i, case) in cases.iter().enumerate() {
        assert_equivalent(case, &format!("edge case {i}"));
    }
}

#[test]
fn truncation_at_every_byte_offset() {
    let doc = "<?xml v?><!DOCTYPE d [<!E \">\">]><a k=\"q>'\">é\u{a0}𝄞 w</a>\
               <!--c--><b><![CDATA[x ]] y]]></b><c/>";
    let bytes = doc.as_bytes();
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        let expected = reference(prefix, prefix.len().max(1));
        for chunk in [3, prefix.len().max(1)] {
            let got = bulk_iter(prefix, chunk);
            assert_eq!(got, expected, "truncation at {cut}, chunk={chunk}");
        }
    }
}

/// A multi-byte scalar straddling the bulk scanner's *internal* window
/// seam (`SCAN_CHUNK`), not just a `read` seam: the carried-over partial
/// sequence must complete — or fail — exactly like the incremental decoder.
#[test]
fn multibyte_scalar_across_scan_window_seam() {
    for shift in 0..8usize {
        let mut doc = String::from("<pad>");
        let fill = nwa_xml::scan::SCAN_CHUNK - doc.len() - shift;
        doc.push_str(&"a".repeat(fill));
        doc.push_str(" \u{1d11e}\u{a0}é tail</pad>");
        assert_eq!(
            bulk_iter(doc.as_bytes(), doc.len()),
            reference(doc.as_bytes(), doc.len()),
            "window seam shift {shift}"
        );
    }
    // Same straddle, but the document ends mid-scalar: truncated-UTF-8
    // error at the same offset the incremental decoder reports.
    let mut doc = Vec::from(&b"<pad>"[..]);
    doc.resize(nwa_xml::scan::SCAN_CHUNK - 2, b'a');
    doc.extend_from_slice(&[0xf0, 0x9d, 0x84]);
    assert_eq!(bulk_iter(&doc, doc.len()), reference(&doc, doc.len()));
}

/// The frozen (read-only alphabet) front end yields the identical stream
/// once the alphabet is pre-populated, and a typed `UnknownSymbol` against
/// an alphabet that lacks a name.
#[test]
fn frozen_tokenizer_matches_mutable() {
    for seed in 0..16 {
        let doc = generate(seed);
        let mut ab = Alphabet::new();
        let expected = drain(ByteTokenizer::new(doc.as_bytes(), &mut ab));
        for chunk in [1, 4, doc.len().max(1)] {
            let got = drain(FrozenByteTokenizer::new(
                SplitReader::new(doc.as_bytes(), chunk),
                &ab,
            ));
            assert_eq!(got, expected, "frozen diverged: seed {seed}, chunk={chunk}");
        }
    }

    let ab = Alphabet::from_names(["doc"]);
    let err = drain(FrozenByteTokenizer::new(
        &b"<doc><intruder/></doc>"[..],
        &ab,
    ));
    assert_eq!(err.0.len(), 1, "call on <doc> precedes the failure");
    let msg = err.1.expect("unknown name must fail");
    let expected_err = format!(
        "{:?}",
        SaxError::Syntax(NestedWordError::UnknownSymbol {
            name: "intruder".into()
        })
    );
    assert_eq!(msg, expected_err);
}

// --------------------------------------------------------------------------
// SIMD backend vs SWAR (feature `simd`)
// --------------------------------------------------------------------------

/// Iteration budget scaled by `NWA_PROP_ITERS`, mirroring the workspace
/// property suites: the weekly deep CI job sets it to 10 to sweep ten
/// times as many seeds through the same property.
#[cfg(feature = "simd")]
fn prop_iters(base: usize) -> usize {
    std::env::var("NWA_PROP_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&m| m > 0)
        .map_or(base, |m| base * m)
}

/// Tokenizes `doc` under both the forced SWAR backend and the forced wide
/// backend, through both entry points, and asserts the outcomes (events
/// *and* errors) are identical. Restores auto-detection before returning.
#[cfg(feature = "simd")]
fn assert_backends_agree(doc: &[u8], wide: nwa_xml::scan::ScanBackend, label: &str) {
    use nwa_xml::scan::{auto_scan_backend, force_scan_backend, ScanBackend};

    assert!(force_scan_backend(ScanBackend::Swar));
    let swar_iter = bulk_iter(doc, doc.len().max(1));
    let swar_fill = bulk_fill(doc, 7, 3);
    assert!(force_scan_backend(wide), "wide backend vanished mid-test");
    let wide_iter = bulk_iter(doc, doc.len().max(1));
    let wide_fill = bulk_fill(doc, 7, 3);
    auto_scan_backend();
    assert_eq!(wide_iter, swar_iter, "{label}: iterator path diverged");
    assert_eq!(wide_fill, swar_fill, "{label}: fill path diverged");
}

/// With `simd` compiled in, the wide backend must be token-for-token and
/// error-for-error identical to the SWAR sweeps on the same bytes. The
/// adversarial inputs are Prng documents whose token boundaries straddle
/// the kernels' seams: leading whitespace of every length in `0..64`
/// slides each document across the 64-byte classification blocks (and the
/// 32-byte halves the AVX2 kernel loads and the 16-byte NEON lanes), and a
/// text pad pushes a document across the 64 KiB scan-window seam at
/// byte-granular shifts.
///
/// Forcing a backend is process-global, which is safe here: every other
/// test in this binary checks scanner-vs-reference equivalence, a property
/// that holds under either backend.
#[cfg(feature = "simd")]
#[test]
fn simd_matches_swar_token_for_token() {
    use nwa_xml::scan::{auto_scan_backend, scan_backend, ScanBackend, SCAN_CHUNK};

    auto_scan_backend();
    let wide = scan_backend();
    if wide == ScanBackend::Swar {
        // Feature compiled in but the host CPU has no wide backend (e.g. an
        // x86 machine without AVX2): nothing to differentiate against. The
        // suite still ran SWAR through every property above.
        eprintln!("skipping: no wide scan backend on this host");
        return;
    }

    // Block seams: every alignment in 0..64 of every document.
    for seed in 0..prop_iters(6) as u64 {
        let doc = generate(5000 + seed);
        for shift in 0..64usize {
            let padded = format!("{}{}", " ".repeat(shift), doc);
            assert_backends_agree(
                padded.as_bytes(),
                wide,
                &format!("seed {seed} shift {shift}"),
            );
        }
    }

    // Window seam: the document body begins just before the 64 KiB scan
    // window boundary, so its tokens cross the seam at shifting offsets
    // (the pad is a single long text token plus alignment whitespace).
    for seed in 0..prop_iters(2) as u64 {
        let doc = generate(9000 + seed);
        for shift in 0..8usize {
            let mut padded = String::from("<pad>");
            padded.push_str(&"a".repeat(SCAN_CHUNK - padded.len() - 40 - shift));
            padded.push(' ');
            padded.push_str(&doc);
            padded.push_str("</pad>");
            assert_backends_agree(
                padded.as_bytes(),
                wide,
                &format!("window seed {seed} shift {shift}"),
            );
        }
    }
}
